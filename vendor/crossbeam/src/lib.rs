//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::channel` subset this workspace uses: unbounded
//! MPMC channels whose `Sender` *and* `Receiver` are `Send + Sync + Clone`
//! (std's mpsc receiver is not `Sync`, which the net transports require),
//! plus a two-arm `select!` macro.
//!
//! The implementation is a `Mutex<VecDeque>` + `Condvar` queue — not as fast
//! as crossbeam's lock-free channels, but semantically equivalent for the
//! event-loop traffic in this repository.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                let _guard = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        }
    }

    // Re-export the crate-root `select!` under `crossbeam::channel::` the
    // way the real crate does.
    pub use crate::select;
}

/// Two-arm `select!` over receivers, as used by the producer event loop:
///
/// ```ignore
/// crossbeam::channel::select! {
///     recv(rx_a) -> msg => { ... }
///     recv(rx_b) -> msg => { ... }
/// }
/// ```
///
/// Each arm's bound variable is a `Result<T, RecvError>`: `Err` means that
/// channel's senders are all gone. Implemented by polling; the arms execute
/// *outside* the polling loop so `break`/`continue` inside an arm target the
/// caller's enclosing loop, exactly as with crossbeam's macro.
#[macro_export]
macro_rules! select {
    (recv($rx_a:expr) -> $var_a:ident => $arm_a:block
     recv($rx_b:expr) -> $var_b:ident => $arm_b:block) => {{
        enum __Selected<A, B> {
            A(::std::result::Result<A, $crate::channel::RecvError>),
            B(::std::result::Result<B, $crate::channel::RecvError>),
        }
        let __selected = loop {
            match $rx_a.try_recv() {
                ::std::result::Result::Ok(v) => break __Selected::A(::std::result::Result::Ok(v)),
                ::std::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                    break __Selected::A(::std::result::Result::Err($crate::channel::RecvError))
                }
                ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
            }
            match $rx_b.try_recv() {
                ::std::result::Result::Ok(v) => break __Selected::B(::std::result::Result::Ok(v)),
                ::std::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                    break __Selected::B(::std::result::Result::Err($crate::channel::RecvError))
                }
                ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
            }
            ::std::thread::sleep(::std::time::Duration::from_micros(200));
        };
        match __selected {
            __Selected::A($var_a) => $arm_a,
            __Selected::B($var_b) => $arm_b,
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn send_recv_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn disconnect_observed_by_receiver() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn disconnect_observed_by_sender() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn blocked_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(10));
        tx.send(42u64).unwrap();
        assert_eq!(handle.join().unwrap(), Ok(42));
    }

    #[test]
    fn select_dispatches_ready_arm() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<u32>();
        tx_a.send(5).unwrap();
        let hit;
        crate::select! {
            recv(rx_a) -> msg => { hit = msg.unwrap(); }
            recv(rx_b) -> _msg => { unreachable!(); }
        }
        assert_eq!(hit, 5);
    }

    #[test]
    fn select_reports_disconnect() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<u32>();
        drop(tx_a);
        let disconnected;
        crate::select! {
            recv(rx_a) -> msg => { disconnected = msg.is_err(); }
            recv(rx_b) -> _msg => { unreachable!(); }
        }
        assert!(disconnected);
    }
}
