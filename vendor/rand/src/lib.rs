//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal, dependency-free implementation of the
//! subset of the `rand` 0.9 API it actually uses: the [`RngCore`] and
//! [`SeedableRng`] traits and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a high-quality
//! non-cryptographic generator. That is sufficient for this repository: the
//! simulator and workload generators need statistical quality and
//! reproducibility, not secrecy, and the crypto crate's security tests
//! exercise algebraic properties rather than entropy sources.

/// Core random number generation trait (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A generator that can be instantiated from a seed (mirrors
/// `rand_core::SeedableRng`, u64-seed subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator seeded from the operating system environment.
    fn from_os_rng() -> Self;
}

/// Named generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ over a SplitMix64-expanded seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden state; SplitMix64 cannot
            // produce four zero outputs in a row, but keep the guard cheap.
            if s == [0; 4] {
                s[0] = 1;
            }
            StdRng { s }
        }

        fn from_os_rng() -> Self {
            // Real OS entropy, via std only.
            if let Ok(mut f) = std::fs::File::open("/dev/urandom") {
                use std::io::Read;
                let mut seed = [0u8; 32];
                if f.read_exact(&mut seed).is_ok() {
                    let mut s = [0u64; 4];
                    for (slot, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                        *slot = u64::from_le_bytes(chunk.try_into().unwrap());
                    }
                    if s != [0; 4] {
                        return StdRng { s };
                    }
                }
            }
            // Fallback (no /dev/urandom): clock plus a per-call counter so
            // two calls within one clock tick still diverge.
            use std::sync::atomic::{AtomicU64, Ordering};
            use std::time::{SystemTime, UNIX_EPOCH};
            static CALLS: AtomicU64 = AtomicU64::new(0);
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0xDEAD_BEEF);
            let call = CALLS.fetch_add(1, Ordering::Relaxed);
            StdRng::seed_from_u64(nanos ^ call.rotate_left(32))
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn distinct_os_seeds() {
        let mut a = StdRng::from_os_rng();
        let mut b = StdRng::from_os_rng();
        // Overwhelmingly likely to differ; equality would indicate the
        // entropy mix collapsed.
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
