//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (guards are returned directly, not inside a `Result`). Poisoning is
//! neutralised by recovering the inner guard: a panic while holding a lock
//! does not wedge every later acquisition.

use std::sync::{self, PoisonError};

/// A mutual exclusion primitive (non-poisoning `lock`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock (non-poisoning `read`/`write`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
