//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`/`boxed`,
//! * range, tuple, [`collection::vec`], [`option::of`] and [`any`]
//!   strategies,
//! * the `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`
//!   and `prop_oneof!` macros,
//! * [`test_runner::Config`] (`ProptestConfig`) with `with_cases`.
//!
//! Differences from real proptest: generation is plain pseudo-random (no
//! recursive size damping) and failing inputs are **not shrunk** — the
//! failing case's `Debug` rendering is printed instead. Each test function
//! derives a deterministic RNG seed from its own name, so failures
//! reproduce run-to-run.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (`ProptestConfig` in real proptest).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
        /// The input was rejected (counted, not failed).
        Reject(String),
    }

    impl TestCaseError {
        /// A falsification with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// An input rejection with the given message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic generator driving value generation (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seeds deterministically from an arbitrary label (the test name).
        pub fn from_label(label: &str) -> Self {
            // FNV-1a over the label, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut sm = h;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            if s == [0; 4] {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// Unlike real proptest there is no shrinking tree: a strategy is just
    /// a generator.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Box::new(self) }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.gen_value(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    // Object-safe indirection for boxing.
    trait DynStrategy<T> {
        fn gen_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.gen_value(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn DynStrategy<T>>,
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy { .. }")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.inner.gen_dyn(rng)
        }
    }

    /// Weighted union of same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        variants: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = variants.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { variants, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            let mut roll = rng.below(self.total);
            for (weight, strat) in &self.variants {
                let weight = u64::from(*weight);
                if roll < weight {
                    return strat.gen_value(rng);
                }
                roll -= weight;
            }
            unreachable!("weights changed mid-generation")
        }
    }

    // --- Range strategies over the primitive types the tests use. -------
    //
    // All integer variants funnel through u128 offset arithmetic so the
    // same code handles signed, unsigned and 128-bit types without
    // overflow: a range is (start, unsigned span), and a sample is
    // start + uniform(span).

    fn below_u128(rng: &mut TestRng, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        if let Ok(bound64) = u64::try_from(bound) {
            return u128::from(rng.below(bound64));
        }
        let zone = u128::MAX - (u128::MAX % bound);
        loop {
            let v = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
            if v < zone {
                return v % bound;
            }
        }
    }

    macro_rules! int_range_strategy {
        ($(($ty:ty, $uty:ty)),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn gen_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as $uty as u128;
                    self.start.wrapping_add(below_u128(rng, span) as $ty)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn gen_value(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = end.wrapping_sub(start) as $uty as u128;
                    match span.checked_add(1) {
                        Some(bound) => start.wrapping_add(below_u128(rng, bound) as $ty),
                        // Full-width 128-bit range: every bit pattern is valid.
                        None => {
                            let v = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                            v as $ty
                        }
                    }
                }
            }

            impl Strategy for std::ops::RangeFrom<$ty> {
                type Value = $ty;

                fn gen_value(&self, rng: &mut TestRng) -> $ty {
                    Strategy::gen_value(&(self.start..=<$ty>::MAX), rng)
                }
            }
        )*};
    }

    int_range_strategy!(
        (u8, u8),
        (u16, u16),
        (u32, u32),
        (u64, u64),
        (u128, u128),
        (usize, usize),
        (i8, u8),
        (i16, u16),
        (i32, u32),
        (i64, u64),
        (i128, u128),
        (isize, usize)
    );

    macro_rules! float_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn gen_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $ty;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    // --- Tuple strategies (arity 1..=6). --------------------------------

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            u128::arbitrary(rng) as i128
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let mut out = [0u8; N];
            for chunk in out.chunks_mut(8) {
                let word = rng.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
            out
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-balanced values; NaN/inf generation is not
            // needed by this workspace's tests.
            (rng.unit_f64() - 0.5) * 2e9
        }
    }

    /// Strategy generating arbitrary values of `A`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<A> {
        _marker: std::marker::PhantomData<A>,
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn gen_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for any value of `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any { _marker: std::marker::PhantomData }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Half-open size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { lo: exact, hi: exact + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty collection size range");
            SizeRange { lo: range.start, hi: range.end }
        }
    }

    /// Strategy generating `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `Option`s of an inner strategy's values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

/// Common imports for property tests, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property test functions.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0u32..10, ys in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Expands each test fn declared inside `proptest! { .. }`.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_args!(($config) ($name) ($body) [] [] $($args)*);
            }
        )*
    };
}

/// Tt-muncher over a proptest argument list. Each argument is either
/// `pattern in strategy` or `ident: Type` (shorthand for `any::<Type>()`).
/// Accumulates parenthesised patterns and strategies, then hands off to
/// `__proptest_run!`.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_args {
    // Terminal: all arguments consumed.
    (($config:expr) ($name:ident) ($body:block) [$($pats:tt)*] [$($strats:tt)*]) => {
        $crate::__proptest_run!(($config) ($name) ($body) [$($pats)*] [$($strats)*]);
    };
    // `pattern in strategy` — last argument (optional trailing comma).
    (($config:expr) ($name:ident) ($body:block) [$($pats:tt)*] [$($strats:tt)*] $p:pat in $s:expr $(,)?) => {
        $crate::__proptest_args!(($config) ($name) ($body) [$($pats)* ($p)] [$($strats)* ($s)]);
    };
    // `pattern in strategy`, more arguments follow.
    (($config:expr) ($name:ident) ($body:block) [$($pats:tt)*] [$($strats:tt)*] $p:pat in $s:expr, $($rest:tt)+) => {
        $crate::__proptest_args!(($config) ($name) ($body) [$($pats)* ($p)] [$($strats)* ($s)] $($rest)+);
    };
    // `ident: Type` — last argument (optional trailing comma).
    (($config:expr) ($name:ident) ($body:block) [$($pats:tt)*] [$($strats:tt)*] $i:ident : $t:ty $(,)?) => {
        $crate::__proptest_args!(($config) ($name) ($body) [$($pats)* ($i)] [$($strats)* ($crate::arbitrary::any::<$t>())]);
    };
    // `ident: Type`, more arguments follow.
    (($config:expr) ($name:ident) ($body:block) [$($pats:tt)*] [$($strats:tt)*] $i:ident : $t:ty, $($rest:tt)+) => {
        $crate::__proptest_args!(($config) ($name) ($body) [$($pats)* ($i)] [$($strats)* ($crate::arbitrary::any::<$t>())] $($rest)+);
    };
}

/// Emits the per-case loop for one property test.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_run {
    (($config:expr) ($name:ident) ($body:block) [$($pat:tt)*] [$($strat:tt)*]) => {{
        let config: $crate::test_runner::Config = $config;
        let strategies = ($($strat,)*);
        let mut rng = $crate::test_runner::TestRng::from_label(concat!(
            module_path!(), "::", stringify!($name),
        ));
        for case in 0..config.cases {
            let values = $crate::strategy::Strategy::gen_value(&strategies, &mut rng);
            let rendered = format!("{:?}", &values);
            // The parens around each pattern keep multi-token patterns
            // (e.g. `mut xs`) a single tt through the muncher.
            #[allow(unused_parens)]
            let ($($pat,)*) = values;
            let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                $body
                ::std::result::Result::Ok(())
            })();
            match outcome {
                ::std::result::Result::Ok(())
                | ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(reason)) => {
                    panic!(
                        "property '{}' falsified on case {}/{}:\n  {}\n  input: {}",
                        stringify!($name), case + 1, config.cases, reason, rendered,
                    );
                }
            }
        }
    }};
}

/// Rejects the current case without failing it (mirrors `prop_assume!`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {{
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    }};
    ($cond:expr, $($fmt:tt)+) => {{
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts a condition inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {{
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts equality inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    left, right, format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    left, right, format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_label("ranges");
        for _ in 0..1000 {
            let v = Strategy::gen_value(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::gen_value(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_sizes_respect_bounds() {
        let mut rng = TestRng::from_label("vecs");
        for _ in 0..200 {
            let v = Strategy::gen_value(&crate::collection::vec(any::<u8>(), 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = Strategy::gen_value(&crate::collection::vec(0u32..9, 3), &mut rng);
        assert_eq!(exact.len(), 3);
    }

    #[test]
    fn oneof_covers_all_variants() {
        let mut rng = TestRng::from_label("oneof");
        let strat = prop_oneof![
            2 => (0usize..1).prop_map(|_| "a"),
            1 => (0usize..1).prop_map(|_| "b"),
        ];
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..200 {
            match Strategy::gen_value(&strat, &mut rng) {
                "a" => seen_a = true,
                _ => seen_b = true,
            }
        }
        assert!(seen_a && seen_b);
    }

    #[test]
    fn option_of_produces_both() {
        let mut rng = TestRng::from_label("option");
        let strat = crate::option::of(0u8..10);
        let values: Vec<_> = (0..100).map(|_| Strategy::gen_value(&strat, &mut rng)).collect();
        assert!(values.iter().any(Option::is_some));
        assert!(values.iter().any(Option::is_none));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_smoke(x in 0u32..50, ys in crate::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(x < 50);
            prop_assert!(ys.len() < 8);
            prop_assert_eq!(x + 1, 1 + x);
            prop_assert_ne!(x, x + 1);
        }
    }

    proptest! {
        fn always_fails_inner(x in 0u32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics_with_input() {
        always_fails_inner();
    }
}
