//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API used by `crates/bench`:
//! `Criterion`, `BenchmarkGroup`, `Bencher::{iter, iter_custom}`,
//! `BenchmarkId`, `Throughput` and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is deliberately lightweight — a short warmup, then a
//! capped sampling loop — so `cargo bench` completes quickly while still
//! printing comparable ns/iter figures. There is no statistical machinery,
//! HTML report, or command-line parsing; unknown CLI flags are ignored so
//! harness-less bench binaries behave under `cargo bench`/`cargo test`.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Maximum wall-clock budget per benchmark, keeping full runs fast.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Iterations measured per benchmark (cap; the budget may stop us sooner).
const MEASURE_ITERS: u64 = 30;

/// Identifier for a single benchmark, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus parameter value, rendered `name/param`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only id (group name provides the prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation for a benchmark (reported, not verified).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup (also forces lazy setup in the closure's environment).
        std::hint::black_box(routine());
        let started = Instant::now();
        let mut iters = 0u64;
        while iters < MEASURE_ITERS && started.elapsed() < MEASURE_BUDGET {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.elapsed = started.elapsed();
        self.iters = iters.max(1);
    }

    /// Lets the routine time itself: `routine(n)` must execute `n`
    /// iterations and return the elapsed wall-clock time.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let iters = 10u64;
        self.elapsed = routine(iters);
        self.iters = iters;
    }

    fn report(&self, label: &str) {
        let per_iter = self.elapsed.as_nanos() / u128::from(self.iters.max(1));
        println!("bench: {label:<50} {per_iter:>12} ns/iter ({} iters)", self.iters);
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Criterion
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&id.label);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into() }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is time-capped.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Records the group throughput annotation (reported only).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Re-export of the standard black box, for parity with criterion's.
pub use std::hint::black_box;

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Harness-less bench binaries receive flags like `--bench` from
            // cargo; none affect this simplified runner.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::new();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Bytes(64));
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2));
            seen = n;
        });
        group.finish();
        assert_eq!(seen, 64);
    }

    #[test]
    fn iter_custom_uses_reported_duration() {
        let mut b = Bencher::default();
        b.iter_custom(|iters| Duration::from_nanos(100 * iters));
        assert_eq!(b.elapsed, Duration::from_nanos(1000));
    }
}
