//! Explores the nine Table 1 workloads: what the generated data looks like
//! and what shape of containment forest each induces — the structural
//! cause behind the performance spread of Figures 6 and 7.
//!
//! ```text
//! cargo run --release --example workload_explorer          # all nine
//! cargo run --release --example workload_explorer e80a4   # one workload
//! ```

use scbr::attr::AttrSchema;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::poset::PosetIndex;
use scbr::index::SubscriptionIndex;
use scbr_workloads::stats::WorkloadStats;
use scbr_workloads::{MarketConfig, StockMarket, Workload};
use sgx_sim::{CacheConfig, CostModel, MemorySim};

fn main() {
    let filter: Option<String> = std::env::args().nth(1);
    let market = StockMarket::generate(&MarketConfig::small(), 1);
    println!(
        "market: {} symbols × {} days = {} quotes\n",
        market.symbols().len(),
        market.config().days,
        market.len()
    );
    let n_subs = 5_000;

    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>10} {:>12}",
        "workload", "nodes", "roots", "depth", "bytes/sub", "sample"
    );
    println!("{}", "-".repeat(80));
    for workload in Workload::all() {
        if let Some(f) = &filter {
            if workload.name().as_str() != f {
                continue;
            }
        }
        let subs = workload.subscriptions(&market, n_subs, 7);
        let schema = AttrSchema::new();
        let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
        let mut index = PosetIndex::new(&mem);
        for (i, spec) in subs.iter().enumerate() {
            index.insert(
                SubscriptionId(i as u64),
                ClientId(i as u64),
                spec.compile(&schema).expect("compiles"),
            );
        }
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>10} {:>12}",
            workload.name().to_string(),
            index.node_count(),
            index.root_count(),
            index.depth(),
            index.logical_bytes() / n_subs as u64,
            subs[0].to_string().chars().take(40).collect::<String>()
        );
    }

    println!("\nper-workload dataset statistics:");
    for workload in Workload::all() {
        if let Some(f) = &filter {
            if workload.name().as_str() != f {
                continue;
            }
        }
        let stats = WorkloadStats::compute(&workload, &market, 4_000, 100, 11);
        println!("  {}", stats.row());
    }
    println!(
        "\nreading guide: deep + few roots = fast containment matching (e100a1);\n\
         shallow + many roots = near-linear scans (e80a4, extsub4) — the Figure 6 spread"
    );
}
