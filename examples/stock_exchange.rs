//! The paper's motivating scenario as a running system: a stock exchange
//! (producer) streams quotes through an untrusted cloud router to paying
//! clients, end to end over the in-process transport with real threads and
//! real crypto.
//!
//! ```text
//! cargo run --example stock_exchange
//! ```

use scbr::engine::RouterEngine;
use scbr::ids::ClientId;
use scbr::index::IndexKind;
use scbr::protocol::keys::{provision_sk_via_attestation, ProducerCrypto};
use scbr::roles::{ClientNode, Producer, ProducerCommand, Router};
use scbr::subscription::SubscriptionSpec;
use scbr_crypto::rng::CryptoRng;
use scbr_net::transport::{InProcNetwork, Transport};
use scbr_workloads::{MarketConfig, StockMarket};
use sgx_sim::attest::{AttestationService, VerifierPolicy};
use sgx_sim::SgxPlatform;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(5);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = InProcNetwork::new();
    let router_listener = net.bind("router")?;
    let producer_listener = net.bind("exchange")?;

    // --- Infrastructure provider: launches the routing enclave. ---------
    let platform = SgxPlatform::for_testing(1);
    let mut engine = RouterEngine::in_enclave(&platform, IndexKind::Poset)?;
    println!("[cloud] routing enclave launched");

    // --- Service provider: attests the enclave, provisions SK. ----------
    let mut exchange_rng = CryptoRng::from_seed(2);
    let exchange_keys = ProducerCrypto::generate(512, &mut exchange_rng)?;
    let mut ias = AttestationService::new();
    ias.trust_platform(platform.attestation_public_key().clone());
    let policy =
        VerifierPolicy::require_mr_enclave(engine.enclave().unwrap().identity().mr_enclave);
    let mut enclave_rng = CryptoRng::from_seed(3);
    let (sk, pk) = provision_sk_via_attestation(
        &platform,
        engine.enclave().unwrap(),
        &ias,
        &policy,
        &exchange_keys,
        &mut enclave_rng,
        &mut exchange_rng,
    )?;
    engine.call(|e| e.provision_keys(sk, pk));
    println!("[exchange] enclave attested; SK provisioned");

    // --- Spawn the roles. ------------------------------------------------
    let router = Router::spawn(router_listener, engine);
    let producer = Producer::spawn(
        producer_listener,
        net.connect("router")?,
        exchange_keys.clone(),
        exchange_rng,
    );

    // --- Clients with different portfolios. ------------------------------
    let portfolios: [(&str, SubscriptionSpec); 3] = [
        ("alice", SubscriptionSpec::new().eq("symbol", "A").lt("close", 100.0)),
        ("bob", SubscriptionSpec::new().eq("symbol", "B")),
        ("carol", SubscriptionSpec::new().gt("volume", 40_000i64)),
    ];
    let mut clients = Vec::new();
    for (i, (name, spec)) in portfolios.into_iter().enumerate() {
        let id = ClientId(i as u64 + 1);
        let mut client = ClientNode::connect(
            id,
            net.connect("exchange")?,
            net.connect("router")?,
            CryptoRng::from_seed(100 + i as u64),
        )?;
        client.set_producer_key(exchange_keys.public_key().clone());
        producer
            .handle()
            .send(ProducerCommand::Admit { client: id, public_key: client.public_key().clone() });
        while client.epochs_held() == 0 {
            client.drain_key_updates(Duration::from_millis(200))?;
        }
        let sub = client.subscribe(&spec, WAIT)?;
        println!("[{name}] admitted, group key received, subscription {sub} accepted");
        clients.push((name, client));
    }

    // --- The exchange publishes a morning of quotes. ----------------------
    let market = StockMarket::generate(&MarketConfig::small(), 7);
    let mut published = 0;
    for day in 0..3 {
        for sym in 0..market.symbols().len().min(4) {
            let quote = market.quote(sym, day);
            let publication = quote.to_publication(
                &[],
                format!("{} d{} close={}", quote.symbol, quote.day, quote.close).into_bytes(),
            );
            producer.handle().send(ProducerCommand::Publish(publication));
            published += 1;
        }
    }
    println!("[exchange] published {published} quotes");

    // --- Clients read their deliveries. -----------------------------------
    for (name, client) in clients.iter_mut() {
        let mut received = Vec::new();
        while let Some(delivery) = client.poll_delivery(Duration::from_millis(500))? {
            received.push(String::from_utf8_lossy(&delivery.payload).into_owned());
        }
        println!("[{name}] received {} matching quotes:", received.len());
        for r in received.iter().take(3) {
            println!("    {r}");
        }
    }

    producer.shutdown()?;
    let engine = router.join()?;
    println!(
        "[cloud] done: {} subscriptions registered, {} ecalls into the enclave",
        engine.engine().index().len(),
        engine.enclave().unwrap().ecall_count()
    );
    Ok(())
}
