//! Quickstart: the SCBR engine in thirty lines.
//!
//! Registers a couple of subscriptions in a matching engine hosted inside
//! a simulated SGX enclave and routes a few publications through it —
//! plaintext first, then the real encrypted path.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use scbr::engine::RouterEngine;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::IndexKind;
use scbr::protocol::keys::ProducerCrypto;
use scbr::publication::PublicationSpec;
use scbr::subscription::SubscriptionSpec;
use scbr_crypto::rng::CryptoRng;
use sgx_sim::SgxPlatform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simulated SGX machine (8 MB LLC, 128 MB EPC) and an enclave-hosted
    // routing engine on it.
    let platform = SgxPlatform::for_testing(1);
    let mut router = RouterEngine::in_enclave(&platform, IndexKind::Poset)?;
    println!(
        "enclave launched, mrenclave = {:02x?}…",
        &router.enclave().unwrap().identity().mr_enclave[..4]
    );

    // The producer owns PK (for clients) and SK (shared with the enclave).
    let mut rng = CryptoRng::from_seed(2);
    let producer = ProducerCrypto::generate(512, &mut rng)?;
    let (sk, pk) = (producer.sk().clone(), producer.public_key().clone());
    router.call(move |e| e.provision_keys(sk, pk));

    // Subscriptions travel encrypted and signed (`{s}SK` + signature).
    let alice = SubscriptionSpec::new().eq("symbol", "HAL").lt("price", 50.0);
    let bob = SubscriptionSpec::new().gt("volume", 10_000i64);
    for (i, (spec, client)) in [(alice, 1u64), (bob, 2u64)].into_iter().enumerate() {
        let envelope = producer.seal_registration(
            &spec,
            SubscriptionId(i as u64),
            ClientId(client),
            &mut rng,
        )?;
        router.call(|e| e.register_envelope(&envelope))?;
        println!("registered {spec} for client#{client}");
    }

    // Publications: the header is AES-CTR-encrypted under SK; the router
    // decrypts and matches *inside the enclave*.
    let quotes = [
        PublicationSpec::new().attr("symbol", "HAL").attr("price", 42.0).attr("volume", 500i64),
        PublicationSpec::new().attr("symbol", "HAL").attr("price", 55.0).attr("volume", 90_000i64),
        PublicationSpec::new().attr("symbol", "IBM").attr("price", 10.0).attr("volume", 3i64),
    ];
    for quote in &quotes {
        let header_ct = producer.encrypt_header(quote, &mut rng);
        let clients = router.call(|e| e.match_encrypted(&header_ct))?;
        println!(
            "quote {{symbol={}, price={}, volume={}}} -> {clients:?}",
            quote.header()[0].1,
            quote.header()[1].1,
            quote.header()[2].1
        );
    }

    println!(
        "\nvirtual time spent inside the enclave: {:.1} µs over {} ecalls",
        router.elapsed_ns() / 1_000.0,
        router.enclave().unwrap().ecall_count()
    );
    Ok(())
}
