//! The multi-hop overlay, demonstrated: a tree of attested routing
//! enclaves on five untrusted hosts.
//!
//! ```text
//!        r0 ── r1 ── r3 ── r4        (r2 hangs off r1)
//!              │
//!              r2
//! ```
//!
//! 1. **Attest** — every broker proves its measurement to the producer
//!    (SK provisioning) and to each neighbour (mutual-quote link
//!    handshake); a tampered router binary is refused a link.
//! 2. **Propagate** — subscriptions registered at edge brokers flow up
//!    the tree, covering-pruned per link.
//! 3. **Publish** — a batch injected at one edge crosses the tree in one
//!    enclave crossing per hop and is delivered exactly to the matching
//!    edge subscribers.
//!
//! ```text
//! cargo run --example overlay_fabric
//! ```

use scbr::ids::ClientId;
use scbr::index::IndexKind;
use scbr::{PublicationSpec, SubscriptionSpec};
use scbr_overlay::broker::Broker;
use scbr_overlay::fabric::{
    establish_link, router_measurement, FabricConfig, OverlayFabric, ROUTER_ENCLAVE_CODE,
};
use scbr_overlay::Topology;
use sgx_sim::attest::{AttestationService, VerifierPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Build + attest the fabric. ----------------------------------
    let topology = Topology::tree(5, &[(0, 1), (1, 2), (1, 3), (3, 4)])?;
    println!("building a 5-broker overlay (diameter {} hops) …", topology.diameter());
    let mut fabric = OverlayFabric::build(topology, FabricConfig::attested(2016))?;
    println!("all brokers attested; every link sealed under a mutual-quote key\n");

    // A tampered router build cannot join: its quote carries the wrong
    // measurement, so an honest broker refuses at the handshake.
    let mut honest = Broker::attested(10, 900, IndexKind::Poset, ROUTER_ENCLAVE_CODE, false)?;
    let mut rogue = Broker::attested(11, 901, IndexKind::Poset, b"router + backdoor", false)?;
    let mut service = AttestationService::new();
    service.trust_platform(honest.platform().expect("attested").attestation_public_key().clone());
    service.trust_platform(rogue.platform().expect("attested").attestation_public_key().clone());
    let policy = VerifierPolicy::require_mr_enclave(router_measurement());
    match establish_link(&mut rogue, &mut honest, &service, &policy) {
        Ok(()) => println!("rogue broker: UNEXPECTEDLY linked!"),
        Err(e) => println!("rogue broker refused a link ✓  ({e})\n"),
    }

    // --- 2. Covering-pruned subscription propagation. -------------------
    println!("subscribing at the edges:");
    let subs: [(usize, u64, SubscriptionSpec); 4] = [
        (0, 1, SubscriptionSpec::new().gt("price", 0.0)),
        (0, 2, SubscriptionSpec::new().gt("price", 50.0)), // covered by client 1's
        (2, 3, SubscriptionSpec::new().eq("symbol", "HAL")),
        // Pruned at r1 towards r0: client 3's broader HAL interest
        // already crossed that link.
        (4, 4, SubscriptionSpec::new().eq("symbol", "HAL").lt("price", 30.0)),
    ];
    for (router, client, spec) in &subs {
        fabric.subscribe(*router, ClientId(*client), spec)?;
        println!("  client {client} at r{router}: {spec}");
    }
    println!(
        "propagation: {} link-forwards sent, {} covering-pruned, {} index entries fabric-wide\n",
        fabric.total_forwarded(),
        fabric.total_pruned(),
        fabric.total_index_entries()
    );

    // --- 3. Multi-hop publication batch. --------------------------------
    let batch = [
        PublicationSpec::new().attr("symbol", "HAL").attr("price", 20.0),
        PublicationSpec::new().attr("symbol", "IBM").attr("price", 80.0),
        PublicationSpec::new().attr("symbol", "HAL").attr("price", -5.0),
    ];
    fabric.reset_counters();
    let deliveries = fabric.publish(4, &batch)?;
    println!("published a {}-message batch at r4:", batch.len());
    for d in &deliveries {
        println!("  publication {} → client {} at r{}", d.publication, d.client.0, d.router);
    }

    // The paper's cost lens: transition counts stay one-per-hop-per-batch.
    println!("\nper-broker enclave crossings for the batch:");
    for stats in fabric.broker_stats() {
        println!(
            "  r{}: {} ecalls ({} ocalls), {:>8.1} virtual µs, {} index entries",
            stats.router,
            stats.ecalls,
            stats.ocalls,
            stats.elapsed_ns / 1_000.0,
            stats.subscriptions
        );
    }
    println!("\ntotal: {} ecalls across 5 brokers for a 3-message batch", fabric.total_ecalls());
    Ok(())
}
