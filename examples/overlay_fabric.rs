//! The multi-hop overlay, demonstrated: a tree of attested routing
//! enclaves on five untrusted hosts — including a mid-run broker crash
//! and sealed-recovery rejoin.
//!
//! ```text
//!        r0 ── r1 ── r3 ── r4        (r2 hangs off r1)
//!              │
//!              r2
//! ```
//!
//! 1. **Attest** — every broker proves its measurement to the producer
//!    (SK provisioning) and to each neighbour (mutual-quote link
//!    handshake); a tampered router binary is refused a link.
//! 2. **Propagate** — subscriptions registered at edge brokers flow up
//!    the tree, covering-pruned per link.
//! 3. **Publish** — a batch injected at one edge crosses the tree in one
//!    enclave crossing per hop and is delivered exactly to the matching
//!    edge subscribers.
//! 4. **Crash + rejoin** — a broker loses all volatile state, restarts
//!    from its rollback-protected sealed record, re-attests, re-keys its
//!    links and asks the surviving neighbours to replay their live sets;
//!    delivery is exact again, with recovery traffic only on its own
//!    links.
//!
//! ```text
//! cargo run --example overlay_fabric
//! ```

use scbr::ids::ClientId;
use scbr::index::IndexKind;
use scbr::{PublicationSpec, SubscriptionSpec};
use scbr_overlay::broker::{Broker, Input, Output};
use scbr_overlay::fabric::{router_measurement, FabricConfig, OverlayFabric, ROUTER_ENCLAVE_CODE};
use scbr_overlay::Topology;
use sgx_sim::attest::{AttestationService, VerifierPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Build + attest the fabric. ----------------------------------
    let topology = Topology::tree(5, &[(0, 1), (1, 2), (1, 3), (3, 4)])?;
    println!("building a 5-broker overlay (diameter {} hops) …", topology.diameter());
    let mut fabric = OverlayFabric::build(topology, FabricConfig::attested(2016))?;
    println!("all brokers attested; every link sealed under a mutual-quote key\n");

    // A tampered router build cannot join: its quote carries the wrong
    // measurement, so an honest broker refuses the handshake hello.
    let mut rng = scbr_crypto::rng::CryptoRng::from_seed(900);
    let producer = scbr::protocol::keys::ProducerCrypto::generate(512, &mut rng)?;
    let mut honest = Broker::attested(10, 900, IndexKind::Poset, ROUTER_ENCLAVE_CODE, false)?;
    let mut rogue = Broker::attested(11, 901, IndexKind::Poset, b"router + backdoor", false)?;
    let mut service = AttestationService::new();
    service.trust_platform(honest.platform().expect("attested").attestation_public_key().clone());
    service.trust_platform(rogue.platform().expect("attested").attestation_public_key().clone());
    let policy = VerifierPolicy::require_mr_enclave(router_measurement());
    let lax =
        VerifierPolicy { mr_enclave: None, mr_signer: None, min_isv_svn: 0, allow_debug: true };
    honest.set_neighbors(&[11]);
    rogue.set_neighbors(&[10]);
    honest.configure_trust(service.clone(), policy.clone());
    rogue.configure_trust(service.clone(), lax.clone());
    honest.provision_attested(&service, &policy, &producer, &mut rng)?;
    rogue.provision_attested(&service, &lax, &producer, &mut rng)?;
    let hello = honest
        .step(0, Input::Tick)?
        .into_iter()
        .find_map(|o| match o {
            Output::Frame(f) => Some(f),
            _ => None,
        })
        .expect("honest broker initiates toward the higher id");
    let accept = rogue
        .step(1, Input::Frame { from: 10, bytes: hello.bytes })?
        .into_iter()
        .find_map(|o| match o {
            Output::Frame(f) => Some(f),
            _ => None,
        })
        .expect("rogue responder answers");
    match honest.step(2, Input::Frame { from: 11, bytes: accept.bytes }) {
        Ok(_) => println!("rogue broker: UNEXPECTEDLY linked!"),
        Err(e) => println!("rogue broker refused a link ✓  ({e})\n"),
    }

    // --- 2. Covering-pruned subscription propagation. -------------------
    println!("subscribing at the edges:");
    let subs: [(usize, u64, SubscriptionSpec); 4] = [
        (0, 1, SubscriptionSpec::new().gt("price", 0.0)),
        (0, 2, SubscriptionSpec::new().gt("price", 50.0)), // covered by client 1's
        (2, 3, SubscriptionSpec::new().eq("symbol", "HAL")),
        // Pruned at r1 towards r0: client 3's broader HAL interest
        // already crossed that link.
        (4, 4, SubscriptionSpec::new().eq("symbol", "HAL").lt("price", 30.0)),
    ];
    for (router, client, spec) in &subs {
        fabric.subscribe(*router, ClientId(*client), spec)?;
        println!("  client {client} at r{router}: {spec}");
    }
    println!(
        "propagation: {} link-forwards sent, {} covering-pruned, {} index entries fabric-wide\n",
        fabric.total_forwarded(),
        fabric.total_pruned(),
        fabric.total_index_entries()
    );

    // --- 3. Multi-hop publication batch. --------------------------------
    let batch = [
        PublicationSpec::new().attr("symbol", "HAL").attr("price", 20.0),
        PublicationSpec::new().attr("symbol", "IBM").attr("price", 80.0),
        PublicationSpec::new().attr("symbol", "HAL").attr("price", -5.0),
    ];
    fabric.reset_counters();
    let deliveries = fabric.publish(4, &batch)?;
    println!("published a {}-message batch at r4:", batch.len());
    for d in &deliveries {
        println!("  publication {} → client {} at r{}", d.publication, d.client.0, d.router);
    }

    // The paper's cost lens: transition counts stay one-per-hop-per-batch.
    println!("\nper-broker enclave crossings for the batch:");
    for stats in fabric.broker_stats() {
        println!(
            "  r{}: {} ecalls ({} ocalls), {:>8.1} virtual µs, {} index entries",
            stats.router,
            stats.ecalls,
            stats.ocalls,
            stats.elapsed_ns / 1_000.0,
            stats.subscriptions
        );
    }
    println!("\ntotal: {} ecalls across 5 brokers for a 3-message batch", fabric.total_ecalls());

    // --- 4. Crash + sealed-recovery rejoin. -----------------------------
    println!("\ncrashing r1 (the hub): all volatile state gone …");
    fabric.crash(1)?;
    // Life goes on around the hole — this removal's frame toward r1 is
    // dropped, and the rejoin reconciles it later.
    let lost = fabric.publish(4, &[PublicationSpec::new().attr("symbol", "HAL")])?;
    println!(
        "  publish during the outage: {} deliveries (r0/r2 side unreachable), {} frames dropped",
        lost.len(),
        fabric.dropped_frames()
    );
    let report = fabric.restart(1)?;
    println!(
        "r1 rejoined: {} subs restored from the sealed record, {} envelopes replayed by \
         neighbours, {} stale dropped, {} recovery frames (incident links only)",
        report.restored, report.replayed, report.dropped_stale, report.recovery_frames
    );
    let healed = fabric.publish(4, &batch)?;
    println!("post-rejoin delivery: {} deliveries (exact again)", healed.len());
    Ok(())
}
