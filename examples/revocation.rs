//! Group-key lifecycle (§3.4): payloads are encrypted under a rotating
//! group key the router never sees; revoking a client and rekeying cuts it
//! off from *new* messages while past ones stay readable.
//!
//! ```text
//! cargo run --example revocation
//! ```

use scbr::ids::ClientId;
use scbr::protocol::group::{GroupKeyManager, GroupKeyStore};
use scbr_crypto::rng::CryptoRng;
use scbr_crypto::rsa::RsaKeyPair;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = CryptoRng::from_seed(1);
    let mut group = GroupKeyManager::new(&mut rng);

    // Two paying clients with their own key pairs.
    let alice_keys = RsaKeyPair::generate(512, &mut rng)?;
    let bob_keys = RsaKeyPair::generate(512, &mut rng)?;
    group.add_member(ClientId(1), alice_keys.public().clone());
    group.add_member(ClientId(2), bob_keys.public().clone());

    let mut alice = GroupKeyStore::new();
    let mut bob = GroupKeyStore::new();
    for (client, wrapped) in group.key_updates(&mut rng)? {
        match client {
            ClientId(1) => alice.ingest_update(&alice_keys, &wrapped)?,
            _ => bob.ingest_update(&bob_keys, &wrapped)?,
        };
    }
    println!("epoch {}: both members hold the group key", group.epoch());

    let (epoch0, quote1) = group.encrypt_payload(b"HAL 49.75 +0.3%", &mut rng);
    println!("  alice reads: {:?}", String::from_utf8_lossy(&alice.open_payload(epoch0, &quote1)?));
    println!("  bob reads:   {:?}", String::from_utf8_lossy(&bob.open_payload(epoch0, &quote1)?));

    // Bob stops paying: revoke + rekey + redistribute.
    println!("\nbob's subscription lapses: revoking and rotating the key …");
    group.remove_member(ClientId(2));
    group.rekey(&mut rng);
    for (client, wrapped) in group.key_updates(&mut rng)? {
        assert_eq!(client, ClientId(1));
        alice.ingest_update(&alice_keys, &wrapped)?;
    }

    let (epoch1, quote2) = group.encrypt_payload(b"HAL 51.20 +2.9%", &mut rng);
    println!("epoch {}: new quote published", group.epoch());
    println!("  alice reads: {:?}", String::from_utf8_lossy(&alice.open_payload(epoch1, &quote2)?));
    match bob.open_payload(epoch1, &quote2) {
        Ok(_) => println!("  bob reads:   UNEXPECTEDLY decrypted!"),
        Err(e) => println!("  bob reads:   ✗ cannot decrypt ({e})"),
    }
    // …but bob keeps what he legitimately received.
    println!(
        "  bob re-reads the old quote: {:?} (history stays readable)",
        String::from_utf8_lossy(&bob.open_payload(epoch0, &quote1)?)
    );
    Ok(())
}
