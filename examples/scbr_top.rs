//! `top(1)` for an SCBR fabric: build a small attested overlay, run
//! traffic, and dump the unified telemetry snapshot — per-broker
//! counter tables, per-stage latency percentiles, and per-publication
//! cross-hop traces.
//!
//! Everything printed here comes from one call,
//! [`OverlayFabric::telemetry`]: each broker's stats structs are folded
//! through the [`MetricsRegistry`] into a namespaced snapshot
//! (`broker.*`, `mem.*`, `link.<neighbor>.*`, `trace.dropped`), the
//! in-enclave flight recorders are drained through a costed ocall, and
//! the fabric-level registry aggregates the totals the last two lines
//! report in `key=value` form (CI greps them).
//!
//! ```text
//! cargo run --example scbr_top
//! ```

use scbr::ids::ClientId;
use scbr::publication::PublicationSpec;
use scbr::subscription::SubscriptionSpec;
use scbr_overlay::broker::HeartbeatConfig;
use scbr_overlay::fabric::{FabricConfig, OverlayFabric};
use scbr_overlay::Topology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A 3-broker attested chain, fully instrumented. --------------
    let config =
        FabricConfig::attested(2016).with_heartbeats(HeartbeatConfig::default()).with_telemetry();
    let mut fabric = OverlayFabric::build(Topology::line(3), config)?;
    println!("3-broker attested line fabric, heartbeats + telemetry on\n");

    // --- 2. Traffic: subscribers at both edges, batches from router 2. --
    let specs = [
        SubscriptionSpec::new().eq("symbol", "HAL").lt("price", 50.0),
        SubscriptionSpec::new().gt("volume", 10_000i64),
        SubscriptionSpec::new().eq("symbol", "IBM"),
    ];
    for (i, spec) in specs.iter().enumerate() {
        let at = if i % 2 == 0 { 0 } else { 1 };
        fabric.subscribe(at, ClientId(i as u64), spec)?;
    }
    let batches = [
        vec![PublicationSpec::new().attr("symbol", "HAL").attr("price", 42.0).attr("volume", 5i64)],
        vec![
            PublicationSpec::new().attr("symbol", "HAL").attr("price", 60.0).attr("volume", 9i64),
            PublicationSpec::new()
                .attr("symbol", "IBM")
                .attr("price", 10.0)
                .attr("volume", 90_000i64),
        ],
    ];
    let mut traced = Vec::new();
    for batch in &batches {
        let (trace, deliveries) = fabric.publish_traced(2, batch)?;
        traced.push((trace, deliveries.len()));
    }
    // A few detection rounds so the liveness timers emit heartbeats.
    for _ in 0..4 {
        fabric.tick_round()?;
    }

    // --- 3. The dump: one snapshot, three views. -------------------------
    let snap = fabric.telemetry();

    println!("{:<24} {:>10} {:>10} {:>10}", "counter", "broker 0", "broker 1", "broker 2");
    for key in ["broker.ecalls", "broker.ocalls", "broker.heartbeats", "broker.subscriptions"] {
        print!("{key:<24}");
        for broker in &snap.brokers {
            print!(" {:>10}", broker.counters.get(key).unwrap_or(0));
        }
        println!();
    }

    println!("\n{:<10} {:<14} {:>8} {:>10} {:>10}", "broker", "stage", "count", "p50 ns", "p99 ns");
    for broker in &snap.brokers {
        for s in &broker.stages {
            println!(
                "{:<10} {:<14} {:>8} {:>10} {:>10}",
                broker.broker,
                s.stage.label(),
                s.count,
                s.p50_ns,
                s.p99_ns
            );
        }
    }

    println!("\nper-publication traces (hop order is the host-side tick order):");
    for (trace, delivered) in &traced {
        let path = snap.trace_path(*trace);
        let hops: Vec<String> = path
            .iter()
            .map(|h| {
                // `matched_bucket` is log₂-coarsened on purpose: 0 means
                // nothing matched here, k means ≥ 2^(k-1) local matches.
                let matched =
                    if h.matched_bucket == 0 { 0 } else { 1u64 << (h.matched_bucket - 1) };
                format!("r{}(match {} ns, ≥{} matched)", h.broker, h.match_latency_ns(), matched)
            })
            .collect();
        println!("  trace {:>3}: {} → {delivered} delivered", trace.0, hops.join(" → "));
        assert!(!path.is_empty(), "telemetry is on: every batch must leave hop records");
    }

    // --- 4. Greppable fabric totals for CI. ------------------------------
    let ecalls = snap.fabric.get("total.ecalls").unwrap_or(0);
    let heartbeats = snap.fabric.get("total.heartbeats").unwrap_or(0);
    println!("\necalls_total={ecalls}");
    println!("heartbeats_total={heartbeats}");
    assert!(ecalls > 0, "an attested fabric cannot run without enclave crossings");
    assert!(heartbeats > 0, "heartbeat timers ticked, so frames must have been emitted");
    Ok(())
}
