//! The trust story of §3.1, demonstrated: why the producer's secret key
//! only ever lands in the *right* code on the *right* hardware.
//!
//! Three attempts to obtain `SK`:
//!
//! 1. the genuine routing enclave on a genuine platform — succeeds;
//! 2. a tampered router binary (different measurement) — rejected by the
//!    producer's measurement policy;
//! 3. the right binary on an *untrusted* platform (an SGX emulator, say) —
//!    rejected by the attestation service.
//!
//! Then the sealed-state lifecycle: the enclave persists its state,
//! restarts, restores — and a rollback attempt by the host is caught.
//!
//! ```text
//! cargo run --example cloud_router
//! ```

use scbr::protocol::keys::{provision_sk_via_attestation, ProducerCrypto};
use scbr_crypto::rng::CryptoRng;
use sgx_sim::attest::{AttestationService, VerifierPolicy};
use sgx_sim::enclave::EnclaveBuilder;
use sgx_sim::seal::{SealPolicy, VersionedSeal};
use sgx_sim::SgxPlatform;

fn router_builder(code: &[u8]) -> EnclaveBuilder {
    EnclaveBuilder::new("scbr-router").add_page(code).isv_prod_id(1)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const GENUINE_CODE: &[u8] = b"scbr matching engine v1.0";

    // The producer knows the measurement of the router build it audited.
    let expected = router_builder(GENUINE_CODE).measurement();
    println!("producer pins mrenclave {:02x?}…\n", &expected[..6]);

    let genuine_platform = SgxPlatform::for_testing(1);
    let mut ias = AttestationService::new();
    ias.trust_platform(genuine_platform.attestation_public_key().clone());
    let policy = VerifierPolicy::require_mr_enclave(expected);

    let mut producer_rng = CryptoRng::from_seed(2);
    let producer = ProducerCrypto::generate(512, &mut producer_rng)?;

    // --- 1. Genuine enclave, genuine platform. ---------------------------
    let genuine = genuine_platform.launch(router_builder(GENUINE_CODE))?;
    let mut rng1 = CryptoRng::from_seed(3);
    match provision_sk_via_attestation(
        &genuine_platform,
        &genuine,
        &ias,
        &policy,
        &producer,
        &mut rng1,
        &mut producer_rng,
    ) {
        Ok((sk, _pk)) => {
            println!("[1] genuine enclave:   SK provisioned ({} key bytes) ✓", sk.as_bytes().len())
        }
        Err(e) => println!("[1] genuine enclave:   UNEXPECTED failure: {e}"),
    }

    // --- 2. Tampered router binary. ---------------------------------------
    let tampered =
        genuine_platform.launch(router_builder(b"scbr matching engine v1.0 + backdoor"))?;
    let mut rng2 = CryptoRng::from_seed(4);
    match provision_sk_via_attestation(
        &genuine_platform,
        &tampered,
        &ias,
        &policy,
        &producer,
        &mut rng2,
        &mut producer_rng,
    ) {
        Ok(_) => println!("[2] tampered binary:   UNEXPECTEDLY got SK!"),
        Err(e) => println!("[2] tampered binary:   rejected ✓  ({e})"),
    }

    // --- 3. Genuine binary, untrusted platform. ----------------------------
    let emulator = SgxPlatform::for_testing(99); // IAS does not know this key
    let on_emulator = emulator.launch(router_builder(GENUINE_CODE))?;
    let mut rng3 = CryptoRng::from_seed(5);
    match provision_sk_via_attestation(
        &emulator,
        &on_emulator,
        &ias,
        &policy,
        &producer,
        &mut rng3,
        &mut producer_rng,
    ) {
        Ok(_) => println!("[3] untrusted platform: UNEXPECTEDLY got SK!"),
        Err(e) => println!("[3] untrusted platform: rejected ✓  ({e})"),
    }

    // --- Sealed state with rollback protection. ----------------------------
    println!("\nsealed-state lifecycle:");
    let counter = genuine_platform.create_counter();
    let mut seal_rng = CryptoRng::from_seed(6);
    let v1 = genuine.ecall(|ctx| {
        VersionedSeal::seal(
            ctx,
            SealPolicy::MrEnclave,
            &genuine_platform,
            counter,
            b"index: 10k subs",
            &mut seal_rng,
        )
    })?;
    let v2 = genuine.ecall(|ctx| {
        VersionedSeal::seal(
            ctx,
            SealPolicy::MrEnclave,
            &genuine_platform,
            counter,
            b"index: 12k subs",
            &mut seal_rng,
        )
    })?;
    println!("  sealed v1 ({} bytes) and v2 ({} bytes)", v1.len(), v2.len());

    // Host restarts the enclave and serves the current file: fine.
    let restarted = genuine_platform.launch(router_builder(GENUINE_CODE))?;
    let restored = restarted.ecall(|ctx| {
        VersionedSeal::unseal(ctx, SealPolicy::MrEnclave, &genuine_platform, counter, &v2)
    })?;
    println!("  restart + restore:   {:?} ✓", String::from_utf8_lossy(&restored));

    // Host serves the stale file instead: caught by the monotonic counter.
    match restarted.ecall(|ctx| {
        VersionedSeal::unseal(ctx, SealPolicy::MrEnclave, &genuine_platform, counter, &v1)
    }) {
        Ok(_) => println!("  rollback:            UNEXPECTEDLY accepted!"),
        Err(e) => println!("  rollback:            rejected ✓  ({e})"),
    }

    // Every trust operation above crossed a call gate — the cost axis the
    // batch-first pipeline amortises for data traffic.
    let genuine_stats = genuine.memory().stats();
    let restarted_stats = restarted.memory().stats();
    println!("\nenclave crossings (MemStats.ecalls):");
    println!(
        "  genuine router:   {} ecalls ({} ocalls) across attestation + sealing",
        genuine_stats.ecalls, genuine_stats.ocalls
    );
    println!(
        "  restarted router: {} ecalls ({} ocalls) across restore + rollback checks",
        restarted_stats.ecalls, restarted_stats.ocalls
    );
    Ok(())
}
