//! The stock-exchange scenario over real TCP sockets: producer, router and
//! client run against `127.0.0.1` listeners instead of the in-process
//! transport, standing in for the prototype's ZeroMQ deployment (producer
//! and consumer on one machine, the filtering engine on another).
//!
//! ```text
//! cargo run --example tcp_deployment
//! ```

use scbr::engine::RouterEngine;
use scbr::ids::ClientId;
use scbr::index::IndexKind;
use scbr::protocol::keys::ProducerCrypto;
use scbr::publication::PublicationSpec;
use scbr::roles::{ClientNode, Producer, ProducerCommand, Router};
use scbr::subscription::SubscriptionSpec;
use scbr_crypto::rng::CryptoRng;
use scbr_net::transport::{TcpTransport, Transport};
use sgx_sim::SgxPlatform;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tcp = TcpTransport::new();
    let (router_listener, router_addr) = tcp.bind_ephemeral()?;
    let (producer_listener, producer_addr) = tcp.bind_ephemeral()?;
    println!("router on {router_addr}, producer on {producer_addr}");

    // Enclave-hosted engine with keys installed directly (see the
    // `stock_exchange` example for the full attestation flow).
    let platform = SgxPlatform::for_testing(1);
    let mut engine = RouterEngine::in_enclave(&platform, IndexKind::Poset)?;
    let mut rng = CryptoRng::from_seed(2);
    let keys = ProducerCrypto::generate(512, &mut rng)?;
    let (sk, pk) = (keys.sk().clone(), keys.public_key().clone());
    engine.call(move |e| e.provision_keys(sk, pk));

    let router = Router::spawn(router_listener, engine);
    let producer =
        Producer::spawn(producer_listener, tcp.connect(&router_addr)?, keys.clone(), rng);

    // One client over TCP.
    let mut client = ClientNode::connect(
        ClientId(1),
        tcp.connect(&producer_addr)?,
        tcp.connect(&router_addr)?,
        CryptoRng::from_seed(3),
    )?;
    client.set_producer_key(keys.public_key().clone());
    producer.handle().send(ProducerCommand::Admit {
        client: ClientId(1),
        public_key: client.public_key().clone(),
    });
    while client.epochs_held() == 0 {
        client.drain_key_updates(Duration::from_millis(200))?;
    }
    let sub = client.subscribe(
        &SubscriptionSpec::new().eq("symbol", "HAL").lt("price", 50.0),
        Duration::from_secs(5),
    )?;
    println!("subscription {sub} accepted over tcp");

    producer.handle().send(ProducerCommand::Publish(
        PublicationSpec::new()
            .attr("symbol", "HAL")
            .attr("price", 48.75)
            .payload(b"HAL 48.75 -0.4%".to_vec()),
    ));
    let delivery = client.poll_delivery(Duration::from_secs(5))?.expect("delivery arrives");
    println!("delivered over tcp: {:?}", String::from_utf8_lossy(&delivery.payload));

    producer.shutdown()?;
    router.join()?;
    println!("clean shutdown");
    Ok(())
}
