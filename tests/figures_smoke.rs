//! The paper's headline claims, asserted as tests at smoke scale.
//!
//! Each test runs a miniature version of one evaluation experiment and
//! checks the *directional* result the corresponding figure reports. The
//! full-scale numbers live in `EXPERIMENTS.md`; these tests keep the
//! reproduction honest under refactoring.

use scbr::engine::RouterEngine;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::IndexKind;
use scbr_bench::{AspeExperiment, EngineConfig, MatchExperiment, Scale};
use scbr_workloads::{StockMarket, Workload, WorkloadName};
use sgx_sim::{EpcConfig, SgxPlatform};

fn setup() -> (Scale, StockMarket, SgxPlatform) {
    let scale = Scale::smoke();
    let market = StockMarket::generate(&scale.market, 1);
    let platform = SgxPlatform::for_testing(2);
    (scale, market, platform)
}

/// Figure 5's two claims: AES overhead is small and roughly constant;
/// running inside the enclave is never cheaper than outside.
#[test]
fn fig5_encryption_overhead_small_and_constant() {
    let (_, market, platform) = setup();
    let workload = Workload::from_name(WorkloadName::E100A1);
    let subs = workload.subscriptions(&market, 2_000, 3);
    let pubs = workload.publications(&market, 8, 4);

    let mut gaps = Vec::new();
    for count in [500usize, 2_000] {
        let mut plain = MatchExperiment::new(&platform, EngineConfig::OutPlain);
        let mut aes = MatchExperiment::new(&platform, EngineConfig::OutAes);
        plain.load_to(&subs, count);
        aes.load_to(&subs, count);
        let p = plain.measure(&pubs);
        let a = aes.measure(&pubs);
        let gap = a.matching_us - p.matching_us;
        assert!(gap > 0.0, "aes costs something");
        assert!(gap < 5.0, "aes overhead below 5 µs (paper), got {gap}");
        gaps.push(gap);
    }
    let spread = (gaps[0] - gaps[1]).abs();
    assert!(spread < 2.0, "aes overhead roughly constant, spread {spread}");
}

#[test]
fn fig5_enclave_never_cheaper() {
    let (_, market, platform) = setup();
    let workload = Workload::from_name(WorkloadName::E100A1);
    let subs = workload.subscriptions(&market, 2_000, 3);
    let pubs = workload.publications(&market, 8, 4);
    let mut inside = MatchExperiment::new(&platform, EngineConfig::InAes);
    let mut outside = MatchExperiment::new(&platform, EngineConfig::OutAes);
    inside.load_to(&subs, 2_000);
    outside.load_to(&subs, 2_000);
    assert!(inside.measure(&pubs).matching_us > outside.measure(&pubs).matching_us);
}

/// Figure 6's claim: equality-heavy workloads (deep containment) match
/// faster than attribute-multiplied ones (shallow forests).
#[test]
fn fig6_workload_ordering() {
    let (_, market, platform) = setup();
    let n = 3_000;
    let time_of = |name: WorkloadName| {
        let w = Workload::from_name(name);
        let subs = w.subscriptions(&market, n, 5);
        let pubs = w.publications(&market, 8, 6);
        let mut exp = MatchExperiment::new(&platform, EngineConfig::OutPlain);
        exp.load_to(&subs, n);
        exp.measure(&pubs).matching_us
    };
    let fast = time_of(WorkloadName::E100A1);
    let slow = time_of(WorkloadName::ExtSub4);
    assert!(slow > fast, "extsub4 ({slow} µs) should be slower than e100a1 ({fast} µs)");
}

/// Figure 7's claim: ASPE is substantially slower than enclave-based
/// matching and its gap grows with the database.
#[test]
fn fig7_aspe_slower_and_growing() {
    let (_, market, platform) = setup();
    let workload = Workload::from_name(WorkloadName::E100A1);
    let subs = workload.subscriptions(&market, 2_000, 7);
    let pubs = workload.publications(&market, 4, 8);

    let mut gap_small = 0.0;
    let mut gap_large = 0.0;
    for (count, gap) in [(500usize, &mut gap_small), (2_000usize, &mut gap_large)] {
        let mut aspe = AspeExperiment::new(&platform, &workload);
        let mut scbr = MatchExperiment::new(&platform, EngineConfig::InAes);
        aspe.load_to(&subs, count);
        scbr.load_to(&subs, count);
        let a = aspe.measure(&pubs).matching_us;
        let s = scbr.measure(&pubs).matching_us;
        assert!(a > s, "aspe {a} vs scbr {s} at {count}");
        *gap = a / s;
    }
    assert!(
        gap_large > gap_small,
        "aspe's relative cost grows: {gap_small:.1}x -> {gap_large:.1}x"
    );
}

/// Figure 8's claim: once the database exceeds the usable EPC, enclave
/// registration pays for page swaps and slows down by an order of
/// magnitude relative to native, while fault counts explode.
#[test]
fn fig8_paging_cliff() {
    let (_, market, _) = setup();
    // A tiny EPC (2 MB usable) makes the cliff reachable at smoke scale.
    let platform = SgxPlatform::with_config(
        3,
        sgx_sim::CacheConfig::default(),
        EpcConfig { total_bytes: 4 << 20, usable_bytes: 2 << 20, page_size: 4096 },
        sgx_sim::CostModel::default(),
        512,
    );
    let workload = Workload::from_name(WorkloadName::E80A1);
    let n = 20_000; // ~8.3 MB of nodes, 4x the usable EPC
    let subs = workload.subscriptions(&market, n, 9);

    let mut inside = RouterEngine::in_enclave(&platform, IndexKind::Poset).expect("launch");
    let mut outside = RouterEngine::outside(&platform, IndexKind::Poset);

    let mut ratios = Vec::new();
    let bucket = 2_500;
    let mut registered = 0usize;
    while registered < n {
        let next = (registered + bucket).min(subs.len());
        inside.reset_counters();
        outside.reset_counters();
        for (i, sub) in subs.iter().enumerate().take(next).skip(registered) {
            let id = SubscriptionId(i as u64);
            let client = ClientId(i as u64);
            inside.call(|e| e.register_plain(id, client, sub)).expect("in");
            outside.call(|e| e.register_plain(id, client, sub)).expect("out");
        }
        ratios.push(inside.stats().elapsed_ns / outside.stats().elapsed_ns);
        registered = next;
    }
    let first = ratios[0];
    let last = *ratios.last().expect("nonempty");
    assert!(last > 2.0 * first, "paging cliff: early ratio {first:.1}, late ratio {last:.1}");
    assert!(inside.stats().epc_swaps > 0, "enclave registration swapped pages at 4x EPC");
}

/// The engine agrees across placements regardless of encryption — the
/// reproduction's results are about *performance*, never about different
/// matching semantics.
#[test]
fn all_configs_agree_on_results() {
    let (_, market, platform) = setup();
    let workload = Workload::from_name(WorkloadName::ExtSub2);
    let subs = workload.subscriptions(&market, 1_000, 10);
    let pubs = workload.publications(&market, 10, 11);

    let results: Vec<Vec<u64>> =
        [EngineConfig::InAes, EngineConfig::InPlain, EngineConfig::OutAes, EngineConfig::OutPlain]
            .iter()
            .map(|config| {
                let mut exp = MatchExperiment::new(&platform, *config);
                exp.load_to(&subs, subs.len());
                let mut all = Vec::new();
                for p in &pubs {
                    all.extend(exp.match_clients(p));
                }
                all
            })
            .collect();
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
}

/// The batching ablation's two claims (this PR's acceptance criteria),
/// asserted on the deterministic virtual clocks: measured transitions
/// scale as `slices / batch_size`, and a partitioned router whose slices
/// each fit the EPC beats the single EPC-thrashing slice on a Zipf
/// workload.
#[test]
fn batching_amortises_transitions_and_partitioning_beats_epc_thrash() {
    use scbr::cluster::PartitionedRouter;
    use scbr_crypto::ctr::AesCtr;
    use scbr_crypto::rng::CryptoRng;
    use sgx_sim::{CacheConfig, CostModel};

    let scale = Scale::smoke();
    let market = StockMarket::generate(&scale.market, 1);
    let workload = Workload::from_name(WorkloadName::E80A1Zz100);
    // A tight EPC: one slice's index overflows usable EPC, two fit.
    let epc = EpcConfig { total_bytes: 2 << 20, usable_bytes: 1 << 20, page_size: 4096 };
    let platform =
        SgxPlatform::with_config(31, CacheConfig::default(), epc, CostModel::default(), 512);
    let subs = workload.subscriptions(&market, 5_000, 7);
    let pubs = workload.publications(&market, 32, 8);
    let sk = scbr_crypto::ctr::SymmetricKey::from_bytes([0x5c; 16]);
    let pk = scbr_crypto::rsa::RsaPublicKey::from_parts(
        scbr_crypto::BigUint::from_u64(3233),
        scbr_crypto::BigUint::from_u64(17),
    );
    let mut rng = CryptoRng::from_seed(3);
    let headers: Vec<Vec<u8>> = pubs
        .iter()
        .map(|p| AesCtr::encrypt_with_nonce(&sk, &mut rng, &scbr::codec::encode_header(p)))
        .collect();

    let mut virt_per_batch = Vec::new();
    for slices in [1usize, 2] {
        let mut router =
            PartitionedRouter::in_enclaves(&platform, IndexKind::Poset, slices).expect("launch");
        router.provision_keys(&sk, &pk);
        for (i, spec) in subs.iter().enumerate() {
            router
                .register_plain(SubscriptionId(i as u64), ClientId(i as u64), spec)
                .expect("register");
        }
        if slices == 1 {
            assert!(router.total_epc_swaps() > 0, "single slice must thrash the EPC");
        } else {
            assert_eq!(router.total_epc_swaps(), 0, "partitioned slices fit the EPC");
        }
        for batch in [1usize, 8, 32] {
            router.reset_counters();
            for chunk in headers.chunks(batch) {
                router.match_encrypted_batch(chunk).expect("match");
            }
            // Transition count scales as slices / batch (ceil per chunk).
            let expected = slices as u64 * headers.chunks(batch).len() as u64;
            assert_eq!(router.total_ecalls(), expected, "slices {slices}, batch {batch}");
            if slices == 1 {
                virt_per_batch.push(router.parallel_elapsed_ns());
            }
        }
        if slices == 2 {
            // The partitioned router's critical path beats the thrashing
            // single slice (compared at batch 32, the last measurement).
            assert!(
                router.parallel_elapsed_ns() < virt_per_batch[2] / 2.0,
                "2 fitting slices at least halve the thrashing slice's time"
            );
        }
    }
    // Batch 32 beats batch 1 by roughly the 31 saved crossings. The full
    // strict chain no longer holds: the arena index's per-publication
    // footprint is small enough that EPC swap counts — which shift a
    // little with chunk boundaries on this deliberately thrashing slice —
    // are the same order as one transition, so adjacent batch sizes can
    // tie. The endpoint ordering stays deterministic.
    assert!(
        virt_per_batch[0] > virt_per_batch[2],
        "batch 1 ({}) should cost more than batch 32 ({})",
        virt_per_batch[0],
        virt_per_batch[2]
    );
}
