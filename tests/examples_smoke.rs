//! Smoke test: every example in `examples/` must run to completion.
//!
//! `cargo test` builds the package examples before running integration
//! tests, so the binaries are available next to this test executable's
//! profile directory (`target/<profile>/examples/`). Each example is
//! self-contained and seed-deterministic, finishing in seconds even in
//! debug builds, so running them for real (rather than merely
//! build-checking) is affordable — and it catches panics, not just rot.

use std::path::PathBuf;
use std::process::Command;

/// Every example shipped in `examples/`, kept in sync by
/// `all_examples_are_covered` below.
const EXAMPLES: &[&str] = &[
    "quickstart",
    "revocation",
    "stock_exchange",
    "tcp_deployment",
    "cloud_router",
    "overlay_fabric",
    "workload_explorer",
    "scbr_top",
];

/// `target/<profile>/examples`, derived from this test binary's location
/// (`target/<profile>/deps/<test>-<hash>`), so it is correct for both
/// debug and release test runs.
fn examples_dir() -> PathBuf {
    let exe = std::env::current_exe().expect("test executable path");
    let profile_dir = exe
        .parent() // deps/
        .and_then(|p| p.parent()) // <profile>/
        .expect("profile directory");
    profile_dir.join("examples")
}

#[test]
fn all_examples_run_to_completion() {
    let dir = examples_dir();
    for name in EXAMPLES {
        let binary = dir.join(name);
        assert!(binary.exists(), "example binary {binary:?} missing — was the example renamed?");
        let output = Command::new(&binary)
            .output()
            .unwrap_or_else(|e| panic!("spawning example '{name}' failed: {e}"));
        assert!(
            output.status.success(),
            "example '{name}' exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}

#[test]
fn all_examples_are_covered() {
    let examples_src = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut on_disk: Vec<String> = std::fs::read_dir(examples_src)
        .expect("examples/ directory")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_owned)
        })
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    listed.sort();
    assert_eq!(
        on_disk, listed,
        "examples on disk and EXAMPLES list disagree — update tests/examples_smoke.rs"
    );
}
