//! Property-based equivalence of the three subscription indexes on
//! workload-realistic data: whatever the insert/remove/match interleaving,
//! the poset and counting indexes agree with the naive oracle.

use proptest::prelude::*;
use scbr::attr::AttrSchema;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::{new_index, IndexKind, SubscriptionIndex};
use scbr::publication::PublicationSpec;
use scbr::subscription::SubscriptionSpec;
use sgx_sim::{CacheConfig, CostModel, MemorySim};

/// A miniature attribute universe so generated operations collide often.
const SYMBOLS: [&str; 4] = ["HAL", "IBM", "NVDA", "AMD"];
const NUMERIC: [&str; 3] = ["price", "volume", "change"];

#[derive(Debug, Clone)]
enum Op {
    Insert { symbol: Option<usize>, ranges: Vec<(usize, f64, f64)> },
    Remove { nth: usize },
    Match { symbol: usize, values: Vec<f64> },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (
            proptest::option::of(0usize..SYMBOLS.len()),
            proptest::collection::vec((0usize..NUMERIC.len(), 0.0f64..100.0, 0.0f64..50.0), 0..3)
        )
            .prop_map(|(symbol, ranges)| Op::Insert { symbol, ranges }),
        1 => (0usize..64).prop_map(|nth| Op::Remove { nth }),
        2 => (0usize..SYMBOLS.len(), proptest::collection::vec(0.0f64..160.0, 3))
            .prop_map(|(symbol, values)| Op::Match { symbol, values }),
    ]
}

fn run_scenario(ops: Vec<Op>) -> Result<(), TestCaseError> {
    let schema = AttrSchema::new();
    let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
    let mut indexes: Vec<Box<dyn SubscriptionIndex>> = vec![
        new_index(IndexKind::Naive, &mem),
        new_index(IndexKind::Poset, &mem),
        new_index(IndexKind::Counting, &mem),
    ];
    let mut inserted: Vec<SubscriptionId> = Vec::new();
    let mut next_id = 0u64;

    for op in ops {
        match op {
            Op::Insert { symbol, ranges } => {
                let mut spec = SubscriptionSpec::new();
                if let Some(s) = symbol {
                    spec = spec.eq("symbol", SYMBOLS[s]);
                }
                // Distinct attributes only: duplicate attrs could be
                // contradictory, which `compile` rejects.
                let mut seen = std::collections::HashSet::new();
                for (attr, lo, width) in ranges {
                    if seen.insert(attr) {
                        spec = spec.between(NUMERIC[attr], lo, lo + width);
                    }
                }
                let compiled = match spec.compile(&schema) {
                    Ok(c) => c,
                    Err(_) => continue,
                };
                let id = SubscriptionId(next_id);
                next_id += 1;
                for index in indexes.iter_mut() {
                    index.insert(id, ClientId(id.0), compiled.clone());
                }
                inserted.push(id);
            }
            Op::Remove { nth } => {
                if inserted.is_empty() {
                    continue;
                }
                let id = inserted.remove(nth % inserted.len());
                let removed: Vec<bool> = indexes.iter_mut().map(|i| i.remove(id)).collect();
                prop_assert!(removed.iter().all(|&r| r), "all indexes had {id}");
            }
            Op::Match { symbol, values } => {
                let publication = PublicationSpec::new()
                    .attr("symbol", SYMBOLS[symbol])
                    .attr("price", values[0])
                    .attr("volume", values[1])
                    .attr("change", values[2]);
                let header = publication.compile_header(&schema).expect("compiles");
                let mut results: Vec<Vec<u64>> = Vec::new();
                for index in &indexes {
                    let mut out = Vec::new();
                    index.match_header(&header, &mut out);
                    let mut ids: Vec<u64> = out.into_iter().map(|c| c.0).collect();
                    ids.sort_unstable();
                    ids.dedup();
                    results.push(ids);
                }
                prop_assert_eq!(&results[1], &results[0], "poset vs naive");
                prop_assert_eq!(&results[2], &results[0], "counting vs naive");
                // Lengths agree across all indexes too.
                prop_assert_eq!(indexes[0].len(), indexes[1].len());
                prop_assert_eq!(indexes[0].len(), indexes[2].len());
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn indexes_agree_under_arbitrary_interleavings(
        ops in proptest::collection::vec(op_strategy(), 1..120)
    ) {
        run_scenario(ops)?;
    }
}

/// Deterministic heavyweight case: a workload-scale cross-check.
#[test]
fn indexes_agree_on_workload_data() {
    use scbr_workloads::{MarketConfig, StockMarket, Workload, WorkloadName};
    let market = StockMarket::generate(&MarketConfig::small(), 1);
    let schema = AttrSchema::new();
    let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
    let mut naive = new_index(IndexKind::Naive, &mem);
    let mut poset = new_index(IndexKind::Poset, &mem);
    let mut counting = new_index(IndexKind::Counting, &mem);

    for workload in [WorkloadName::E100A1, WorkloadName::ExtSub2, WorkloadName::E80A1Zz100] {
        let w = Workload::from_name(workload);
        for (i, spec) in w.subscriptions(&market, 2_000, 3).into_iter().enumerate() {
            let id = SubscriptionId(i as u64 + 1_000_000 * workload as u64);
            let compiled = spec.compile(&schema).expect("compiles");
            naive.insert(id, ClientId(id.0), compiled.clone());
            poset.insert(id, ClientId(id.0), compiled.clone());
            counting.insert(id, ClientId(id.0), compiled);
        }
        for publication in w.publications(&market, 40, 4) {
            let header = publication.compile_header(&schema).expect("compiles");
            let collect = |index: &dyn SubscriptionIndex| {
                let mut out = Vec::new();
                index.match_header(&header, &mut out);
                let mut ids: Vec<u64> = out.into_iter().map(|c| c.0).collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            };
            assert_eq!(collect(poset.as_ref()), collect(naive.as_ref()), "{workload:?}");
            assert_eq!(collect(counting.as_ref()), collect(naive.as_ref()), "{workload:?}");
        }
    }
}
