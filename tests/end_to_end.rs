//! End-to-end integration: the full SCBR deployment of Figure 3/4 wired
//! over the in-process transport.
//!
//! Producer, router (engine inside a simulated enclave, keys provisioned
//! via remote attestation) and clients run as real threads exchanging real
//! protocol messages; everything is encrypted exactly as in the paper.

use scbr::engine::RouterEngine;
use scbr::ids::ClientId;
use scbr::index::IndexKind;
use scbr::protocol::keys::{provision_sk_via_attestation, ProducerCrypto};
use scbr::protocol::messages::Message;
use scbr::publication::PublicationSpec;
use scbr::roles::{ClientNode, Producer, ProducerCommand, Router};
use scbr::subscription::SubscriptionSpec;
use scbr_crypto::rng::CryptoRng;
use scbr_net::transport::{InProcNetwork, Transport};
use sgx_sim::attest::{AttestationService, VerifierPolicy};
use sgx_sim::SgxPlatform;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(5);
const DRAIN: Duration = Duration::from_millis(300);

struct Deployment {
    net: InProcNetwork,
    producer: Producer,
    router: Option<Router>,
    producer_crypto: ProducerCrypto,
}

/// Wires a full deployment: enclave launch, attestation, SK provisioning,
/// role threads.
fn deploy(seed: u64) -> Deployment {
    let net = InProcNetwork::new();
    let router_listener = net.bind("router").expect("bind router");
    let producer_listener = net.bind("producer").expect("bind producer");

    // Infrastructure side: platform + enclave-hosted engine.
    let platform = SgxPlatform::for_testing(seed);
    let mut engine = RouterEngine::in_enclave(&platform, IndexKind::Poset).expect("launch");

    // Service-provider side: keys + attestation trust.
    let mut producer_rng = CryptoRng::from_seed(seed + 1);
    let producer_crypto = ProducerCrypto::generate(512, &mut producer_rng).expect("keys");
    let mut service = AttestationService::new();
    service.trust_platform(platform.attestation_public_key().clone());
    let policy =
        VerifierPolicy::require_mr_enclave(engine.enclave().expect("inside").identity().mr_enclave);

    // Remote attestation delivers SK + the producer verification key into
    // the enclave.
    let mut enclave_rng = CryptoRng::from_seed(seed + 2);
    let (sk, pk) = provision_sk_via_attestation(
        &platform,
        engine.enclave().expect("inside"),
        &service,
        &policy,
        &producer_crypto,
        &mut enclave_rng,
        &mut producer_rng,
    )
    .expect("attestation provisioning");
    engine.call(|e| e.provision_keys(sk, pk));

    // Spawn the roles.
    let router = Router::spawn(router_listener, engine);
    let producer_router_conn = net.connect("router").expect("producer->router");
    let producer = Producer::spawn(
        producer_listener,
        producer_router_conn,
        producer_crypto.clone(),
        producer_rng,
    );
    Deployment { net, producer, router: Some(router), producer_crypto }
}

fn new_client(d: &Deployment, id: u64, seed: u64) -> ClientNode {
    let mut client = ClientNode::connect(
        ClientId(id),
        d.net.connect("producer").expect("client->producer"),
        d.net.connect("router").expect("client->router"),
        CryptoRng::from_seed(seed),
    )
    .expect("client connects");
    client.set_producer_key(d.producer_crypto.public_key().clone());
    let admitted = d.producer.handle().send(ProducerCommand::Admit {
        client: ClientId(id),
        public_key: client.public_key().clone(),
    });
    assert!(admitted);
    // The admission key-update push doubles as a synchronisation barrier.
    let mut tries = 0;
    while client.epochs_held() == 0 && tries < 50 {
        client.drain_key_updates(DRAIN).expect("drain");
        tries += 1;
    }
    assert!(client.epochs_held() > 0, "client received the group key");
    client
}

#[test]
fn subscribe_publish_deliver_decrypt() {
    let d = deploy(100);
    let mut alice = new_client(&d, 1, 200);
    let mut bob = new_client(&d, 2, 201);

    alice
        .subscribe(&SubscriptionSpec::new().eq("symbol", "HAL").lt("price", 50.0), WAIT)
        .expect("alice subscribes");
    bob.subscribe(&SubscriptionSpec::new().eq("symbol", "IBM"), WAIT).expect("bob subscribes");

    // A HAL quote under 50: only alice matches.
    d.producer.handle().send(ProducerCommand::Publish(
        PublicationSpec::new()
            .attr("symbol", "HAL")
            .attr("price", 42.0)
            .payload(b"HAL@42".to_vec()),
    ));
    let delivery = alice.poll_delivery(WAIT).expect("delivery ok").expect("delivered");
    assert_eq!(delivery.payload, b"HAL@42");
    assert!(bob.poll_delivery(Duration::from_millis(300)).expect("none").is_none());

    // An IBM quote: only bob.
    d.producer.handle().send(ProducerCommand::Publish(
        PublicationSpec::new()
            .attr("symbol", "IBM")
            .attr("price", 99.0)
            .payload(b"IBM@99".to_vec()),
    ));
    let delivery = bob.poll_delivery(WAIT).expect("delivery ok").expect("delivered");
    assert_eq!(delivery.payload, b"IBM@99");
    assert!(alice.poll_delivery(Duration::from_millis(300)).expect("none").is_none());

    d.producer.shutdown().expect("producer shutdown");
    let engine = d.router.unwrap().join().expect("router drains");
    assert_eq!(engine.engine().index().len(), 2, "both subscriptions registered");
    assert!(
        engine.enclave().unwrap().ecall_count() >= 4,
        "registrations + matches crossed the gate"
    );
}

#[test]
fn unadmitted_client_is_rejected() {
    let d = deploy(110);
    // Connect without admission.
    let mut eve = ClientNode::connect(
        ClientId(66),
        d.net.connect("producer").expect("conn"),
        d.net.connect("router").expect("conn"),
        CryptoRng::from_seed(5),
    )
    .expect("connect");
    eve.set_producer_key(d.producer_crypto.public_key().clone());
    let err = eve.subscribe(&SubscriptionSpec::new().eq("symbol", "HAL"), WAIT);
    assert!(err.is_err(), "unknown client must be rejected");

    d.producer.shutdown().expect("shutdown");
    let engine = d.router.unwrap().join().expect("join");
    assert_eq!(engine.engine().index().len(), 0, "nothing reached the router");
}

#[test]
fn suspended_client_cannot_add_subscriptions() {
    let d = deploy(120);
    let mut carol = new_client(&d, 3, 300);
    carol
        .subscribe(&SubscriptionSpec::new().gt("price", 0.0), WAIT)
        .expect("first subscription accepted");
    d.producer.handle().send(ProducerCommand::Suspend(ClientId(3)));
    // Allow the command to land before the next attempt.
    std::thread::sleep(Duration::from_millis(100));
    let second = carol.subscribe(&SubscriptionSpec::new().gt("volume", 0i64), WAIT);
    assert!(second.is_err(), "suspended client rejected");

    d.producer.shutdown().expect("shutdown");
    d.router.unwrap().join().expect("join");
}

#[test]
fn revoked_client_cannot_read_new_payloads() {
    let d = deploy(130);
    let mut alice = new_client(&d, 1, 400);
    let mut mallory = new_client(&d, 2, 401);
    alice.subscribe(&SubscriptionSpec::new().eq("symbol", "HAL"), WAIT).expect("alice subscribes");
    mallory
        .subscribe(&SubscriptionSpec::new().eq("symbol", "HAL"), WAIT)
        .expect("mallory subscribes");

    // Both read epoch-0 publications.
    d.producer.handle().send(ProducerCommand::Publish(
        PublicationSpec::new().attr("symbol", "HAL").attr("price", 1.0).payload(b"v1".to_vec()),
    ));
    assert_eq!(alice.poll_delivery(WAIT).unwrap().unwrap().payload, b"v1");
    assert_eq!(mallory.poll_delivery(WAIT).unwrap().unwrap().payload, b"v1");

    // Mallory is revoked; the group rekeys; alice gets the new key.
    d.producer.handle().send(ProducerCommand::Revoke(ClientId(2)));
    let mut tries = 0;
    while alice.epochs_held() < 2 && tries < 50 {
        alice.drain_key_updates(DRAIN).expect("drain");
        tries += 1;
    }
    assert!(alice.epochs_held() >= 2, "alice holds the rotated key");

    d.producer.handle().send(ProducerCommand::Publish(
        PublicationSpec::new().attr("symbol", "HAL").attr("price", 2.0).payload(b"v2".to_vec()),
    ));
    // Alice reads the new payload.
    assert_eq!(alice.poll_delivery(WAIT).unwrap().unwrap().payload, b"v2");
    // Mallory still *receives* the ciphertext (her subscription remains
    // registered) but cannot decrypt it.
    let (epoch, ciphertext) = mallory
        .poll_delivery_raw(WAIT)
        .expect("raw delivery ok")
        .expect("ciphertext still delivered");
    assert!(!ciphertext.is_empty());
    // Her decryption attempt fails for lack of the epoch key.
    let err = {
        // poll_delivery_raw consumed the message; simulate decryption via
        // another publication and poll_delivery.
        d.producer.handle().send(ProducerCommand::Publish(
            PublicationSpec::new().attr("symbol", "HAL").attr("price", 3.0).payload(b"v3".to_vec()),
        ));
        mallory.poll_delivery(WAIT)
    };
    assert!(err.is_err(), "missing epoch key: {epoch}");

    d.producer.shutdown().expect("shutdown");
    d.router.unwrap().join().expect("join");
}

#[test]
fn unsubscribe_stops_delivery_end_to_end() {
    let d = deploy(160);
    let mut alice = new_client(&d, 1, 700);
    let sub = alice
        .subscribe(&SubscriptionSpec::new().eq("symbol", "HAL"), WAIT)
        .expect("alice subscribes");

    d.producer.handle().send(ProducerCommand::Publish(
        PublicationSpec::new().attr("symbol", "HAL").attr("price", 1.0).payload(b"pre".to_vec()),
    ));
    assert_eq!(alice.poll_delivery(WAIT).unwrap().unwrap().payload, b"pre");

    // The full removal loop: client signature → producer validation →
    // signed unregistration envelope → router enclave → acks back.
    alice.unsubscribe(sub, WAIT).expect("unsubscribe accepted");
    d.producer.handle().send(ProducerCommand::Publish(
        PublicationSpec::new().attr("symbol", "HAL").attr("price", 2.0).payload(b"post".to_vec()),
    ));
    assert!(
        alice.poll_delivery(Duration::from_millis(300)).unwrap().is_none(),
        "retired interest receives nothing"
    );
    // A second unsubscribe of the same id is refused by the directory (it
    // no longer owns the subscription) — an error reply, not a panic.
    assert!(alice.unsubscribe(sub, WAIT).is_err());

    d.producer.shutdown().expect("shutdown");
    let engine = d.router.unwrap().join().expect("join");
    assert_eq!(engine.engine().index().len(), 0, "the router's index is clean");
}

#[test]
fn forged_or_mismatched_unsubscribe_is_rejected() {
    let d = deploy(170);
    let mut alice = new_client(&d, 1, 800);
    let mut mallory = new_client(&d, 2, 801);
    let sub = alice
        .subscribe(&SubscriptionSpec::new().eq("symbol", "HAL"), WAIT)
        .expect("alice subscribes");

    // Mallory signs validly — but for a subscription she does not own.
    assert!(mallory.unsubscribe(sub, WAIT).is_err(), "ownership is enforced");

    // A raw request under alice's identity with a forged signature.
    let conn = d.net.connect("producer").expect("rogue connection");
    let forged = Message::Unsubscribe { client: ClientId(1), id: sub, signature: vec![0xab; 64] };
    conn.send(&forged.to_wire()).expect("send");
    let frame = conn.recv_timeout(WAIT).expect("reply").expect("reply frame");
    assert!(
        matches!(Message::from_wire(&frame).unwrap(), Message::Error { .. }),
        "forged signature bounces"
    );

    // Alice's interest survived both attempts.
    d.producer.handle().send(ProducerCommand::Publish(
        PublicationSpec::new().attr("symbol", "HAL").attr("price", 3.0).payload(b"live".to_vec()),
    ));
    assert_eq!(alice.poll_delivery(WAIT).unwrap().unwrap().payload, b"live");

    d.producer.shutdown().expect("shutdown");
    let engine = d.router.unwrap().join().expect("join");
    assert_eq!(engine.engine().index().len(), 1, "subscription still registered");
}

#[test]
fn router_errors_bounce_to_the_requester_for_both_request_kinds() {
    // A router whose enclave was never provisioned refuses every envelope.
    // Each refusal must come back to the requester that caused it —
    // register → SubscriptionRejected, unregister → Error — promptly, not
    // as a silent drop that leaves the client waiting out its timeout.
    let net = InProcNetwork::new();
    let router_listener = net.bind("router").expect("bind router");
    let producer_listener = net.bind("producer").expect("bind producer");
    let platform = SgxPlatform::for_testing(180);
    let engine = RouterEngine::in_enclave(&platform, IndexKind::Poset).expect("launch");
    let _router = Router::spawn(router_listener, engine); // keys never provisioned
    let mut producer_rng = CryptoRng::from_seed(181);
    let crypto = ProducerCrypto::generate(512, &mut producer_rng).expect("keys");
    let producer = Producer::spawn(
        producer_listener,
        net.connect("router").expect("producer->router"),
        crypto.clone(),
        producer_rng,
    );
    let mut alice = ClientNode::connect(
        ClientId(1),
        net.connect("producer").expect("conn"),
        net.connect("router").expect("conn"),
        CryptoRng::from_seed(182),
    )
    .expect("connect");
    alice.set_producer_key(crypto.public_key().clone());
    producer.handle().send(ProducerCommand::Admit {
        client: ClientId(1),
        public_key: alice.public_key().clone(),
    });
    let mut tries = 0;
    while alice.epochs_held() == 0 && tries < 50 {
        alice.drain_key_updates(DRAIN).expect("drain");
        tries += 1;
    }

    // Register path: the producer issues the id, the router refuses the
    // envelope, the refusal maps back to alice as a rejection.
    let started = std::time::Instant::now();
    assert!(alice.subscribe(&SubscriptionSpec::new().eq("symbol", "HAL"), WAIT).is_err());
    assert!(started.elapsed() < Duration::from_secs(2), "prompt rejection, not a timeout");

    // Unregister path: the directory still records the issued id, so the
    // request reaches the router, which refuses it too. The error must
    // pop *this* request's ack slot, not a registration queue.
    let started = std::time::Instant::now();
    assert!(alice.unsubscribe(scbr::ids::SubscriptionId(0), WAIT).is_err());
    assert!(started.elapsed() < Duration::from_secs(2), "prompt rejection, not a timeout");

    producer.shutdown().expect("shutdown");
}

#[test]
fn multiple_subscriptions_deduplicate_deliveries() {
    let d = deploy(140);
    let mut alice = new_client(&d, 1, 500);
    alice.subscribe(&SubscriptionSpec::new().eq("symbol", "HAL"), WAIT).expect("sub 1");
    alice.subscribe(&SubscriptionSpec::new().gt("price", 10.0), WAIT).expect("sub 2");
    // A publication matching both subscriptions is delivered once (the
    // engine deduplicates the client list).
    d.producer.handle().send(ProducerCommand::Publish(
        PublicationSpec::new().attr("symbol", "HAL").attr("price", 50.0).payload(b"once".to_vec()),
    ));
    assert_eq!(alice.poll_delivery(WAIT).unwrap().unwrap().payload, b"once");
    assert!(
        alice.poll_delivery(Duration::from_millis(300)).unwrap().is_none(),
        "no duplicate delivery"
    );

    d.producer.shutdown().expect("shutdown");
    d.router.unwrap().join().expect("join");
}

#[test]
fn publish_batch_flows_end_to_end() {
    // The batch-first pipeline over the wire: one PublishBatch frame from
    // the producer carries several quotes; the router matches the whole
    // frame through a single enclave crossing and fans out deliveries.
    let d = deploy(150);
    let mut alice = new_client(&d, 1, 600);
    let mut bob = new_client(&d, 2, 601);
    alice.subscribe(&SubscriptionSpec::new().eq("symbol", "HAL"), WAIT).expect("alice subscribes");
    bob.subscribe(&SubscriptionSpec::new().eq("symbol", "IBM"), WAIT).expect("bob subscribes");

    d.producer.handle().send(ProducerCommand::PublishBatch(vec![
        PublicationSpec::new().attr("symbol", "HAL").attr("price", 1.0).payload(b"h1".to_vec()),
        PublicationSpec::new().attr("symbol", "IBM").attr("price", 2.0).payload(b"i1".to_vec()),
        PublicationSpec::new().attr("symbol", "AMD").attr("price", 3.0).payload(b"a1".to_vec()),
        PublicationSpec::new().attr("symbol", "HAL").attr("price", 4.0).payload(b"h2".to_vec()),
    ]));

    assert_eq!(alice.poll_delivery(WAIT).unwrap().unwrap().payload, b"h1");
    assert_eq!(alice.poll_delivery(WAIT).unwrap().unwrap().payload, b"h2");
    assert_eq!(bob.poll_delivery(WAIT).unwrap().unwrap().payload, b"i1");
    assert!(alice.poll_delivery(Duration::from_millis(300)).unwrap().is_none());
    assert!(bob.poll_delivery(Duration::from_millis(300)).unwrap().is_none());

    d.producer.shutdown().expect("shutdown");
    let engine = d.router.unwrap().join().expect("join");
    // The whole batch crossed the call gate once: matching added exactly
    // one ECALL on top of the two registrations and key provisioning.
    let match_ecalls = engine.stats().ecalls
        - 3  // deploy(): two attestation calls + one provisioning call
        - 2; // one per registration
    assert_eq!(match_ecalls, 1, "four publications, one crossing");
}
