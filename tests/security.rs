//! Failure injection across the trust boundaries the paper's design
//! defends: the infrastructure provider (router host) is the adversary.

use scbr::engine::MatchingEngine;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::IndexKind;
use scbr::protocol::keys::{
    encrypt_subscription_for_producer, provision_sk_via_attestation, ProducerCrypto,
};
use scbr::subscription::SubscriptionSpec;
use scbr_crypto::rng::CryptoRng;
use sgx_sim::attest::{AttestationService, VerifierPolicy};
use sgx_sim::enclave::EnclaveBuilder;
use sgx_sim::mee::ProtectedStore;
use sgx_sim::seal::{SealPolicy, VersionedSeal};
use sgx_sim::{MemorySim, SgxPlatform};

fn producer(seed: u64) -> (ProducerCrypto, CryptoRng) {
    let mut rng = CryptoRng::from_seed(seed);
    let crypto = ProducerCrypto::generate(512, &mut rng).expect("keys");
    (crypto, rng)
}

#[test]
fn infrastructure_cannot_forge_registrations() {
    // A malicious host without the producer's signing key cannot inject
    // subscriptions into the engine.
    let (honest, mut rng) = producer(1);
    let (rogue, _) = producer(2);
    let mem = MemorySim::native_default();
    let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
    engine.provision_keys(honest.sk().clone(), honest.public_key().clone());

    let spec = SubscriptionSpec::new().eq("symbol", "SPY");
    let forged = rogue
        .seal_registration(&spec, SubscriptionId(1), ClientId(1), &mut rng)
        .expect("rogue can build envelopes");
    assert!(engine.register_envelope(&forged).is_err());
    assert_eq!(engine.index().len(), 0);
}

#[test]
fn infrastructure_cannot_replay_modified_envelopes() {
    let (honest, mut rng) = producer(3);
    let mem = MemorySim::native_default();
    let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
    engine.provision_keys(honest.sk().clone(), honest.public_key().clone());
    let spec = SubscriptionSpec::new().eq("symbol", "SPY");
    let envelope =
        honest.seal_registration(&spec, SubscriptionId(1), ClientId(1), &mut rng).expect("seal");
    // Unmodified: accepted. Any bit flip anywhere: rejected.
    assert!(engine.register_envelope(&envelope).is_ok());
    for i in (0..envelope.len()).step_by(envelope.len() / 16) {
        let mut bad = envelope.clone();
        bad[i] ^= 1;
        assert!(engine.register_envelope(&bad).is_err(), "flip at {i} accepted");
    }
}

#[test]
fn producer_rejects_garbage_submissions() {
    let (honest, mut rng) = producer(4);
    // Submission encrypted for a different producer.
    let (other, _) = producer(5);
    let spec = SubscriptionSpec::new().lt("price", 1.0);
    let wrong_key =
        encrypt_subscription_for_producer(other.public_key(), &spec, &mut rng).expect("encrypt");
    assert!(honest.open_client_subscription(&wrong_key).is_err());
    // Truncated ciphertext.
    let ok = encrypt_subscription_for_producer(honest.public_key(), &spec, &mut rng).unwrap();
    assert!(honest.open_client_subscription(&ok[..ok.len() - 3]).is_err());
}

#[test]
fn sk_never_reaches_an_unexpected_enclave() {
    let platform = SgxPlatform::for_testing(6);
    // The attacker controls what code actually runs; the measurement
    // policy pins the honest engine's identity.
    let honest_measurement =
        EnclaveBuilder::new("scbr-router").add_page(b"honest engine v1").measurement();
    let evil = platform
        .launch(EnclaveBuilder::new("scbr-router").add_page(b"evil engine"))
        .expect("launch");
    let mut service = AttestationService::new();
    service.trust_platform(platform.attestation_public_key().clone());
    let policy = VerifierPolicy::require_mr_enclave(honest_measurement);
    let (crypto, mut producer_rng) = producer(7);
    let mut enclave_rng = CryptoRng::from_seed(8);
    let result = provision_sk_via_attestation(
        &platform,
        &evil,
        &service,
        &policy,
        &crypto,
        &mut enclave_rng,
        &mut producer_rng,
    );
    assert!(result.is_err(), "evil enclave must not receive SK");
}

#[test]
fn untrusted_platform_cannot_attest() {
    // A platform whose attestation key the service does not trust (e.g. a
    // software emulation of SGX) cannot obtain secrets.
    let rogue_platform = SgxPlatform::for_testing(9);
    let enclave = rogue_platform
        .launch(EnclaveBuilder::new("scbr-router").add_page(b"honest engine v1"))
        .expect("launch");
    let service = AttestationService::new(); // trusts nobody
    let policy = VerifierPolicy::require_mr_enclave(enclave.identity().mr_enclave);
    let (crypto, mut producer_rng) = producer(10);
    let mut enclave_rng = CryptoRng::from_seed(11);
    let result = provision_sk_via_attestation(
        &rogue_platform,
        &enclave,
        &service,
        &policy,
        &crypto,
        &mut enclave_rng,
        &mut producer_rng,
    );
    assert!(result.is_err());
}

#[test]
fn sealed_router_state_resists_rollback() {
    // The enclave persists its subscription database via sealing with a
    // monotonic counter; the host serving a stale (but validly sealed)
    // snapshot is detected — the paper's §2 replay discussion.
    let platform = SgxPlatform::for_testing(12);
    let enclave =
        platform.launch(EnclaveBuilder::new("router").add_page(b"engine")).expect("launch");
    let counter = platform.create_counter();
    let mut rng = CryptoRng::from_seed(13);

    let old_state = enclave
        .ecall(|ctx| {
            VersionedSeal::seal(
                ctx,
                SealPolicy::MrEnclave,
                &platform,
                counter,
                b"10 subs",
                &mut rng,
            )
        })
        .expect("seal v1");
    let new_state = enclave
        .ecall(|ctx| {
            VersionedSeal::seal(
                ctx,
                SealPolicy::MrEnclave,
                &platform,
                counter,
                b"12 subs",
                &mut rng,
            )
        })
        .expect("seal v2");

    // Host restarts the enclave and serves the stale file.
    let restarted = platform
        .launch(EnclaveBuilder::new("router").add_page(b"engine"))
        .expect("same code, same measurement");
    let stale = restarted.ecall(|ctx| {
        VersionedSeal::unseal(ctx, SealPolicy::MrEnclave, &platform, counter, &old_state)
    });
    assert!(stale.is_err(), "stale sealed state rejected");
    let fresh = restarted
        .ecall(|ctx| {
            VersionedSeal::unseal(ctx, SealPolicy::MrEnclave, &platform, counter, &new_state)
        })
        .expect("fresh state accepted");
    assert_eq!(fresh, b"12 subs");
}

#[test]
fn evicted_page_store_detects_host_attacks() {
    // The MEE model: evicted enclave pages are confidential and
    // tamper/replay evident.
    let mut rng = CryptoRng::from_seed(14);
    let key = scbr_crypto::ctr::SymmetricKey::generate(&mut rng);
    let mut store = ProtectedStore::new(1 << 12, &key, rng);
    store.write(7, b"subscription index page").expect("write");

    // Confidentiality: ciphertext does not contain the plaintext.
    let raw = store.raw_page(7).expect("stored").clone();
    assert!(!raw.windows(b"subscription".len()).any(|w| w == b"subscription"));

    // Tampering detected.
    let mut bent = raw.clone();
    bent[12] ^= 0x40;
    store.set_raw_page(7, bent);
    assert!(store.read(7).is_err());

    // Restoring the original bytes works again (it was authentic).
    store.set_raw_page(7, raw.clone());
    assert_eq!(store.read(7).expect("authentic"), b"subscription index page");

    // Replay of an old version after an update is detected.
    store.write(7, b"updated page").expect("update");
    store.set_raw_page(7, raw);
    assert!(store.read(7).is_err());
}

#[test]
fn headers_and_subscriptions_are_opaque_on_the_wire() {
    // What the infrastructure sees: AES-CTR ciphertexts. Sanity-check that
    // neither the symbol nor the price survives in the clear.
    let (crypto, mut rng) = producer(15);
    let publication =
        scbr::publication::PublicationSpec::new().attr("symbol", "NVDA").attr("price", 1234.5);
    let header_ct = crypto.encrypt_header(&publication, &mut rng);
    assert!(!header_ct.windows(4).any(|w| w == b"NVDA"));

    let spec = SubscriptionSpec::new().eq("symbol", "NVDA");
    let sub_ct =
        crypto.seal_registration(&spec, SubscriptionId(1), ClientId(1), &mut rng).expect("seal");
    assert!(!sub_ct.windows(4).any(|w| w == b"NVDA"));
}
