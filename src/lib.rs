//! Workspace umbrella crate for the SCBR reproduction.
//!
//! This crate exists to host the cross-crate integration tests (under
//! `tests/`) and the runnable examples (under `examples/`). The actual
//! functionality lives in the member crates, re-exported here for
//! convenience:
//!
//! * [`scbr`] — the secure content-based routing engine (the paper's
//!   contribution).
//! * [`sgx_sim`] — the SGX enclave simulator substrate.
//! * [`scbr_crypto`] — the cryptographic substrate.
//! * [`scbr_aspe`] — the ASPE software-only baseline.
//! * [`scbr_workloads`] — the Table 1 workload generators.
//! * [`scbr_net`] — the messaging substrate.
#![forbid(unsafe_code)]

pub use scbr;
pub use scbr_aspe;
pub use scbr_crypto;
pub use scbr_net;
pub use scbr_workloads;
pub use sgx_sim;
