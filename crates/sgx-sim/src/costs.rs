//! Calibrated cost model for the simulated memory hierarchy.
//!
//! The SCBR paper's measurements were taken on an Intel Skylake i7-6700
//! (3.4 GHz, 8 MB LLC) with 128 MB of EPC. Real SGX hardware being
//! unavailable (and since deprecated on client CPUs), this reproduction
//! replays the same *memory-hierarchy physics* on a virtual clock:
//!
//! * every data-structure access goes through a set-associative LLC model;
//! * an LLC miss costs a DRAM access, plus — inside an enclave — the memory
//!   encryption engine (MEE) surcharge for decrypting the cache line and
//!   walking the integrity tree;
//! * enclave working sets beyond the usable EPC trigger page swaps serviced
//!   by the (simulated) SGX driver, orders of magnitude costlier than the
//!   native minor faults the same workload suffers outside.
//!
//! Constants below are drawn from the paper's observed ratios (Figures 5–8)
//! and contemporaneous SGX microbenchmark literature (MEE overhead and
//! EWB/ELD costs). They are deliberately exposed so experiments can sweep
//! them.

/// Cost model in nanoseconds of virtual time.
///
/// The defaults reproduce the paper's qualitative behaviour: enclave and
/// native execution track each other while the working set fits the LLC,
/// drift apart by tens of percent once it spills (MEE surcharge on every
/// miss), and diverge by an order of magnitude or more once EPC paging
/// begins.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Cost of an access served by the (modelled) L1/L2 plus pipeline —
    /// charged on every touched cache line regardless of LLC outcome.
    pub base_access_ns: f64,
    /// Additional cost when the line hits in the LLC.
    pub llc_hit_ns: f64,
    /// Additional cost of a DRAM fetch on an LLC miss (native and enclave).
    pub dram_ns: f64,
    /// MEE surcharge per LLC miss inside an enclave: cache-line decryption
    /// plus integrity-tree verification.
    pub mee_ns: f64,
    /// Extra MEE cost per integrity-tree level actually walked.
    pub mee_tree_level_ns: f64,
    /// Native (outside-enclave) minor page fault on first touch. Native
    /// pages default to 2 MiB (transparent huge pages), which is what makes
    /// the paper's in/out *fault-count* ratio explode to ~10⁴ in Figure 8:
    /// the native process faults once per 2 MiB of growth while the enclave
    /// faults per 4 KiB page swap.
    pub native_minor_fault_ns: f64,
    /// Enclave first-touch EPC page admission (EADD-after-init / EAUG-like).
    pub epc_admit_ns: f64,
    /// Full enclave page swap: EWB of the victim plus ELD of the target,
    /// including the driver round-trip and integrity-tree updates.
    pub epc_swap_ns: f64,
    /// Per-message bookkeeping on the router: Base64 decode,
    /// deserialisation, allocation. Charged once per registration and per
    /// matched publication.
    pub message_parse_ns: f64,
    /// Crossing into the enclave (EENTER).
    pub eenter_ns: f64,
    /// Crossing out of the enclave (EEXIT).
    pub eexit_ns: f64,
    /// Fixed overhead of an OCALL (beyond the two crossings).
    pub ocall_ns: f64,
    /// CPU cost of evaluating one predicate comparison.
    pub predicate_eval_ns: f64,
    /// CPU cost of one AES block operation (16 bytes) in software.
    pub aes_block_ns: f64,
    /// Fixed per-message cost of a decrypt/encrypt call (key schedule,
    /// buffer management, serialisation glue). With `aes_block_ns` this
    /// reproduces the paper's "below 5 µs" constant encryption overhead.
    pub crypto_setup_ns: f64,
    /// CPU cost of one floating-point multiply-add (ASPE's quadratic-form
    /// evaluations are flop-bound).
    pub flop_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            base_access_ns: 1.2,
            llc_hit_ns: 11.0,
            dram_ns: 60.0,
            mee_ns: 400.0,
            mee_tree_level_ns: 12.0,
            native_minor_fault_ns: 1_500.0,
            epc_admit_ns: 6_000.0,
            epc_swap_ns: 12_000.0,
            message_parse_ns: 4_000.0,
            eenter_ns: 1_900.0,
            eexit_ns: 1_900.0,
            ocall_ns: 3_800.0,
            predicate_eval_ns: 2.0,
            aes_block_ns: 150.0,
            crypto_setup_ns: 2_000.0,
            flop_ns: 1.0,
        }
    }
}

impl CostModel {
    /// A cost model where everything is free — useful for functional tests
    /// that assert on counters rather than time.
    pub fn free() -> Self {
        CostModel {
            base_access_ns: 0.0,
            llc_hit_ns: 0.0,
            dram_ns: 0.0,
            mee_ns: 0.0,
            mee_tree_level_ns: 0.0,
            native_minor_fault_ns: 0.0,
            epc_admit_ns: 0.0,
            epc_swap_ns: 0.0,
            message_parse_ns: 0.0,
            eenter_ns: 0.0,
            eexit_ns: 0.0,
            ocall_ns: 0.0,
            predicate_eval_ns: 0.0,
            aes_block_ns: 0.0,
            crypto_setup_ns: 0.0,
            flop_ns: 0.0,
        }
    }
}

/// Geometry of the simulated last-level cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Cache-line size in bytes (power of two).
    pub line_size: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        // The paper's i7-6700: 8 MB shared LLC, 16-way, 64-byte lines.
        CacheConfig { capacity: 8 * 1024 * 1024, ways: 16, line_size: 64 }
    }
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// `ways * line_size` sets, or non-power-of-two line size).
    pub fn sets(&self) -> usize {
        assert!(self.line_size.is_power_of_two(), "line size must be a power of two");
        assert!(self.ways > 0 && self.capacity > 0, "cache must be non-empty");
        let lines = self.capacity / self.line_size;
        assert_eq!(lines * self.line_size, self.capacity, "capacity must be whole lines");
        let sets = lines / self.ways;
        assert!(sets > 0, "at least one set required");
        assert_eq!(sets * self.ways, lines, "lines must divide into ways evenly");
        sets
    }
}

/// Geometry of the enclave page cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpcConfig {
    /// Total EPC reserved at boot (the paper's machine: 128 MB).
    pub total_bytes: usize,
    /// Bytes usable by enclave applications; the remainder holds SGX
    /// metadata. The paper observes paging "just over 90 MB".
    pub usable_bytes: usize,
    /// Page size (4 KiB on SGX1).
    pub page_size: usize,
}

impl Default for EpcConfig {
    fn default() -> Self {
        EpcConfig {
            total_bytes: 128 * 1024 * 1024,
            usable_bytes: 93 * 1024 * 1024,
            page_size: 4096,
        }
    }
}

impl EpcConfig {
    /// Number of resident pages the EPC can hold for applications.
    pub fn capacity_pages(&self) -> usize {
        self.usable_bytes / self.page_size
    }

    /// Depth of the integrity tree protecting the EPC (8-ary counter tree
    /// over pages, following the MEE design).
    pub fn integrity_tree_depth(&self) -> usize {
        let pages = (self.total_bytes / self.page_size).max(1);
        // ceil(log8(pages))
        let mut depth = 0usize;
        let mut cover = 1usize;
        while cover < pages {
            cover *= 8;
            depth += 1;
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cache_geometry() {
        let c = CacheConfig::default();
        assert_eq!(c.sets(), 8 * 1024 * 1024 / 64 / 16);
    }

    #[test]
    fn small_cache_geometry() {
        let c = CacheConfig { capacity: 4096, ways: 4, line_size: 64 };
        assert_eq!(c.sets(), 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        CacheConfig { capacity: 4096, ways: 4, line_size: 48 }.sets();
    }

    #[test]
    fn epc_capacity() {
        let e = EpcConfig::default();
        assert_eq!(e.capacity_pages(), 93 * 1024 * 1024 / 4096);
        assert!(e.integrity_tree_depth() >= 5); // 32768 pages -> log8 = 5
    }

    #[test]
    fn integrity_tree_depth_monotonic() {
        let small = EpcConfig { total_bytes: 1 << 20, usable_bytes: 1 << 19, page_size: 4096 };
        let big = EpcConfig::default();
        assert!(small.integrity_tree_depth() <= big.integrity_tree_depth());
    }

    #[test]
    fn free_model_is_all_zero() {
        let f = CostModel::free();
        assert_eq!(f.dram_ns, 0.0);
        assert_eq!(f.epc_swap_ns, 0.0);
    }
}
