//! Instrumented memory: virtual clock, cost accounting and arenas.
//!
//! Data structures under study (the SCBR subscription index, the ASPE
//! matrices, …) allocate their nodes from a [`SimArena`], which gives every
//! element a *logical address*. Each tracked access routes through a
//! [`MemorySim`], which:
//!
//! 1. probes the simulated LLC line by line ([`crate::cache::CacheSim`]);
//! 2. on a miss, charges DRAM — plus the MEE surcharge when the memory is
//!    enclave-protected;
//! 3. tracks page residency: native pages take a one-off minor fault on
//!    first touch, enclave pages go through the EPC
//!    ([`crate::epc::Epc`]) and pay for swaps once the working set exceeds
//!    the usable EPC.
//!
//! All costs land on a virtual clock, so measurements are deterministic and
//! independent of the host machine.

use crate::cache::{Access, CacheSim};
use crate::costs::{CacheConfig, CostModel, EpcConfig};
use crate::epc::Epc;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

/// Snapshot of the counters a [`MemorySim`] maintains.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemStats {
    /// Tracked read accesses (line granularity).
    pub reads: u64,
    /// Tracked write accesses (line granularity).
    pub writes: u64,
    /// LLC hits.
    pub cache_hits: u64,
    /// LLC misses.
    pub cache_misses: u64,
    /// Native first-touch minor faults.
    pub minor_faults: u64,
    /// EPC first-touch admissions.
    pub epc_admissions: u64,
    /// EPC swap-ins of evicted pages (expensive).
    pub epc_swaps: u64,
    /// Enclave entries (`EENTER`/`EEXIT` pairs) charged to this memory.
    /// Batched call gates are what make this counter interesting: N
    /// publications matched through one ECALL increment it once.
    pub ecalls: u64,
    /// OCALL round-trips charged to this memory.
    pub ocalls: u64,
    /// Virtual nanoseconds elapsed.
    pub elapsed_ns: f64,
    /// Bytes allocated from the logical address space.
    pub allocated_bytes: u64,
}

impl MemStats {
    /// LLC miss rate in `[0, 1]` (0 when no accesses).
    pub fn cache_miss_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_misses as f64 / total as f64
        }
    }

    /// Total page faults: native minor faults, or EPC admissions + swaps.
    pub fn page_faults(&self) -> u64 {
        self.minor_faults + self.epc_admissions + self.epc_swaps
    }

    /// Uniform counter export for the telemetry registry: stable
    /// `(name, value)` pairs covering every integer counter
    /// (`elapsed_ns` is a float and reported separately by its owners).
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("reads", self.reads),
            ("writes", self.writes),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("minor_faults", self.minor_faults),
            ("epc_admissions", self.epc_admissions),
            ("epc_swaps", self.epc_swaps),
            ("ecalls", self.ecalls),
            ("ocalls", self.ocalls),
            ("allocated_bytes", self.allocated_bytes),
        ]
    }
}

/// Whether a [`MemorySim`] models native or enclave-protected memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// Ordinary process memory: no MEE, no EPC; pages fault once on first
    /// touch.
    Native,
    /// Enclave memory: MEE surcharge on every LLC miss, EPC paging beyond
    /// the usable size.
    Enclave,
}

struct MemState {
    cache: CacheSim,
    epc: Option<Epc>,
    touched_pages: HashSet<u64>,
    stats: MemStats,
    next_addr: u64,
    page_size: u64,
    tree_depth: usize,
}

/// Virtual memory with cost accounting.
///
/// Cloning the `Arc` handle shares the same clock, cache and EPC — use one
/// per simulated protection domain.
///
/// ```
/// use sgx_sim::mem::{MemorySim, Protection};
///
/// let mem = MemorySim::native_default();
/// let addr = mem.alloc(1024);
/// mem.touch_read(addr, 64);
/// assert!(mem.stats().elapsed_ns > 0.0);
/// ```
#[derive(Clone)]
pub struct MemorySim {
    state: Arc<Mutex<MemState>>,
    costs: Arc<CostModel>,
    protection: Protection,
    line_size: u64,
}

impl std::fmt::Debug for MemorySim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySim")
            .field("protection", &self.protection)
            .field("stats", &self.stats())
            .finish()
    }
}

impl MemorySim {
    /// Creates a native-memory simulator.
    ///
    /// Native pages are 2 MiB (transparent huge pages, the default on the
    /// paper's Linux machine), so first-touch minor faults are rare
    /// compared to the enclave's 4 KiB EPC paging.
    pub fn native(cache: CacheConfig, costs: CostModel) -> Self {
        let line_size = cache.line_size as u64;
        MemorySim {
            state: Arc::new(Mutex::new(MemState {
                cache: CacheSim::new(cache),
                epc: None,
                touched_pages: HashSet::new(),
                stats: MemStats::default(),
                next_addr: 0x1000,
                page_size: 2 * 1024 * 1024,
                tree_depth: 0,
            })),
            costs: Arc::new(costs),
            protection: Protection::Native,
            line_size,
        }
    }

    /// Charges the per-message parse/bookkeeping cost.
    pub fn charge_message_parse(&self) {
        self.charge_ns(self.costs.message_parse_ns);
    }

    /// Creates an enclave-memory simulator with the given EPC.
    pub fn enclave(cache: CacheConfig, epc: EpcConfig, costs: CostModel) -> Self {
        let line_size = cache.line_size as u64;
        MemorySim {
            state: Arc::new(Mutex::new(MemState {
                cache: CacheSim::new(cache),
                epc: Some(Epc::new(epc.capacity_pages())),
                touched_pages: HashSet::new(),
                stats: MemStats::default(),
                next_addr: 0x1000,
                page_size: epc.page_size as u64,
                tree_depth: epc.integrity_tree_depth(),
            })),
            costs: Arc::new(costs),
            protection: Protection::Enclave,
            line_size,
        }
    }

    /// Native memory with the paper machine's default geometry and costs.
    pub fn native_default() -> Self {
        MemorySim::native(CacheConfig::default(), CostModel::default())
    }

    /// Enclave memory with the paper machine's default geometry and costs.
    pub fn enclave_default() -> Self {
        MemorySim::enclave(CacheConfig::default(), EpcConfig::default(), CostModel::default())
    }

    /// Which protection domain this memory models.
    pub fn protection(&self) -> Protection {
        self.protection
    }

    /// Reserves `len` bytes of logical address space (line-aligned bump
    /// allocation; the space is never reused, mirroring the paper's
    /// append-only subscription store).
    pub fn alloc(&self, len: u64) -> u64 {
        let mut st = self.state.lock();
        let addr = st.next_addr;
        let aligned = len.div_ceil(self.line_size) * self.line_size;
        st.next_addr += aligned.max(self.line_size);
        st.stats.allocated_bytes += aligned.max(self.line_size);
        addr
    }

    /// Records a read of `len` bytes at `addr`.
    pub fn touch_read(&self, addr: u64, len: u64) {
        self.touch(addr, len, false);
    }

    /// Records a write of `len` bytes at `addr`.
    pub fn touch_write(&self, addr: u64, len: u64) {
        self.touch(addr, len, true);
    }

    fn touch(&self, addr: u64, len: u64, write: bool) {
        let mut st = self.state.lock();
        let st = &mut *st;
        let costs = &*self.costs;
        let first_line = addr / self.line_size;
        let last_line = (addr + len.max(1) - 1) / self.line_size;
        let first_page = addr / st.page_size;
        let last_page = (addr + len.max(1) - 1) / st.page_size;

        // Page residency first: a fault services the whole page.
        for page in first_page..=last_page {
            match &mut st.epc {
                None => {
                    if st.touched_pages.insert(page) {
                        st.stats.minor_faults += 1;
                        st.stats.elapsed_ns += costs.native_minor_fault_ns;
                    }
                }
                Some(epc) => match epc.touch(page) {
                    crate::epc::PageAccess::Resident => {}
                    crate::epc::PageAccess::Admitted => {
                        st.stats.epc_admissions += 1;
                        st.stats.elapsed_ns += costs.epc_admit_ns;
                    }
                    crate::epc::PageAccess::SwappedIn => {
                        st.stats.epc_swaps += 1;
                        st.stats.elapsed_ns += costs.epc_swap_ns;
                    }
                },
            }
        }

        // Then the cache, line by line.
        for line in first_line..=last_line {
            if write {
                st.stats.writes += 1;
            } else {
                st.stats.reads += 1;
            }
            st.stats.elapsed_ns += costs.base_access_ns;
            match st.cache.access(line * self.line_size) {
                Access::Hit => {
                    st.stats.cache_hits += 1;
                    st.stats.elapsed_ns += costs.llc_hit_ns;
                }
                Access::Miss => {
                    st.stats.cache_misses += 1;
                    st.stats.elapsed_ns += costs.dram_ns;
                    if self.protection == Protection::Enclave {
                        st.stats.elapsed_ns +=
                            costs.mee_ns + costs.mee_tree_level_ns * st.tree_depth as f64;
                    }
                }
            }
        }
    }

    /// Charges pure CPU time (no memory traffic).
    pub fn charge_ns(&self, ns: f64) {
        self.state.lock().stats.elapsed_ns += ns;
    }

    /// Records one enclave transition pair (`EENTER` + `EEXIT`), charging
    /// `ns` of call-gate time. Called by the enclave's call gate — one
    /// ECALL covering a whole batch records a single transition.
    pub fn record_ecall(&self, ns: f64) {
        let mut st = self.state.lock();
        st.stats.ecalls += 1;
        st.stats.elapsed_ns += ns;
    }

    /// Records one OCALL round-trip, charging `ns` of transition time.
    pub fn record_ocall(&self, ns: f64) {
        let mut st = self.state.lock();
        st.stats.ocalls += 1;
        st.stats.elapsed_ns += ns;
    }

    /// Charges the CPU cost of `n` predicate evaluations.
    pub fn charge_predicate_evals(&self, n: u64) {
        self.charge_ns(self.costs.predicate_eval_ns * n as f64);
    }

    /// Charges the CPU cost of AES processing `bytes` bytes.
    pub fn charge_aes_bytes(&self, bytes: u64) {
        self.charge_ns(self.costs.aes_block_ns * bytes.div_ceil(16) as f64);
    }

    /// Charges one encryption/decryption call's fixed overhead plus the AES
    /// streaming cost for `bytes` bytes.
    pub fn charge_crypto_op(&self, bytes: u64) {
        self.charge_ns(self.costs.crypto_setup_ns);
        self.charge_aes_bytes(bytes);
    }

    /// Charges `n` floating-point multiply-adds.
    pub fn charge_flops(&self, n: u64) {
        self.charge_ns(self.costs.flop_ns * n as f64);
    }

    /// The cost model in force.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Virtual nanoseconds elapsed so far.
    pub fn elapsed_ns(&self) -> f64 {
        self.state.lock().stats.elapsed_ns
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> MemStats {
        self.state.lock().stats
    }

    /// Resets cache hit/miss counters and the clock, keeping contents and
    /// residency (used between measurement phases).
    pub fn reset_counters(&self) {
        let mut st = self.state.lock();
        st.cache.reset_stats();
        let allocated = st.stats.allocated_bytes;
        st.stats = MemStats { allocated_bytes: allocated, ..MemStats::default() };
    }
}

/// An arena of `T` values with logical addresses, charging the memory
/// simulator on tracked access.
///
/// `stride` is the *logical* footprint of one element; it defaults to
/// `size_of::<T>()` but can be pinned to model a specific layout (the SCBR
/// index uses the paper's ~432-byte subscription nodes).
#[derive(Debug)]
pub struct SimArena<T> {
    mem: MemorySim,
    stride: u64,
    /// Logical base address of each fixed-size chunk of elements.
    chunk_bases: Vec<u64>,
    items: Vec<T>,
}

/// Elements per logical chunk; chunks need not be mutually contiguous.
const CHUNK_ELEMS: u64 = 1024;

impl<T> SimArena<T> {
    /// Creates an arena whose elements occupy `size_of::<T>()` logical bytes.
    pub fn new(mem: &MemorySim) -> Self {
        Self::with_stride(mem, std::mem::size_of::<T>().max(1) as u64)
    }

    /// Creates an arena with an explicit per-element logical footprint.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn with_stride(mem: &MemorySim, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        SimArena { mem: mem.clone(), stride, chunk_bases: Vec::new(), items: Vec::new() }
    }

    /// Logical footprint of one element.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Number of elements stored.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Logical address of element `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn addr_of(&self, idx: u32) -> u64 {
        let chunk = idx as u64 / CHUNK_ELEMS;
        self.chunk_bases[chunk as usize] + (idx as u64 % CHUNK_ELEMS) * self.stride
    }

    /// Appends a value, charging a write to its logical location. Returns
    /// its index.
    pub fn push(&mut self, value: T) -> u32 {
        let idx = self.items.len() as u32;
        if self.items.len() as u64 >= self.chunk_bases.len() as u64 * CHUNK_ELEMS {
            let base = self.mem.alloc(CHUNK_ELEMS * self.stride);
            self.chunk_bases.push(base);
        }
        self.items.push(value);
        self.mem.touch_write(self.addr_of(idx), self.stride);
        idx
    }

    /// Reads element `idx`, charging a tracked read of one element.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn read(&self, idx: u32) -> &T {
        self.mem.touch_read(self.addr_of(idx), self.stride);
        &self.items[idx as usize]
    }

    /// Reads element `idx` charging only `bytes` of traffic (partial reads,
    /// e.g. when a match aborts at the first failing predicate).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn read_partial(&self, idx: u32, bytes: u64) -> &T {
        self.mem.touch_read(self.addr_of(idx), bytes.min(self.stride).max(1));
        &self.items[idx as usize]
    }

    /// Mutable access charging a tracked write of one element.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn write(&mut self, idx: u32) -> &mut T {
        self.mem.touch_write(self.addr_of(idx), self.stride);
        &mut self.items[idx as usize]
    }

    /// Untracked read (setup/inspection; charges nothing).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn peek(&self, idx: u32) -> &T {
        &self.items[idx as usize]
    }

    /// Untracked mutable access (setup/inspection; charges nothing).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn peek_mut(&mut self, idx: u32) -> &mut T {
        &mut self.items[idx as usize]
    }

    /// Iterates untracked over all elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// The memory simulator backing this arena.
    pub fn mem(&self) -> &MemorySim {
        &self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn free_native() -> MemorySim {
        MemorySim::native(CacheConfig { capacity: 4096, ways: 4, line_size: 64 }, CostModel::free())
    }

    #[test]
    fn alloc_is_line_aligned_and_monotonic() {
        let mem = free_native();
        let a = mem.alloc(1);
        let b = mem.alloc(100);
        let c = mem.alloc(64);
        assert!(a < b && b < c);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert_eq!(b - a, 64);
        assert_eq!(c - b, 128);
    }

    #[test]
    fn touch_counts_lines() {
        let mem = free_native();
        let addr = mem.alloc(640);
        mem.touch_read(addr, 64);
        mem.touch_read(addr + 64, 128);
        mem.touch_write(addr, 1);
        let st = mem.stats();
        assert_eq!(st.reads, 3); // 1 line + 2 lines
        assert_eq!(st.writes, 1);
    }

    #[test]
    fn native_minor_fault_once_per_huge_page() {
        const HUGE: u64 = 2 * 1024 * 1024;
        let mem = free_native();
        let addr = mem.alloc(3 * HUGE);
        mem.touch_read(addr, 1);
        mem.touch_read(addr, 1);
        mem.touch_read(addr + 4096, 1); // same 2 MiB page: no new fault
        assert_eq!(mem.stats().minor_faults, 1);
        mem.touch_read(addr + HUGE, 1); // next huge page
        assert_eq!(mem.stats().minor_faults, 2);
    }

    #[test]
    fn enclave_counts_epc_events() {
        // EPC with room for 2 pages.
        let mem = MemorySim::enclave(
            CacheConfig { capacity: 4096, ways: 4, line_size: 64 },
            EpcConfig { total_bytes: 4 * 4096, usable_bytes: 2 * 4096, page_size: 4096 },
            CostModel::free(),
        );
        let addr = mem.alloc(4 * 4096);
        for p in 0..4u64 {
            mem.touch_read(addr + p * 4096, 1);
        }
        let st = mem.stats();
        assert_eq!(st.epc_admissions, 4);
        assert_eq!(st.epc_swaps, 0);
        // Loop again: everything was evicted in sequence.
        for p in 0..4u64 {
            mem.touch_read(addr + p * 4096, 1);
        }
        assert!(mem.stats().epc_swaps > 0);
    }

    #[test]
    fn enclave_miss_costs_more_than_native_miss() {
        let cache = CacheConfig { capacity: 4096, ways: 4, line_size: 64 };
        let native = MemorySim::native(cache, CostModel::default());
        let enclave = MemorySim::enclave(
            cache,
            EpcConfig { total_bytes: 64 * 4096, usable_bytes: 32 * 4096, page_size: 4096 },
            CostModel::default(),
        );
        // Touch one fresh line on each; subtract the fault admission costs
        // by resetting counters after the page is resident.
        let na = native.alloc(4096);
        let ea = enclave.alloc(4096);
        native.touch_read(na, 1);
        enclave.touch_read(ea, 1);
        native.reset_counters();
        enclave.reset_counters();
        // Different line, same (already resident) page; cold in cache.
        native.touch_read(na + 2048, 1);
        enclave.touch_read(ea + 2048, 1);
        assert!(enclave.elapsed_ns() > native.elapsed_ns());
    }

    #[test]
    fn cache_hit_cheaper_than_miss() {
        let mem = MemorySim::native(CacheConfig::default(), CostModel::default());
        let addr = mem.alloc(64);
        mem.touch_read(addr, 1);
        let after_miss = mem.elapsed_ns();
        mem.touch_read(addr, 1);
        let hit_cost = mem.elapsed_ns() - after_miss;
        assert!(hit_cost < after_miss);
        assert!(hit_cost > 0.0);
    }

    #[test]
    fn reset_counters_keeps_residency() {
        let mem = free_native();
        let addr = mem.alloc(64);
        mem.touch_read(addr, 1);
        mem.reset_counters();
        mem.touch_read(addr, 1);
        let st = mem.stats();
        assert_eq!(st.minor_faults, 0, "page stayed resident");
        assert_eq!(st.cache_hits, 1, "line stayed cached");
    }

    #[test]
    fn arena_read_write_tracking() {
        let mem = free_native();
        let mut arena: SimArena<u64> = SimArena::with_stride(&mem, 64);
        let i0 = arena.push(10);
        let i1 = arena.push(20);
        assert_eq!(*arena.read(i0), 10);
        assert_eq!(*arena.read(i1), 20);
        *arena.write(i1) = 21;
        assert_eq!(*arena.peek(i1), 21);
        let st = mem.stats();
        assert_eq!(st.writes, 3); // two pushes + one write
        assert_eq!(st.reads, 2);
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn arena_addresses_disjoint_per_stride() {
        let mem = free_native();
        let mut arena: SimArena<u8> = SimArena::with_stride(&mem, 432);
        for i in 0..100u8 {
            arena.push(i);
        }
        let a0 = arena.addr_of(0);
        let a1 = arena.addr_of(1);
        assert_eq!(a1 - a0, 432);
    }

    #[test]
    fn interleaved_arenas_never_alias() {
        let mem = free_native();
        let mut a: SimArena<u8> = SimArena::with_stride(&mem, 64);
        let mut b: SimArena<u8> = SimArena::with_stride(&mem, 64);
        let mut addrs = std::collections::HashSet::new();
        for i in 0..3000u32 {
            let ia = a.push(0);
            let ib = b.push(1);
            assert!(addrs.insert(a.addr_of(ia)), "aliased a at {i}");
            assert!(addrs.insert(b.addr_of(ib)), "aliased b at {i}");
        }
    }

    #[test]
    fn arena_peek_charges_nothing() {
        let mem = free_native();
        let mut arena: SimArena<u32> = SimArena::new(&mem);
        arena.push(5);
        let before = mem.stats().reads;
        let _ = arena.peek(0);
        assert_eq!(mem.stats().reads, before);
    }

    #[test]
    fn charge_helpers_advance_clock() {
        let mem = MemorySim::native(CacheConfig::default(), CostModel::default());
        let t0 = mem.elapsed_ns();
        mem.charge_predicate_evals(100);
        let t1 = mem.elapsed_ns();
        mem.charge_aes_bytes(1024);
        let t2 = mem.elapsed_ns();
        assert!(t1 > t0 && t2 > t1);
    }

    #[test]
    fn stats_page_faults_aggregates() {
        let st =
            MemStats { minor_faults: 2, epc_admissions: 3, epc_swaps: 4, ..MemStats::default() };
        assert_eq!(st.page_faults(), 9);
    }
}
