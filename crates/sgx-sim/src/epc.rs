//! Enclave Page Cache (EPC) residency model with CLOCK eviction.
//!
//! Tracks which enclave pages are resident in protected memory. Accesses to
//! non-resident pages raise simulated page faults: the SGX driver evicts a
//! victim (encrypt + integrity-tree update, `EWB`) and loads the requested
//! page (decrypt + verify, `ELD`). The *count* of these events is what
//! Figure 8 of the paper plots; their cost is charged by
//! [`crate::mem::MemorySim`].

use std::collections::HashMap;

/// Outcome of touching a page through the EPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageAccess {
    /// Page was resident.
    Resident,
    /// First-ever touch: the page was admitted without evicting anyone.
    Admitted,
    /// Page had been evicted and was swapped back in, evicting a victim.
    SwappedIn,
}

/// EPC residency tracker.
///
/// ```
/// use sgx_sim::epc::{Epc, PageAccess};
///
/// let mut epc = Epc::new(2); // two-page EPC
/// assert_eq!(epc.touch(0), PageAccess::Admitted);
/// assert_eq!(epc.touch(1), PageAccess::Admitted);
/// assert_eq!(epc.touch(0), PageAccess::Resident);
/// assert_eq!(epc.touch(2), PageAccess::Admitted); // evicts someone
/// ```
#[derive(Debug, Clone)]
pub struct Epc {
    capacity_pages: usize,
    /// page id -> slot index in `slots`.
    resident: HashMap<u64, usize>,
    /// CLOCK ring: (page id, referenced bit).
    slots: Vec<(u64, bool)>,
    clock_hand: usize,
    /// Pages that have been seen at least once (admitted or swapped).
    ever_seen: HashMap<u64, ()>,
    admissions: u64,
    swaps: u64,
    evictions: u64,
}

impl Epc {
    /// Creates an EPC that can hold `capacity_pages` resident pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_pages` is zero.
    pub fn new(capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "EPC must hold at least one page");
        Epc {
            capacity_pages,
            resident: HashMap::new(),
            slots: Vec::with_capacity(capacity_pages.min(1 << 20)),
            clock_hand: 0,
            ever_seen: HashMap::new(),
            admissions: 0,
            swaps: 0,
            evictions: 0,
        }
    }

    /// Touches `page`, updating residency and returning what happened.
    pub fn touch(&mut self, page: u64) -> PageAccess {
        if let Some(&slot) = self.resident.get(&page) {
            self.slots[slot].1 = true;
            return PageAccess::Resident;
        }
        let first_time = self.ever_seen.insert(page, ()).is_none();
        if self.slots.len() < self.capacity_pages {
            // Free slot available.
            let slot = self.slots.len();
            self.slots.push((page, true));
            self.resident.insert(page, slot);
        } else {
            // CLOCK: advance hand, clearing referenced bits, until a victim
            // with a clear bit is found.
            loop {
                let (victim_page, referenced) = self.slots[self.clock_hand];
                if referenced {
                    self.slots[self.clock_hand].1 = false;
                    self.clock_hand = (self.clock_hand + 1) % self.capacity_pages;
                } else {
                    self.resident.remove(&victim_page);
                    self.evictions += 1;
                    self.slots[self.clock_hand] = (page, true);
                    self.resident.insert(page, self.clock_hand);
                    self.clock_hand = (self.clock_hand + 1) % self.capacity_pages;
                    break;
                }
            }
        }
        if first_time {
            self.admissions += 1;
            PageAccess::Admitted
        } else {
            self.swaps += 1;
            PageAccess::SwappedIn
        }
    }

    /// Number of pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// First-touch admissions so far.
    pub fn admissions(&self) -> u64 {
        self.admissions
    }

    /// Swap-ins of previously evicted pages (the expensive events).
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Evictions performed to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total page faults (admissions + swaps), mirroring `minflt`.
    pub fn faults(&self) -> u64 {
        self.admissions + self.swaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_until_capacity_no_swaps() {
        let mut epc = Epc::new(100);
        for p in 0..100u64 {
            assert_eq!(epc.touch(p), PageAccess::Admitted);
        }
        for p in 0..100u64 {
            assert_eq!(epc.touch(p), PageAccess::Resident);
        }
        assert_eq!(epc.swaps(), 0);
        assert_eq!(epc.admissions(), 100);
        assert_eq!(epc.resident_pages(), 100);
    }

    #[test]
    fn overflow_triggers_eviction_and_swaps() {
        let mut epc = Epc::new(4);
        for p in 0..8u64 {
            epc.touch(p);
        }
        assert_eq!(epc.admissions(), 8);
        assert_eq!(epc.evictions(), 4);
        assert_eq!(epc.resident_pages(), 4);
        // Re-touching an evicted page swaps it back in.
        let before = epc.swaps();
        // Pages 0..4 were evicted by 4..8 under CLOCK.
        assert_eq!(epc.touch(0), PageAccess::SwappedIn);
        assert_eq!(epc.swaps(), before + 1);
    }

    #[test]
    fn clock_second_chance_keeps_referenced_page() {
        let mut epc = Epc::new(2);
        epc.touch(0); // slots: [(0,R), _]
        epc.touch(1); // slots: [(0,R), (1,R)], hand at 0
                      // Page 2 sweeps: clears both bits, evicts page 0 (FIFO from hand when
                      // everything is referenced), leaving [(2,R), (1,-)], hand past slot 0.
        assert_eq!(epc.touch(2), PageAccess::Admitted);
        // Page 3 must evict the unreferenced page 1, *not* page 2 whose
        // reference bit grants it a second chance.
        assert_eq!(epc.touch(3), PageAccess::Admitted);
        assert_eq!(epc.touch(2), PageAccess::Resident, "referenced page survived");
        assert_eq!(epc.touch(1), PageAccess::SwappedIn, "unreferenced page was evicted");
    }

    #[test]
    fn faults_counts_both_kinds() {
        let mut epc = Epc::new(1);
        epc.touch(0); // admit
        epc.touch(1); // admit, evict 0
        epc.touch(0); // swap in
        assert_eq!(epc.faults(), 3);
        assert_eq!(epc.admissions(), 2);
        assert_eq!(epc.swaps(), 1);
    }

    #[test]
    fn sequential_thrash_swaps_every_touch() {
        let mut epc = Epc::new(4);
        // Warm: 8 pages cycle in a 4-page EPC.
        for round in 0..3 {
            for p in 0..8u64 {
                let access = epc.touch(p);
                if round > 0 {
                    assert_eq!(access, PageAccess::SwappedIn, "round {round} page {p}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_capacity_panics() {
        Epc::new(0);
    }
}
