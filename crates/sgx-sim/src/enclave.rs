//! Enclave lifecycle: measured construction, identity and call gates.
//!
//! Mirrors the SGX flow the paper describes in §2: an enclave is created
//! (`ECREATE`), pages are added and measured (`EADD`/`EEXTEND`), and the
//! measurement is finalised (`EINIT`) into `MRENCLAVE`. Afterwards the only
//! way in is through call gates (`EENTER`/`EEXIT`), whose transition cost
//! the paper identifies as one of the SGX overheads worth batching away.
//!
//! The simulator models identity and cost faithfully; it does not attempt
//! to model *memory isolation* within a single OS process (code using the
//! simulator is trusted to route enclave state through
//! [`EnclaveContext::memory`]).

use crate::costs::{CacheConfig, CostModel, EpcConfig};
use crate::error::SgxError;
use crate::mem::MemorySim;
use scbr_crypto::sha256::Sha256;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A 256-bit enclave measurement (`MRENCLAVE`) or signer digest
/// (`MRSIGNER`).
pub type Measurement = [u8; 32];

/// The identity of an initialised enclave, as reflected in reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnclaveIdentity {
    /// Hash of the enclave's measured contents.
    pub mr_enclave: Measurement,
    /// Hash of the signer's public key.
    pub mr_signer: Measurement,
    /// Product id assigned by the signer.
    pub isv_prod_id: u16,
    /// Security version number.
    pub isv_svn: u16,
    /// True if built in debug mode (debug enclaves are not trustworthy).
    pub debug: bool,
}

/// Incrementally measures enclave contents, mirroring
/// `ECREATE`/`EADD`/`EEXTEND`.
///
/// ```
/// use sgx_sim::enclave::EnclaveBuilder;
///
/// let builder = EnclaveBuilder::new("scbr-router")
///     .add_page(b"matching engine code")
///     .isv_prod_id(1);
/// // identical content => identical measurement
/// let again = EnclaveBuilder::new("scbr-router")
///     .add_page(b"matching engine code")
///     .isv_prod_id(1);
/// assert_eq!(builder.measurement(), again.measurement());
/// ```
#[derive(Debug, Clone)]
pub struct EnclaveBuilder {
    hasher: Sha256,
    signer: Measurement,
    isv_prod_id: u16,
    isv_svn: u16,
    debug: bool,
    pages: u64,
}

impl EnclaveBuilder {
    /// Starts measuring an enclave named `name` (the name seeds the
    /// `ECREATE` record, standing in for SECS attributes).
    pub fn new(name: &str) -> Self {
        let mut hasher = Sha256::new();
        hasher.update(b"ECREATE");
        hasher.update(&(name.len() as u64).to_be_bytes());
        hasher.update(name.as_bytes());
        EnclaveBuilder {
            hasher,
            signer: [0u8; 32],
            isv_prod_id: 0,
            isv_svn: 1,
            debug: false,
            pages: 0,
        }
    }

    /// Measures one page of content (`EADD` + `EEXTEND`).
    #[must_use]
    pub fn add_page(mut self, content: &[u8]) -> Self {
        self.hasher.update(b"EADD");
        self.hasher.update(&self.pages.to_be_bytes());
        self.hasher.update(b"EEXTEND");
        self.hasher.update(&(content.len() as u64).to_be_bytes());
        self.hasher.update(content);
        self.pages += 1;
        self
    }

    /// Sets the signer identity (digest of the vendor's signing key).
    #[must_use]
    pub fn signer(mut self, signer: Measurement) -> Self {
        self.signer = signer;
        self
    }

    /// Sets the product id.
    #[must_use]
    pub fn isv_prod_id(mut self, id: u16) -> Self {
        self.isv_prod_id = id;
        self
    }

    /// Sets the security version number.
    #[must_use]
    pub fn isv_svn(mut self, svn: u16) -> Self {
        self.isv_svn = svn;
        self
    }

    /// Marks the enclave as a debug build.
    #[must_use]
    pub fn debug(mut self, debug: bool) -> Self {
        self.debug = debug;
        self
    }

    /// The measurement that `EINIT` would lock in right now.
    pub fn measurement(&self) -> Measurement {
        let mut h = self.hasher.clone();
        h.update(b"EINIT");
        h.finalize()
    }

    /// Finalises the identity.
    pub(crate) fn build_identity(&self) -> EnclaveIdentity {
        EnclaveIdentity {
            mr_enclave: self.measurement(),
            mr_signer: self.signer,
            isv_prod_id: self.isv_prod_id,
            isv_svn: self.isv_svn,
            debug: self.debug,
        }
    }
}

/// An initialised enclave: identity plus protected memory and call gates.
///
/// Create via [`crate::platform::SgxPlatform::launch`].
#[derive(Debug, Clone)]
pub struct Enclave {
    inner: Arc<EnclaveInner>,
}

#[derive(Debug)]
pub(crate) struct EnclaveInner {
    pub(crate) identity: EnclaveIdentity,
    pub(crate) mem: MemorySim,
    pub(crate) costs: CostModel,
    pub(crate) ecalls: AtomicU64,
    pub(crate) ocalls: AtomicU64,
    /// Key material tied to the platform, used for report MACs and sealing.
    pub(crate) platform_key: [u8; 32],
}

impl Enclave {
    pub(crate) fn from_parts(
        identity: EnclaveIdentity,
        cache: CacheConfig,
        epc: EpcConfig,
        costs: CostModel,
        platform_key: [u8; 32],
    ) -> Self {
        let mem = MemorySim::enclave(cache, epc, costs.clone());
        Enclave {
            inner: Arc::new(EnclaveInner {
                identity,
                mem,
                costs,
                ecalls: AtomicU64::new(0),
                ocalls: AtomicU64::new(0),
                platform_key,
            }),
        }
    }

    /// The enclave's identity.
    pub fn identity(&self) -> &EnclaveIdentity {
        &self.inner.identity
    }

    /// Enters the enclave, runs `f` with an [`EnclaveContext`], and exits.
    ///
    /// Charges the `EENTER`/`EEXIT` transition costs on the enclave's
    /// virtual clock, like the paper's call gates, and records the
    /// transition in the memory's [`crate::mem::MemStats::ecalls`] counter
    /// so batching experiments can observe amortisation directly. The cost
    /// is per *crossing*, not per unit of work: matching a whole batch of
    /// publications inside one `ecall` pays the pair exactly once.
    pub fn ecall<R>(&self, f: impl FnOnce(&EnclaveContext<'_>) -> R) -> R {
        self.inner.ecalls.fetch_add(1, Ordering::Relaxed);
        self.inner.mem.record_ecall(self.inner.costs.eenter_ns);
        let ctx = EnclaveContext { inner: &self.inner };
        let result = f(&ctx);
        self.inner.mem.charge_ns(self.inner.costs.eexit_ns);
        result
    }

    /// Number of ECALLs performed so far.
    pub fn ecall_count(&self) -> u64 {
        self.inner.ecalls.load(Ordering::Relaxed)
    }

    /// Number of OCALLs performed so far.
    pub fn ocall_count(&self) -> u64 {
        self.inner.ocalls.load(Ordering::Relaxed)
    }

    /// The enclave's protected memory (for arenas living inside it).
    pub fn memory(&self) -> &MemorySim {
        &self.inner.mem
    }
}

/// Capabilities available to code running inside an enclave.
#[derive(Debug)]
pub struct EnclaveContext<'a> {
    inner: &'a EnclaveInner,
}

impl EnclaveContext<'_> {
    /// The enclave's identity (what `EREPORT` reflects).
    pub fn identity(&self) -> &EnclaveIdentity {
        &self.inner.identity
    }

    /// Protected memory for enclave data structures.
    pub fn memory(&self) -> &MemorySim {
        &self.inner.mem
    }

    /// Performs an OCALL: leaves the enclave, runs `f` untrusted, re-enters.
    pub fn ocall<R>(&self, f: impl FnOnce() -> R) -> R {
        self.inner.ocalls.fetch_add(1, Ordering::Relaxed);
        self.inner.mem.record_ocall(
            self.inner.costs.eexit_ns + self.inner.costs.ocall_ns + self.inner.costs.eenter_ns,
        );
        f()
    }

    /// Platform-bound key material (used by sealing and reports).
    pub(crate) fn platform_key(&self) -> &[u8; 32] {
        &self.inner.platform_key
    }
}

/// Checks preconditions shared by launch paths.
///
/// # Errors
///
/// Rejects enclaves that declare no measured pages.
pub(crate) fn validate_builder(builder: &EnclaveBuilder) -> Result<(), SgxError> {
    if builder.pages == 0 {
        return Err(SgxError::InvalidState { expected: "at least one measured page" });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder() -> EnclaveBuilder {
        EnclaveBuilder::new("test").add_page(b"code").signer([9u8; 32])
    }

    #[test]
    fn measurement_is_deterministic() {
        assert_eq!(builder().measurement(), builder().measurement());
    }

    #[test]
    fn measurement_changes_with_content() {
        let a = EnclaveBuilder::new("e").add_page(b"v1").measurement();
        let b = EnclaveBuilder::new("e").add_page(b"v2").measurement();
        let c = EnclaveBuilder::new("f").add_page(b"v1").measurement();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn measurement_depends_on_page_order() {
        let ab = EnclaveBuilder::new("e").add_page(b"a").add_page(b"b").measurement();
        let ba = EnclaveBuilder::new("e").add_page(b"b").add_page(b"a").measurement();
        assert_ne!(ab, ba);
    }

    #[test]
    fn signer_not_part_of_mrenclave() {
        let a = builder().measurement();
        let b = builder().signer([1u8; 32]).measurement();
        assert_eq!(a, b, "mrenclave covers content, not signer");
        assert_ne!(
            builder().build_identity().mr_signer,
            builder().signer([1u8; 32]).build_identity().mr_signer
        );
    }

    #[test]
    fn empty_builder_rejected() {
        let b = EnclaveBuilder::new("empty");
        assert!(validate_builder(&b).is_err());
        assert!(validate_builder(&builder()).is_ok());
    }

    fn enclave() -> Enclave {
        Enclave::from_parts(
            builder().build_identity(),
            CacheConfig { capacity: 4096, ways: 4, line_size: 64 },
            EpcConfig { total_bytes: 64 * 4096, usable_bytes: 32 * 4096, page_size: 4096 },
            CostModel::default(),
            [3u8; 32],
        )
    }

    #[test]
    fn ecall_charges_transitions_and_counts() {
        let e = enclave();
        let t0 = e.memory().elapsed_ns();
        let out = e.ecall(|_ctx| 42);
        assert_eq!(out, 42);
        assert_eq!(e.ecall_count(), 1);
        let cost = e.memory().elapsed_ns() - t0;
        let expected = CostModel::default().eenter_ns + CostModel::default().eexit_ns;
        assert!((cost - expected).abs() < 1e-9, "cost {cost} vs {expected}");
    }

    #[test]
    fn ocall_charges_round_trip() {
        let e = enclave();
        e.ecall(|ctx| {
            let t0 = ctx.memory().elapsed_ns();
            let v = ctx.ocall(|| 7);
            assert_eq!(v, 7);
            assert!(ctx.memory().elapsed_ns() > t0);
        });
        assert_eq!(e.ocall_count(), 1);
    }

    #[test]
    fn mem_stats_count_transitions_and_reset() {
        let e = enclave();
        e.ecall(|_| ());
        e.ecall(|ctx| {
            ctx.ocall(|| ());
        });
        let st = e.memory().stats();
        assert_eq!(st.ecalls, 2, "one per crossing, not per unit of work");
        assert_eq!(st.ocalls, 1);
        e.memory().reset_counters();
        assert_eq!(e.memory().stats().ecalls, 0, "phase counters reset");
        assert_eq!(e.ecall_count(), 2, "lifetime counter survives reset");
    }

    #[test]
    fn context_reflects_identity() {
        let e = enclave();
        e.ecall(|ctx| {
            assert_eq!(ctx.identity(), e.identity());
        });
    }
}
