//! # sgx-sim
//!
//! A software model of Intel SGX for the SCBR reproduction
//! ([Pires et al., Middleware '16]).
//!
//! Real SGX hardware is unavailable in this environment (and the extension
//! set has since been removed from client CPUs), so this crate rebuilds the
//! two things the paper's evaluation actually exercises:
//!
//! 1. **The performance physics of enclave memory.** Every effect the paper
//!    measures is a memory-hierarchy effect: enclave and native execution
//!    match until the working set exceeds the CPU cache (8 MB), diverge by
//!    tens of percent as the memory-encryption engine (MEE) taxes every
//!    cache miss, and fall off a cliff once the working set exceeds the
//!    usable EPC (~90 of 128 MB) and page swaps begin. The [`mem`] module
//!    replays exactly this on a virtual clock: a set-associative LLC model
//!    ([`cache`]), per-miss MEE surcharges, and an EPC pager ([`epc`])
//!    with CLOCK eviction.
//! 2. **The security contract of SGX.** Enclaves are measured at build time
//!    ([`enclave`]); secrets are provisioned after remote attestation
//!    ([`attest`]); state is sealed with rollback protection ([`seal`]);
//!    and protected memory detects tampering and replay through a
//!    counter/integrity tree with a trusted root ([`mee`]).
//!
//! ## Quick example
//!
//! ```
//! use sgx_sim::platform::SgxPlatform;
//! use sgx_sim::enclave::EnclaveBuilder;
//! use sgx_sim::mem::SimArena;
//!
//! let platform = SgxPlatform::for_testing(1);
//! let enclave = platform
//!     .launch(EnclaveBuilder::new("router").add_page(b"engine code"))
//!     .unwrap();
//!
//! // Data structures inside the enclave allocate from its protected memory
//! // and pay MEE/EPC costs on access.
//! let mut subs: SimArena<u64> = SimArena::with_stride(enclave.memory(), 432);
//! enclave.ecall(|_ctx| {
//!     let idx = subs.push(7);
//!     assert_eq!(*subs.read(idx), 7);
//! });
//! assert!(enclave.memory().elapsed_ns() > 0.0);
//! ```
//!
//! ## What is and is not modelled
//!
//! * Modelled: costs (cache, MEE, paging, ECALL/OCALL transitions),
//!   measurement, attestation, sealing, rollback protection, integrity
//!   trees.
//! * Not modelled: intra-process memory *isolation* (a Rust test harness
//!   cannot fault on stray loads), speculative-execution attacks, and the
//!   EPID group-signature scheme (quotes use plain RSA signatures).
//!
//! [Pires et al., Middleware '16]: https://doi.org/10.1145/2988336.2988346

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attest;
pub mod cache;
pub mod costs;
pub mod enclave;
pub mod epc;
pub mod error;
pub mod link;
pub mod mee;
pub mod mem;
pub mod platform;
pub mod seal;

pub use costs::{CacheConfig, CostModel, EpcConfig};
pub use enclave::{Enclave, EnclaveBuilder, EnclaveIdentity};
pub use error::SgxError;
pub use mem::{MemStats, MemorySim, SimArena};
pub use platform::SgxPlatform;
