//! Sealed storage and monotonic counters.
//!
//! An enclave can persist secrets across restarts by *sealing* them: the
//! platform derives a key from its fused device key and the enclave's
//! identity, so only the same enclave (policy `MrEnclave`) or any enclave
//! from the same vendor (policy `MrSigner`) on the same machine can unseal.
//!
//! The paper (§2, end) points out that sealing alone does not prevent
//! *rollback*: an attacker can serve a stale-but-valid sealed file. The
//! fix, modelled here, is to bind a platform [`MonotonicCounter`] value
//! into the sealed blob and compare it on unseal.

use crate::enclave::EnclaveContext;
use crate::error::SgxError;
use scbr_crypto::ctr::SymmetricKey;
use scbr_crypto::rng::CryptoRng;
use scbr_crypto::SealedBox;

/// Key-derivation policy for sealing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealPolicy {
    /// Key bound to the exact enclave measurement: new versions of the code
    /// cannot read old data.
    MrEnclave,
    /// Key bound to the signer: any enclave from the same vendor (and
    /// product id) can read the data.
    MrSigner,
}

/// Derives the seal key for the calling enclave under `policy`.
///
/// Deterministic per (platform, identity, policy): the same enclave gets
/// the same key on every call, a different enclave gets an unrelated key.
pub fn seal_key(ctx: &EnclaveContext<'_>, policy: SealPolicy) -> SymmetricKey {
    let identity = ctx.identity();
    let mut info = Vec::with_capacity(72);
    match policy {
        SealPolicy::MrEnclave => {
            info.extend_from_slice(b"seal-mrenclave");
            info.extend_from_slice(&identity.mr_enclave);
        }
        SealPolicy::MrSigner => {
            info.extend_from_slice(b"seal-mrsigner");
            info.extend_from_slice(&identity.mr_signer);
            info.extend_from_slice(&identity.isv_prod_id.to_be_bytes());
        }
    }
    let mut key = [0u8; 32];
    scbr_crypto::hkdf::derive(ctx.platform_key(), b"sgx-seal", &info, &mut key);
    SymmetricKey::from_bytes(key)
}

/// Seals `data` for later unsealing by the same enclave (or vendor).
///
/// `aad` is authenticated but stored in the clear (e.g. a format version).
pub fn seal_data(
    ctx: &EnclaveContext<'_>,
    policy: SealPolicy,
    data: &[u8],
    aad: &[u8],
    rng: &mut CryptoRng,
) -> Vec<u8> {
    SealedBox::new(&seal_key(ctx, policy)).seal(data, aad, rng)
}

/// Unseals data sealed with [`seal_data`].
///
/// # Errors
///
/// Returns [`SgxError::UnsealFailed`] if the blob was produced by a
/// different enclave/policy/platform or was tampered with.
pub fn unseal_data(
    ctx: &EnclaveContext<'_>,
    policy: SealPolicy,
    sealed: &[u8],
    aad: &[u8],
) -> Result<Vec<u8>, SgxError> {
    SealedBox::new(&seal_key(ctx, policy))
        .open(sealed, aad)
        .map_err(|_| SgxError::UnsealFailed { reason: "mac mismatch" })
}

/// A platform monotonic counter (SGX PSE-style).
///
/// Counters only move forward; enclaves bind the current value into sealed
/// state to detect rollback.
#[derive(Debug, Default)]
pub struct MonotonicCounter {
    value: u64,
}

impl MonotonicCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        MonotonicCounter { value: 0 }
    }

    /// Current value.
    pub fn read(&self) -> u64 {
        self.value
    }

    /// Increments and returns the new value.
    pub fn increment(&mut self) -> u64 {
        self.value += 1;
        self.value
    }
}

/// Sealed state with rollback protection: the monotonic counter value is
/// embedded in the associated data of the sealed blob.
///
/// ```
/// # use sgx_sim::platform::SgxPlatform;
/// # use sgx_sim::enclave::EnclaveBuilder;
/// # use sgx_sim::seal::{VersionedSeal, SealPolicy};
/// # use scbr_crypto::CryptoRng;
/// let platform = SgxPlatform::for_testing(1);
/// let enclave = platform
///     .launch(EnclaveBuilder::new("e").add_page(b"code"))
///     .unwrap();
/// let counter = platform.create_counter();
/// let mut rng = CryptoRng::from_seed(2);
/// let blob = enclave.ecall(|ctx| {
///     VersionedSeal::seal(ctx, SealPolicy::MrEnclave, &platform, counter, b"state v2", &mut rng)
/// }).unwrap();
/// let state = enclave.ecall(|ctx| {
///     VersionedSeal::unseal(ctx, SealPolicy::MrEnclave, &platform, counter, &blob)
/// }).unwrap();
/// assert_eq!(state, b"state v2");
/// ```
#[derive(Debug)]
pub struct VersionedSeal;

impl VersionedSeal {
    /// Increments counter `counter_id` and seals `data` bound to the new
    /// value.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::NotFound`] for an unknown counter.
    pub fn seal(
        ctx: &EnclaveContext<'_>,
        policy: SealPolicy,
        platform: &crate::platform::SgxPlatform,
        counter_id: crate::platform::CounterId,
        data: &[u8],
        rng: &mut CryptoRng,
    ) -> Result<Vec<u8>, SgxError> {
        let version = platform.increment_counter(counter_id)?;
        let aad = version.to_be_bytes();
        let mut blob = Vec::with_capacity(8 + data.len() + 48);
        blob.extend_from_slice(&aad);
        blob.extend_from_slice(&seal_data(ctx, policy, data, &aad, rng));
        Ok(blob)
    }

    /// Unseals a blob produced by [`VersionedSeal::seal`], verifying both
    /// the MAC and that the embedded version matches the live counter.
    ///
    /// # Errors
    ///
    /// [`SgxError::UnsealFailed`] when the blob is stale (rollback) or
    /// corrupt; [`SgxError::NotFound`] for an unknown counter.
    pub fn unseal(
        ctx: &EnclaveContext<'_>,
        policy: SealPolicy,
        platform: &crate::platform::SgxPlatform,
        counter_id: crate::platform::CounterId,
        blob: &[u8],
    ) -> Result<Vec<u8>, SgxError> {
        if blob.len() < 8 {
            return Err(SgxError::UnsealFailed { reason: "blob too short" });
        }
        let (aad, sealed) = blob.split_at(8);
        let claimed = u64::from_be_bytes(aad.try_into().expect("8 bytes"));
        let live = platform.read_counter(counter_id)?;
        if claimed != live {
            return Err(SgxError::UnsealFailed { reason: "stale counter (rollback detected)" });
        }
        unseal_data(ctx, policy, sealed, aad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::EnclaveBuilder;
    use crate::platform::SgxPlatform;

    fn platform() -> SgxPlatform {
        SgxPlatform::for_testing(7)
    }

    fn launch(p: &SgxPlatform, name: &str, page: &[u8]) -> crate::enclave::Enclave {
        p.launch(EnclaveBuilder::new(name).add_page(page).signer([5u8; 32])).expect("launch")
    }

    #[test]
    fn seal_unseal_same_enclave() {
        let p = platform();
        let e = launch(&p, "a", b"code");
        let mut rng = CryptoRng::from_seed(1);
        let sealed =
            e.ecall(|ctx| seal_data(ctx, SealPolicy::MrEnclave, b"secret", b"v1", &mut rng));
        let out = e.ecall(|ctx| unseal_data(ctx, SealPolicy::MrEnclave, &sealed, b"v1"));
        assert_eq!(out.unwrap(), b"secret");
    }

    #[test]
    fn different_enclave_cannot_unseal_mrenclave_policy() {
        let p = platform();
        let a = launch(&p, "a", b"code-a");
        let b = launch(&p, "b", b"code-b");
        let mut rng = CryptoRng::from_seed(2);
        let sealed = a.ecall(|ctx| seal_data(ctx, SealPolicy::MrEnclave, b"secret", b"", &mut rng));
        let out = b.ecall(|ctx| unseal_data(ctx, SealPolicy::MrEnclave, &sealed, b""));
        assert!(out.is_err());
    }

    #[test]
    fn same_signer_can_unseal_mrsigner_policy() {
        let p = platform();
        let a = launch(&p, "a", b"code-a");
        let b = launch(&p, "b", b"code-b"); // same signer, different code
        let mut rng = CryptoRng::from_seed(3);
        let sealed = a.ecall(|ctx| seal_data(ctx, SealPolicy::MrSigner, b"shared", b"", &mut rng));
        let out = b.ecall(|ctx| unseal_data(ctx, SealPolicy::MrSigner, &sealed, b""));
        assert_eq!(out.unwrap(), b"shared");
    }

    #[test]
    fn different_platform_cannot_unseal() {
        let p1 = platform();
        let p2 = SgxPlatform::for_testing(8);
        let a1 = launch(&p1, "a", b"code");
        let a2 = launch(&p2, "a", b"code"); // identical enclave, other machine
        let mut rng = CryptoRng::from_seed(4);
        let sealed = a1.ecall(|ctx| seal_data(ctx, SealPolicy::MrEnclave, b"local", b"", &mut rng));
        assert!(a2.ecall(|ctx| unseal_data(ctx, SealPolicy::MrEnclave, &sealed, b"")).is_err());
    }

    #[test]
    fn tampered_blob_rejected() {
        let p = platform();
        let e = launch(&p, "a", b"code");
        let mut rng = CryptoRng::from_seed(5);
        let mut sealed =
            e.ecall(|ctx| seal_data(ctx, SealPolicy::MrEnclave, b"secret", b"", &mut rng));
        sealed[9] ^= 1;
        assert!(e.ecall(|ctx| unseal_data(ctx, SealPolicy::MrEnclave, &sealed, b"")).is_err());
    }

    #[test]
    fn monotonic_counter_moves_forward() {
        let mut c = MonotonicCounter::new();
        assert_eq!(c.read(), 0);
        assert_eq!(c.increment(), 1);
        assert_eq!(c.increment(), 2);
        assert_eq!(c.read(), 2);
    }

    #[test]
    fn versioned_seal_round_trip() {
        let p = platform();
        let e = launch(&p, "a", b"code");
        let counter = p.create_counter();
        let mut rng = CryptoRng::from_seed(6);
        let blob = e
            .ecall(|ctx| {
                VersionedSeal::seal(ctx, SealPolicy::MrEnclave, &p, counter, b"cfg", &mut rng)
            })
            .unwrap();
        let out = e
            .ecall(|ctx| VersionedSeal::unseal(ctx, SealPolicy::MrEnclave, &p, counter, &blob))
            .unwrap();
        assert_eq!(out, b"cfg");
    }

    #[test]
    fn versioned_seal_detects_rollback() {
        let p = platform();
        let e = launch(&p, "a", b"code");
        let counter = p.create_counter();
        let mut rng = CryptoRng::from_seed(7);
        let old = e
            .ecall(|ctx| {
                VersionedSeal::seal(ctx, SealPolicy::MrEnclave, &p, counter, b"v1", &mut rng)
            })
            .unwrap();
        let new = e
            .ecall(|ctx| {
                VersionedSeal::seal(ctx, SealPolicy::MrEnclave, &p, counter, b"v2", &mut rng)
            })
            .unwrap();
        // Serving the stale blob must fail; the fresh one must succeed.
        let stale =
            e.ecall(|ctx| VersionedSeal::unseal(ctx, SealPolicy::MrEnclave, &p, counter, &old));
        assert!(matches!(stale, Err(SgxError::UnsealFailed { .. })));
        let fresh = e
            .ecall(|ctx| VersionedSeal::unseal(ctx, SealPolicy::MrEnclave, &p, counter, &new))
            .unwrap();
        assert_eq!(fresh, b"v2");
    }

    #[test]
    fn versioned_seal_unknown_counter() {
        let p = platform();
        let e = launch(&p, "a", b"code");
        let mut rng = CryptoRng::from_seed(8);
        let bogus = crate::platform::CounterId::invalid_for_tests();
        let r = e.ecall(|ctx| {
            VersionedSeal::seal(ctx, SealPolicy::MrEnclave, &p, bogus, b"x", &mut rng)
        });
        assert!(matches!(r, Err(SgxError::NotFound { .. })));
    }
}
