//! The simulated SGX-capable machine.
//!
//! An [`SgxPlatform`] owns the per-machine resources real SGX fuses into
//! the die or manages in privileged mode: the device root key (from which
//! report and seal keys derive), the quoting enclave with its attestation
//! key, the EPC configuration, and the monotonic-counter service.

use crate::attest::{Quote, QuotingEnclave, Report};
use crate::costs::{CacheConfig, CostModel, EpcConfig};
use crate::enclave::{validate_builder, Enclave, EnclaveBuilder};
use crate::error::SgxError;
use crate::seal::MonotonicCounter;
use parking_lot::Mutex;
use scbr_crypto::rng::CryptoRng;
use scbr_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use std::collections::HashMap;
use std::sync::Arc;

/// Handle to a platform monotonic counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(u64);

impl CounterId {
    /// An id that never refers to a live counter (for negative tests).
    pub fn invalid_for_tests() -> Self {
        CounterId(u64::MAX)
    }
}

struct PlatformState {
    counters: HashMap<CounterId, MonotonicCounter>,
    next_counter: u64,
}

/// A simulated SGX machine.
///
/// ```
/// use sgx_sim::platform::SgxPlatform;
/// use sgx_sim::enclave::EnclaveBuilder;
///
/// let platform = SgxPlatform::for_testing(1);
/// let enclave = platform
///     .launch(EnclaveBuilder::new("demo").add_page(b"code"))
///     .unwrap();
/// assert_eq!(enclave.ecall(|_| 2 + 2), 4);
/// ```
pub struct SgxPlatform {
    device_key: [u8; 32],
    cache: CacheConfig,
    epc: EpcConfig,
    costs: CostModel,
    quoting: QuotingEnclave,
    state: Arc<Mutex<PlatformState>>,
}

impl std::fmt::Debug for SgxPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SgxPlatform").field("cache", &self.cache).field("epc", &self.epc).finish()
    }
}

impl SgxPlatform {
    /// Builds a platform with explicit geometry, costs and attestation key
    /// strength. `seed` determines the device key and attestation key pair
    /// deterministically.
    pub fn with_config(
        seed: u64,
        cache: CacheConfig,
        epc: EpcConfig,
        costs: CostModel,
        attestation_key_bits: usize,
    ) -> Self {
        let mut rng = CryptoRng::from_seed(seed);
        let mut device_key = [0u8; 32];
        rng.fill(&mut device_key);
        let key_pair = RsaKeyPair::generate(attestation_key_bits, &mut rng)
            .expect("attestation key generation");
        SgxPlatform {
            device_key,
            cache,
            epc,
            costs,
            quoting: QuotingEnclave::new(key_pair),
            state: Arc::new(Mutex::new(PlatformState {
                counters: HashMap::new(),
                next_counter: 0,
            })),
        }
    }

    /// A platform shaped like the paper's machine (8 MB LLC, 128 MB EPC)
    /// with a 1024-bit attestation key.
    pub fn new(seed: u64) -> Self {
        SgxPlatform::with_config(
            seed,
            CacheConfig::default(),
            EpcConfig::default(),
            CostModel::default(),
            1024,
        )
    }

    /// A fast-to-construct platform for tests: default geometry, small
    /// attestation key.
    pub fn for_testing(seed: u64) -> Self {
        SgxPlatform::with_config(
            seed,
            CacheConfig::default(),
            EpcConfig::default(),
            CostModel::default(),
            512,
        )
    }

    /// The EPC configuration in force.
    pub fn epc_config(&self) -> &EpcConfig {
        &self.epc
    }

    /// The cache geometry in force.
    pub fn cache_config(&self) -> &CacheConfig {
        &self.cache
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.costs
    }

    /// Measures, validates and initialises an enclave.
    ///
    /// # Errors
    ///
    /// Rejects builders with no measured pages.
    pub fn launch(&self, builder: EnclaveBuilder) -> Result<Enclave, SgxError> {
        validate_builder(&builder)?;
        Ok(Enclave::from_parts(
            builder.build_identity(),
            self.cache,
            self.epc,
            self.costs.clone(),
            self.device_key,
        ))
    }

    /// Verifies a local report produced on this platform.
    ///
    /// # Errors
    ///
    /// [`SgxError::AttestationFailed`] for reports from other platforms or
    /// tampered reports.
    pub fn verify_local_report(&self, report: &Report) -> Result<(), SgxError> {
        crate::attest::verify_report(&self.device_key, report)
    }

    /// Asks the quoting enclave to convert a report into a quote.
    ///
    /// # Errors
    ///
    /// Propagates local-verification failures.
    pub fn quote(&self, report: &Report) -> Result<Quote, SgxError> {
        self.quoting.quote(&self.device_key, report)
    }

    /// The public key remote verifiers use to authenticate this platform's
    /// quotes.
    pub fn attestation_public_key(&self) -> &RsaPublicKey {
        self.quoting.attestation_public_key()
    }

    /// Creates a fresh monotonic counter.
    pub fn create_counter(&self) -> CounterId {
        let mut st = self.state.lock();
        let id = CounterId(st.next_counter);
        st.next_counter += 1;
        st.counters.insert(id, MonotonicCounter::new());
        id
    }

    /// Reads a counter.
    ///
    /// # Errors
    ///
    /// [`SgxError::NotFound`] for unknown ids.
    pub fn read_counter(&self, id: CounterId) -> Result<u64, SgxError> {
        self.state
            .lock()
            .counters
            .get(&id)
            .map(|c| c.read())
            .ok_or(SgxError::NotFound { what: "monotonic counter" })
    }

    /// Increments a counter, returning the new value.
    ///
    /// # Errors
    ///
    /// [`SgxError::NotFound`] for unknown ids.
    pub fn increment_counter(&self, id: CounterId) -> Result<u64, SgxError> {
        self.state
            .lock()
            .counters
            .get_mut(&id)
            .map(|c| c.increment())
            .ok_or(SgxError::NotFound { what: "monotonic counter" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::EnclaveBuilder;

    #[test]
    fn launch_requires_pages() {
        let p = SgxPlatform::for_testing(1);
        assert!(p.launch(EnclaveBuilder::new("empty")).is_err());
        assert!(p.launch(EnclaveBuilder::new("ok").add_page(b"x")).is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SgxPlatform::for_testing(5);
        let b = SgxPlatform::for_testing(5);
        let c = SgxPlatform::for_testing(6);
        assert_eq!(a.attestation_public_key(), b.attestation_public_key());
        assert_ne!(a.attestation_public_key(), c.attestation_public_key());
    }

    #[test]
    fn counters_lifecycle() {
        let p = SgxPlatform::for_testing(2);
        let c1 = p.create_counter();
        let c2 = p.create_counter();
        assert_ne!(c1, c2);
        assert_eq!(p.read_counter(c1).unwrap(), 0);
        assert_eq!(p.increment_counter(c1).unwrap(), 1);
        assert_eq!(p.read_counter(c1).unwrap(), 1);
        assert_eq!(p.read_counter(c2).unwrap(), 0, "counters independent");
        assert!(p.read_counter(CounterId::invalid_for_tests()).is_err());
    }

    #[test]
    fn enclaves_share_platform_epc_config() {
        let p = SgxPlatform::for_testing(3);
        let e = p.launch(EnclaveBuilder::new("a").add_page(b"x")).unwrap();
        // Enclave memory reflects the platform's EPC sizing.
        assert_eq!(e.memory().protection(), crate::mem::Protection::Enclave);
        assert_eq!(p.epc_config().total_bytes, 128 * 1024 * 1024);
    }
}
