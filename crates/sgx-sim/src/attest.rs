//! Local and remote attestation, and secret provisioning.
//!
//! SCBR's security hinges on one step: the service provider must convince
//! itself that the routing engine really is the expected code running in a
//! genuine enclave *before* handing over the symmetric key `SK`. The paper
//! relies on Intel's remote-attestation protocol; the simulator models the
//! same roles:
//!
//! * [`Report`] — `EREPORT`: the enclave's identity plus 64 bytes of
//!   caller-chosen data, MAC'd with a platform key (local attestation).
//! * [`Quote`] — the quoting enclave verifies a report and signs it with
//!   the platform's attestation key (stand-in for EPID).
//! * [`AttestationService`] — the verifier's trust anchor: checks quote
//!   signatures against the known attestation public key (stand-in for the
//!   Intel Attestation Service).
//! * [`provision`] — the "secure channel" finale: the enclave binds a fresh
//!   RSA public key into its report data; the verifier checks the quote and
//!   encrypts a secret to that key.

use crate::enclave::{EnclaveContext, EnclaveIdentity, Measurement};
use crate::error::SgxError;
use scbr_crypto::hmac::HmacSha256;
use scbr_crypto::rng::CryptoRng;
use scbr_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use scbr_crypto::sha256::Sha256;

/// Free-form data an enclave binds into its report (64 bytes, like SGX).
pub type ReportData = [u8; 64];

/// A local attestation report (`EREPORT`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The reporting enclave's identity.
    pub identity: EnclaveIdentity,
    /// Caller-chosen payload (e.g. a hash of a fresh public key).
    pub report_data: ReportData,
    mac: [u8; 32],
}

impl Report {
    fn signing_bytes(identity: &EnclaveIdentity, data: &ReportData) -> Vec<u8> {
        let mut out = Vec::with_capacity(160);
        out.extend_from_slice(&identity.mr_enclave);
        out.extend_from_slice(&identity.mr_signer);
        out.extend_from_slice(&identity.isv_prod_id.to_be_bytes());
        out.extend_from_slice(&identity.isv_svn.to_be_bytes());
        out.push(identity.debug as u8);
        out.extend_from_slice(data);
        out
    }

    /// Serialises the report for the wire (fixed layout: identity,
    /// report data, MAC).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Report::signing_bytes(&self.identity, &self.report_data);
        out.extend_from_slice(&self.mac);
        out
    }

    /// Parses a report serialised by [`Report::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`SgxError::AttestationFailed`] on truncated or oversized input.
    /// (The MAC itself is only checked by verification, as on hardware.)
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        // mr_enclave(32) mr_signer(32) prod(2) svn(2) debug(1) data(64) mac(32)
        const LEN: usize = 32 + 32 + 2 + 2 + 1 + 64 + 32;
        if bytes.len() != LEN {
            return Err(SgxError::AttestationFailed { reason: "malformed report bytes" });
        }
        let mut mr_enclave = [0u8; 32];
        mr_enclave.copy_from_slice(&bytes[0..32]);
        let mut mr_signer = [0u8; 32];
        mr_signer.copy_from_slice(&bytes[32..64]);
        let isv_prod_id = u16::from_be_bytes([bytes[64], bytes[65]]);
        let isv_svn = u16::from_be_bytes([bytes[66], bytes[67]]);
        let debug = match bytes[68] {
            0 => false,
            1 => true,
            _ => return Err(SgxError::AttestationFailed { reason: "malformed report bytes" }),
        };
        let mut report_data = [0u8; 64];
        report_data.copy_from_slice(&bytes[69..133]);
        let mut mac = [0u8; 32];
        mac.copy_from_slice(&bytes[133..165]);
        Ok(Report {
            identity: EnclaveIdentity { mr_enclave, mr_signer, isv_prod_id, isv_svn, debug },
            report_data,
            mac,
        })
    }
}

/// Creates a report for the calling enclave (`EREPORT`).
pub fn create_report(ctx: &EnclaveContext<'_>, report_data: ReportData) -> Report {
    let identity = ctx.identity().clone();
    let mut key = [0u8; 32];
    scbr_crypto::hkdf::derive(ctx.platform_key(), b"sgx-report-key", b"", &mut key);
    let mac = HmacSha256::mac(&key, &Report::signing_bytes(&identity, &report_data));
    Report { identity, report_data, mac }
}

/// Verifies a report against a platform key (local attestation: only code
/// on the same platform can do this).
///
/// # Errors
///
/// [`SgxError::AttestationFailed`] if the MAC does not verify.
pub(crate) fn verify_report(platform_key: &[u8; 32], report: &Report) -> Result<(), SgxError> {
    let mut key = [0u8; 32];
    scbr_crypto::hkdf::derive(platform_key, b"sgx-report-key", b"", &mut key);
    let expected =
        HmacSha256::mac(&key, &Report::signing_bytes(&report.identity, &report.report_data));
    if scbr_crypto::ct::ct_eq(&expected, &report.mac) {
        Ok(())
    } else {
        Err(SgxError::AttestationFailed { reason: "report mac mismatch" })
    }
}

/// A remotely verifiable quote: a report counter-signed by the platform's
/// quoting enclave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// The quoted report (identity + report data).
    pub report: Report,
    signature: Vec<u8>,
}

impl Quote {
    /// Serialises the quote for the wire (report, then the platform
    /// signature length-prefixed), so overlay routers can exchange quotes
    /// over untrusted links.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.report.to_bytes();
        out.extend_from_slice(&(self.signature.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parses a quote serialised by [`Quote::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`SgxError::AttestationFailed`] on malformed input. A parsed quote
    /// carries no trust until [`AttestationService::verify`] accepts it.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        const REPORT_LEN: usize = 165;
        if bytes.len() < REPORT_LEN + 4 {
            return Err(SgxError::AttestationFailed { reason: "malformed quote bytes" });
        }
        let report = Report::from_bytes(&bytes[..REPORT_LEN])?;
        let sig_len =
            u32::from_be_bytes(bytes[REPORT_LEN..REPORT_LEN + 4].try_into().expect("4 bytes"))
                as usize;
        let rest = &bytes[REPORT_LEN + 4..];
        if rest.len() != sig_len {
            return Err(SgxError::AttestationFailed { reason: "malformed quote bytes" });
        }
        Ok(Quote { report, signature: rest.to_vec() })
    }
}

/// The platform component that turns reports into quotes.
#[derive(Debug)]
pub(crate) struct QuotingEnclave {
    key_pair: RsaKeyPair,
}

impl QuotingEnclave {
    pub(crate) fn new(key_pair: RsaKeyPair) -> Self {
        QuotingEnclave { key_pair }
    }

    pub(crate) fn attestation_public_key(&self) -> &RsaPublicKey {
        self.key_pair.public()
    }

    /// Verifies the local report and signs it into a quote.
    ///
    /// # Errors
    ///
    /// Propagates report-verification failures.
    pub(crate) fn quote(
        &self,
        platform_key: &[u8; 32],
        report: &Report,
    ) -> Result<Quote, SgxError> {
        verify_report(platform_key, report)?;
        let body = Report::signing_bytes(&report.identity, &report.report_data);
        let signature = self
            .key_pair
            .private()
            .sign(&body)
            .map_err(|_| SgxError::AttestationFailed { reason: "quote signing failed" })?;
        Ok(Quote { report: report.clone(), signature })
    }
}

/// The remote verifier's trust anchor (stand-in for the Intel Attestation
/// Service): knows the genuine platforms' attestation public keys.
#[derive(Debug, Clone, Default)]
pub struct AttestationService {
    trusted_keys: Vec<RsaPublicKey>,
}

impl AttestationService {
    /// An attestation service trusting no platforms yet.
    pub fn new() -> Self {
        AttestationService::default()
    }

    /// Registers a genuine platform's attestation public key.
    pub fn trust_platform(&mut self, key: RsaPublicKey) {
        self.trusted_keys.push(key);
    }

    /// Verifies a quote: genuine platform signature over the report body.
    ///
    /// Returns the attested identity and report data on success.
    ///
    /// # Errors
    ///
    /// [`SgxError::AttestationFailed`] if no trusted platform signed this
    /// quote.
    pub fn verify(&self, quote: &Quote) -> Result<(EnclaveIdentity, ReportData), SgxError> {
        let body = Report::signing_bytes(&quote.report.identity, &quote.report.report_data);
        for key in &self.trusted_keys {
            if key.verify(&body, &quote.signature).is_ok() {
                return Ok((quote.report.identity.clone(), quote.report.report_data));
            }
        }
        Err(SgxError::AttestationFailed { reason: "quote not signed by a trusted platform" })
    }
}

/// Expected-identity policy a verifier enforces before releasing secrets.
#[derive(Debug, Clone)]
pub struct VerifierPolicy {
    /// Required `MRENCLAVE`; `None` accepts any measurement (discouraged).
    pub mr_enclave: Option<Measurement>,
    /// Required `MRSIGNER`.
    pub mr_signer: Option<Measurement>,
    /// Minimum security version.
    pub min_isv_svn: u16,
    /// Whether debug enclaves are acceptable.
    pub allow_debug: bool,
}

impl VerifierPolicy {
    /// Policy pinning an exact measurement.
    pub fn require_mr_enclave(m: Measurement) -> Self {
        VerifierPolicy { mr_enclave: Some(m), mr_signer: None, min_isv_svn: 0, allow_debug: false }
    }

    /// Checks an attested identity against the policy.
    ///
    /// # Errors
    ///
    /// [`SgxError::AttestationFailed`] naming the violated clause.
    pub fn check(&self, identity: &EnclaveIdentity) -> Result<(), SgxError> {
        if let Some(required) = &self.mr_enclave {
            if &identity.mr_enclave != required {
                return Err(SgxError::AttestationFailed { reason: "unexpected mrenclave" });
            }
        }
        if let Some(required) = &self.mr_signer {
            if &identity.mr_signer != required {
                return Err(SgxError::AttestationFailed { reason: "unexpected mrsigner" });
            }
        }
        if identity.isv_svn < self.min_isv_svn {
            return Err(SgxError::AttestationFailed { reason: "isv svn too old" });
        }
        if identity.debug && !self.allow_debug {
            return Err(SgxError::AttestationFailed { reason: "debug enclave rejected" });
        }
        Ok(())
    }
}

/// Secret provisioning over attestation, as SCBR needs for delivering `SK`.
pub mod provision {
    use super::*;

    /// What the enclave produces to request a secret: a quote whose report
    /// data commits to a freshly generated RSA public key.
    #[derive(Debug, Clone)]
    pub struct ProvisioningRequest {
        /// Quote proving identity and binding `response_key`.
        pub quote: Quote,
        /// Key the verifier should encrypt the secret under.
        pub response_key: RsaPublicKey,
    }

    /// Binds `key` into report data: SHA-256 of the serialised key, zero
    /// padded to 64 bytes.
    pub fn bind_key(key: &RsaPublicKey) -> ReportData {
        let digest = Sha256::digest(&key.to_bytes());
        let mut data = [0u8; 64];
        data[..32].copy_from_slice(&digest);
        data
    }

    /// Verifier side: checks the quote (via `service`), the policy, and the
    /// key binding, then encrypts `secret` to the enclave.
    ///
    /// # Errors
    ///
    /// Any attestation failure, policy violation, binding mismatch, or an
    /// over-long secret.
    pub fn release_secret(
        service: &AttestationService,
        policy: &VerifierPolicy,
        request: &ProvisioningRequest,
        secret: &[u8],
        rng: &mut CryptoRng,
    ) -> Result<Vec<u8>, SgxError> {
        let (identity, report_data) = service.verify(&request.quote)?;
        policy.check(&identity)?;
        if report_data != bind_key(&request.response_key) {
            return Err(SgxError::AttestationFailed { reason: "response key not bound in quote" });
        }
        request
            .response_key
            .encrypt(secret, rng)
            .map_err(|_| SgxError::AttestationFailed { reason: "secret too long for response key" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::EnclaveBuilder;
    use crate::platform::SgxPlatform;

    fn setup() -> (SgxPlatform, crate::enclave::Enclave, AttestationService) {
        let platform = SgxPlatform::for_testing(42);
        let enclave = platform
            .launch(EnclaveBuilder::new("router").add_page(b"matching code").signer([2u8; 32]))
            .unwrap();
        let mut service = AttestationService::new();
        service.trust_platform(platform.attestation_public_key().clone());
        (platform, enclave, service)
    }

    #[test]
    fn report_verifies_on_same_platform() {
        let (platform, enclave, _) = setup();
        let report = enclave.ecall(|ctx| create_report(ctx, [7u8; 64]));
        assert!(platform.verify_local_report(&report).is_ok());
    }

    #[test]
    fn report_fails_on_other_platform() {
        let (_, enclave, _) = setup();
        let other = SgxPlatform::for_testing(43);
        let report = enclave.ecall(|ctx| create_report(ctx, [7u8; 64]));
        assert!(other.verify_local_report(&report).is_err());
    }

    #[test]
    fn tampered_report_rejected() {
        let (platform, enclave, _) = setup();
        let mut report = enclave.ecall(|ctx| create_report(ctx, [7u8; 64]));
        report.report_data[0] ^= 1;
        assert!(platform.verify_local_report(&report).is_err());
    }

    #[test]
    fn quote_round_trip() {
        let (platform, enclave, service) = setup();
        let report = enclave.ecall(|ctx| create_report(ctx, [9u8; 64]));
        let quote = platform.quote(&report).unwrap();
        let (identity, data) = service.verify(&quote).unwrap();
        assert_eq!(&identity, enclave.identity());
        assert_eq!(data, [9u8; 64]);
    }

    #[test]
    fn quote_from_untrusted_platform_rejected() {
        let (_, enclave, service) = setup();
        let rogue = SgxPlatform::for_testing(99);
        // The rogue platform can't even produce a quote for this report
        // (local MAC fails)...
        let report = enclave.ecall(|ctx| create_report(ctx, [0u8; 64]));
        assert!(rogue.quote(&report).is_err());
        // ...and a quote from a rogue platform's own enclave fails at the
        // service, which doesn't trust that platform.
        let rogue_enclave =
            rogue.launch(EnclaveBuilder::new("router").add_page(b"matching code")).unwrap();
        let rogue_report = rogue_enclave.ecall(|ctx| create_report(ctx, [0u8; 64]));
        let rogue_quote = rogue.quote(&rogue_report).unwrap();
        assert!(service.verify(&rogue_quote).is_err());
    }

    #[test]
    fn forged_signature_rejected() {
        let (platform, enclave, service) = setup();
        let report = enclave.ecall(|ctx| create_report(ctx, [1u8; 64]));
        let mut quote = platform.quote(&report).unwrap();
        quote.signature[5] ^= 1;
        assert!(service.verify(&quote).is_err());
    }

    #[test]
    fn policy_checks() {
        let (_, enclave, _) = setup();
        let id = enclave.identity().clone();
        assert!(VerifierPolicy::require_mr_enclave(id.mr_enclave).check(&id).is_ok());
        assert!(VerifierPolicy::require_mr_enclave([0u8; 32]).check(&id).is_err());
        let svn_policy = VerifierPolicy {
            mr_enclave: None,
            mr_signer: Some(id.mr_signer),
            min_isv_svn: 99,
            allow_debug: false,
        };
        assert!(matches!(
            svn_policy.check(&id),
            Err(SgxError::AttestationFailed { reason: "isv svn too old" })
        ));
    }

    #[test]
    fn debug_enclaves_rejected_by_default() {
        let platform = SgxPlatform::for_testing(50);
        let enclave =
            platform.launch(EnclaveBuilder::new("dbg").add_page(b"code").debug(true)).unwrap();
        let policy = VerifierPolicy::require_mr_enclave(enclave.identity().mr_enclave);
        assert!(matches!(
            policy.check(enclave.identity()),
            Err(SgxError::AttestationFailed { reason: "debug enclave rejected" })
        ));
    }

    #[test]
    fn report_and_quote_wire_round_trip() {
        let (platform, enclave, service) = setup();
        let report = enclave.ecall(|ctx| create_report(ctx, [3u8; 64]));
        let parsed = Report::from_bytes(&report.to_bytes()).unwrap();
        assert_eq!(parsed, report);
        let quote = platform.quote(&report).unwrap();
        let parsed = Quote::from_bytes(&quote.to_bytes()).unwrap();
        assert_eq!(parsed, quote);
        // The round-tripped quote still verifies.
        assert!(service.verify(&parsed).is_ok());
        // Truncations and trailing bytes are rejected.
        let bytes = quote.to_bytes();
        assert!(Quote::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(Quote::from_bytes(&long).is_err());
        assert!(Report::from_bytes(&report.to_bytes()[..100]).is_err());
    }

    #[test]
    fn end_to_end_secret_provisioning() {
        let (platform, enclave, service) = setup();
        let mut verifier_rng = CryptoRng::from_seed(1);
        let mut enclave_rng = CryptoRng::from_seed(2);

        // Inside the enclave: generate a response key and quote it.
        let (request, response_pair) = enclave.ecall(|ctx| {
            let pair = RsaKeyPair::generate(512, &mut enclave_rng).unwrap();
            let report = create_report(ctx, provision::bind_key(pair.public()));
            (report, pair)
        });
        let quote = platform.quote(&request).unwrap();
        let req =
            provision::ProvisioningRequest { quote, response_key: response_pair.public().clone() };

        // Verifier: release the secret only to the expected measurement.
        let policy = VerifierPolicy::require_mr_enclave(enclave.identity().mr_enclave);
        let wrapped = provision::release_secret(
            &service,
            &policy,
            &req,
            b"the symmetric key SK",
            &mut verifier_rng,
        )
        .unwrap();

        // Enclave decrypts.
        let secret = response_pair.private().decrypt(&wrapped).unwrap();
        assert_eq!(secret, b"the symmetric key SK");
    }

    #[test]
    fn provisioning_rejects_substituted_key() {
        let (platform, enclave, service) = setup();
        let mut rng = CryptoRng::from_seed(3);
        let honest = RsaKeyPair::generate(512, &mut rng).unwrap();
        let attacker = RsaKeyPair::generate(512, &mut rng).unwrap();
        let report = enclave.ecall(|ctx| create_report(ctx, provision::bind_key(honest.public())));
        let quote = platform.quote(&report).unwrap();
        // A man in the middle swaps in their own key.
        let req = provision::ProvisioningRequest { quote, response_key: attacker.public().clone() };
        let policy = VerifierPolicy::require_mr_enclave(enclave.identity().mr_enclave);
        assert!(matches!(
            provision::release_secret(&service, &policy, &req, b"sk", &mut rng),
            Err(SgxError::AttestationFailed { reason: "response key not bound in quote" })
        ));
    }
}
