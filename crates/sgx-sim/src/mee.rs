//! Functional model of the SGX memory encryption engine (MEE).
//!
//! The MEE encrypts cache lines leaving the CPU package and protects them
//! with an *integrity tree*: a stateful MAC scheme with per-block version
//! counters whose root never leaves the die. Any modification or replay of
//! protected memory is detected on the next read (on real hardware this
//! locks the memory controller; here it surfaces as an error).
//!
//! Two components are provided:
//!
//! * [`CounterTree`] — an 8-ary version/counter tree as described by Gueron
//!   (the MEE whitepaper the paper cites): counters live in untrusted
//!   storage, each node is MAC'd with its parent counter as nonce, the root
//!   counters are trusted. Tampering *or* rolling back any part of the
//!   untrusted state is detected.
//! * [`ProtectedStore`] — page-granularity encrypted storage combining a
//!   [`CounterTree`] with authenticated encryption, the functional analogue
//!   of EPC eviction (`EWB`/`ELD`): evicted pages are confidential, and
//!   stale or modified pages are rejected when reloaded.
//!
//! The *cost* of MEE operations is charged separately by
//! [`crate::mem::MemorySim`]; this module provides the security semantics.

use crate::error::SgxError;
use scbr_crypto::ctr::SymmetricKey;
use scbr_crypto::hmac::HmacSha256;
use scbr_crypto::rng::CryptoRng;
use scbr_crypto::SealedBox;
use std::collections::HashMap;

/// Fan-out of the counter tree (8, following the MEE design).
pub const FANOUT: u64 = 8;

/// A tree node: one version counter per child.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Node {
    /// Version counters, one per child slot.
    pub counters: [u64; FANOUT as usize],
}

impl Node {
    fn to_bytes(self) -> [u8; 64] {
        let mut out = [0u8; 64];
        for (i, c) in self.counters.iter().enumerate() {
            out[8 * i..8 * i + 8].copy_from_slice(&c.to_be_bytes());
        }
        out
    }
}

/// The untrusted portion of a [`CounterTree`]: node counters and their MACs.
///
/// An attacker model can freely inspect, modify, snapshot and restore this
/// state; the tree detects it.
#[derive(Debug, Clone, Default)]
pub struct UntrustedTreeState {
    /// `(level, index) -> node`.
    pub nodes: HashMap<(u32, u64), Node>,
    /// `(level, index) -> mac` over the node, keyed by its parent counter.
    pub macs: HashMap<(u32, u64), [u8; 32]>,
}

/// 8-ary integrity/version tree with a trusted root.
///
/// Levels are numbered from the leaves (level 0) upwards; the root counters
/// (versions of the top-level nodes) are stored inside the struct and stand
/// for on-die state.
#[derive(Debug, Clone)]
pub struct CounterTree {
    key: [u8; 32],
    /// Number of node levels below the root.
    depth: u32,
    root: Node,
    untrusted: UntrustedTreeState,
}

impl CounterTree {
    /// Creates a tree able to protect `max_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `max_blocks` is zero.
    pub fn new(max_blocks: u64, mac_key: [u8; 32]) -> Self {
        assert!(max_blocks > 0, "tree must cover at least one block");
        // depth levels of nodes cover FANOUT^(depth+1) blocks (root adds one).
        let mut depth = 0u32;
        let mut cover = FANOUT; // root alone covers 8 blocks
        while cover < max_blocks {
            cover *= FANOUT;
            depth += 1;
        }
        CounterTree {
            key: mac_key,
            depth,
            root: Node::default(),
            untrusted: UntrustedTreeState::default(),
        }
    }

    /// Number of levels below the trusted root.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Node index of `block`'s ancestor at `level`.
    fn node_index(&self, block: u64, level: u32) -> u64 {
        block / FANOUT.pow(level + 1)
    }

    /// Child slot of the ancestor at `level` within its parent.
    fn slot_in_parent(&self, block: u64, level: u32) -> usize {
        ((block / FANOUT.pow(level + 1)) % FANOUT) as usize
    }

    fn mac_node(&self, level: u32, idx: u64, node: &Node, parent_counter: u64) -> [u8; 32] {
        let mut mac = HmacSha256::new(&self.key);
        mac.update(&level.to_be_bytes());
        mac.update(&idx.to_be_bytes());
        mac.update(&node.to_bytes());
        mac.update(&parent_counter.to_be_bytes());
        mac.finalize()
    }

    /// Counter of the node at (level, idx) as recorded by its parent.
    fn parent_counter(&self, block: u64, level: u32) -> u64 {
        if level == self.depth {
            unreachable!("root has no parent");
        }
        let parent_level = level + 1;
        let slot = self.slot_in_parent(block, level);
        if parent_level == self.depth {
            self.root.counters[slot]
        } else {
            let pidx = self.node_index(block, parent_level);
            self.untrusted.nodes.get(&(parent_level, pidx)).copied().unwrap_or_default().counters
                [slot]
        }
    }

    /// Verifies the authenticity of every node on `block`'s path.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::IntegrityViolation`] if any node on the path was
    /// tampered with or replayed.
    pub fn verify_path(&self, block: u64) -> Result<(), SgxError> {
        // `depth == 0` means the root's counters directly version blocks.
        for level in (0..self.depth).rev() {
            let idx = self.node_index(block, level);
            let node = self.untrusted.nodes.get(&(level, idx)).copied().unwrap_or_default();
            let parent_counter = self.parent_counter(block, level);
            match self.untrusted.macs.get(&(level, idx)) {
                Some(mac) => {
                    let expected = self.mac_node(level, idx, &node, parent_counter);
                    if !scbr_crypto::ct::ct_eq(&expected, mac) {
                        return Err(SgxError::IntegrityViolation {
                            what: "counter tree node mac mismatch",
                        });
                    }
                }
                None => {
                    // An absent node is only legitimate if its parent has
                    // never versioned it.
                    if parent_counter != 0 {
                        return Err(SgxError::IntegrityViolation {
                            what: "counter tree node missing",
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Current version of `block` (0 if never bumped), after verifying the
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates integrity violations from [`CounterTree::verify_path`].
    pub fn version(&self, block: u64) -> Result<u64, SgxError> {
        self.verify_path(block)?;
        Ok(self.leaf_counter(block))
    }

    fn leaf_counter(&self, block: u64) -> u64 {
        let slot = (block % FANOUT) as usize;
        if self.depth == 0 {
            self.root.counters[slot]
        } else {
            let idx = block / FANOUT;
            self.untrusted.nodes.get(&(0, idx)).copied().unwrap_or_default().counters[slot]
        }
    }

    /// Increments `block`'s version, updating counters and MACs along the
    /// path. Returns the new version.
    ///
    /// # Errors
    ///
    /// Fails with [`SgxError::IntegrityViolation`] if the existing path does
    /// not verify (writes never launder a corrupted state).
    pub fn bump(&mut self, block: u64) -> Result<u64, SgxError> {
        self.verify_path(block)?;
        if self.depth == 0 {
            let slot = (block % FANOUT) as usize;
            self.root.counters[slot] += 1;
            return Ok(self.root.counters[slot]);
        }
        // Increment the leaf counter.
        let leaf_idx = block / FANOUT;
        let leaf_slot = (block % FANOUT) as usize;
        let leaf = self.untrusted.nodes.entry((0, leaf_idx)).or_default();
        leaf.counters[leaf_slot] += 1;
        let new_version = leaf.counters[leaf_slot];
        // Every ancestor bumps the counter versioning its child on the path,
        // then the child's MAC is recomputed with the new parent counter.
        for level in 0..self.depth {
            let idx = self.node_index(block, level);
            let slot = (idx % FANOUT) as usize;
            let parent_level = level + 1;
            let parent_counter = if parent_level == self.depth {
                self.root.counters[slot] += 1;
                self.root.counters[slot]
            } else {
                let pidx = self.node_index(block, parent_level);
                let parent = self.untrusted.nodes.entry((parent_level, pidx)).or_default();
                parent.counters[slot] += 1;
                parent.counters[slot]
            };
            let node = *self.untrusted.nodes.entry((level, idx)).or_default();
            let mac = self.mac_node(level, idx, &node, parent_counter);
            self.untrusted.macs.insert((level, idx), mac);
        }
        Ok(new_version)
    }

    /// Snapshot of the untrusted state (what an attacker could copy).
    pub fn export_untrusted(&self) -> UntrustedTreeState {
        self.untrusted.clone()
    }

    /// Replaces the untrusted state (what an attacker could restore).
    pub fn import_untrusted(&mut self, state: UntrustedTreeState) {
        self.untrusted = state;
    }
}

/// Encrypted, integrity- and replay-protected page store.
///
/// The functional analogue of evicting enclave pages to untrusted DRAM:
/// page contents are sealed with authenticated encryption bound to the
/// page's id and current tree version.
///
/// ```
/// use sgx_sim::mee::ProtectedStore;
/// use scbr_crypto::{CryptoRng, ctr::SymmetricKey};
///
/// let mut rng = CryptoRng::from_seed(1);
/// let key = SymmetricKey::generate(&mut rng);
/// let mut store = ProtectedStore::new(1024, &key, rng);
/// store.write(7, b"page contents").unwrap();
/// assert_eq!(store.read(7).unwrap(), b"page contents");
/// ```
#[derive(Debug)]
pub struct ProtectedStore {
    sealer: SealedBox,
    tree: CounterTree,
    /// Untrusted page storage: page id -> sealed bytes.
    pages: HashMap<u64, Vec<u8>>,
    rng: CryptoRng,
}

impl ProtectedStore {
    /// Creates a store covering up to `max_pages` pages, keyed by `key`.
    pub fn new(max_pages: u64, key: &SymmetricKey, rng: CryptoRng) -> Self {
        let mut mac_key = [0u8; 32];
        scbr_crypto::hkdf::derive(b"sgx-sim-mee", key.as_bytes(), b"tree", &mut mac_key);
        ProtectedStore {
            sealer: SealedBox::new(key),
            tree: CounterTree::new(max_pages, mac_key),
            pages: HashMap::new(),
            rng,
        }
    }

    /// Encrypts and stores `data` as page `page`, bumping its version.
    ///
    /// # Errors
    ///
    /// Propagates integrity violations if the tree state was corrupted.
    pub fn write(&mut self, page: u64, data: &[u8]) -> Result<(), SgxError> {
        let version = self.tree.bump(page)?;
        let aad = Self::aad(page, version);
        let sealed = self.sealer.seal(data, &aad, &mut self.rng);
        self.pages.insert(page, sealed);
        Ok(())
    }

    /// Verifies and decrypts page `page`.
    ///
    /// # Errors
    ///
    /// [`SgxError::IntegrityViolation`] if the page is missing, tampered
    /// with, or a replay of an older version.
    pub fn read(&mut self, page: u64) -> Result<Vec<u8>, SgxError> {
        let version = self.tree.version(page)?;
        if version == 0 {
            return Err(SgxError::IntegrityViolation { what: "page never written" });
        }
        let sealed = self
            .pages
            .get(&page)
            .ok_or(SgxError::IntegrityViolation { what: "page data missing" })?;
        let aad = Self::aad(page, version);
        self.sealer
            .open(sealed, &aad)
            .map_err(|_| SgxError::IntegrityViolation { what: "page mac mismatch" })
    }

    fn aad(page: u64, version: u64) -> [u8; 16] {
        let mut aad = [0u8; 16];
        aad[..8].copy_from_slice(&page.to_be_bytes());
        aad[8..].copy_from_slice(&version.to_be_bytes());
        aad
    }

    /// Raw (attacker-visible) sealed bytes of a page, if present.
    pub fn raw_page(&self, page: u64) -> Option<&Vec<u8>> {
        self.pages.get(&page)
    }

    /// Overwrites the raw sealed bytes of a page (attacker action).
    pub fn set_raw_page(&mut self, page: u64, bytes: Vec<u8>) {
        self.pages.insert(page, bytes);
    }

    /// Snapshot of all untrusted state: pages plus tree nodes/MACs.
    pub fn export_untrusted(&self) -> (HashMap<u64, Vec<u8>>, UntrustedTreeState) {
        (self.pages.clone(), self.tree.export_untrusted())
    }

    /// Restores untrusted state captured earlier (attacker rollback).
    pub fn import_untrusted(&mut self, pages: HashMap<u64, Vec<u8>>, tree: UntrustedTreeState) {
        self.pages = pages;
        self.tree.import_untrusted(tree);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> CounterTree {
        CounterTree::new(4096, [7u8; 32])
    }

    #[test]
    fn fresh_tree_verifies_and_reads_zero() {
        let t = tree();
        assert!(t.depth() >= 3);
        assert_eq!(t.version(0).unwrap(), 0);
        assert_eq!(t.version(4095).unwrap(), 0);
    }

    #[test]
    fn bump_increments_version() {
        let mut t = tree();
        assert_eq!(t.bump(42).unwrap(), 1);
        assert_eq!(t.bump(42).unwrap(), 2);
        assert_eq!(t.version(42).unwrap(), 2);
        assert_eq!(t.version(43).unwrap(), 0, "neighbour unaffected");
    }

    #[test]
    fn depth_zero_tree_works() {
        let mut t = CounterTree::new(8, [1u8; 32]);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.bump(3).unwrap(), 1);
        assert_eq!(t.version(3).unwrap(), 1);
    }

    #[test]
    fn counter_tamper_detected() {
        let mut t = tree();
        t.bump(10).unwrap();
        let mut state = t.export_untrusted();
        // Attacker inflates a counter without knowing the MAC key.
        let key = state.nodes.keys().next().copied().unwrap();
        state.nodes.get_mut(&key).unwrap().counters[0] += 100;
        t.import_untrusted(state);
        assert!(t.version(10).is_err());
    }

    #[test]
    fn node_deletion_detected() {
        let mut t = tree();
        t.bump(10).unwrap();
        let mut state = t.export_untrusted();
        state.nodes.clear();
        state.macs.clear();
        t.import_untrusted(state);
        assert!(t.version(10).is_err(), "wiping state after writes must fail");
    }

    #[test]
    fn replay_of_old_snapshot_detected() {
        let mut t = tree();
        t.bump(10).unwrap();
        let old = t.export_untrusted();
        t.bump(10).unwrap(); // trusted root moved on
        t.import_untrusted(old);
        assert!(t.version(10).is_err(), "stale snapshot must fail root check");
    }

    #[test]
    fn replay_of_sibling_path_still_ok() {
        // Restoring an old snapshot only breaks paths that changed since.
        let mut t = tree();
        t.bump(10).unwrap();
        t.bump(3000).unwrap();
        let snapshot = t.export_untrusted();
        t.import_untrusted(snapshot);
        assert_eq!(t.version(10).unwrap(), 1);
        assert_eq!(t.version(3000).unwrap(), 1);
    }

    #[test]
    fn bump_refuses_corrupted_state() {
        let mut t = tree();
        t.bump(10).unwrap();
        let mut state = t.export_untrusted();
        let key = state.macs.keys().next().copied().unwrap();
        state.macs.get_mut(&key).unwrap()[0] ^= 1;
        t.import_untrusted(state);
        assert!(t.bump(10).is_err());
    }

    fn store() -> ProtectedStore {
        let mut rng = CryptoRng::from_seed(5);
        let key = SymmetricKey::generate(&mut rng);
        ProtectedStore::new(1 << 16, &key, rng)
    }

    #[test]
    fn store_round_trip_and_overwrite() {
        let mut s = store();
        s.write(1, b"version one").unwrap();
        assert_eq!(s.read(1).unwrap(), b"version one");
        s.write(1, b"version two").unwrap();
        assert_eq!(s.read(1).unwrap(), b"version two");
    }

    #[test]
    fn store_read_unwritten_fails() {
        let mut s = store();
        assert!(s.read(9).is_err());
    }

    #[test]
    fn store_tampered_page_rejected() {
        let mut s = store();
        s.write(2, b"secret").unwrap();
        let mut raw = s.raw_page(2).unwrap().clone();
        raw[8] ^= 0xff;
        s.set_raw_page(2, raw);
        assert!(matches!(s.read(2), Err(SgxError::IntegrityViolation { .. })));
    }

    #[test]
    fn store_replayed_page_rejected() {
        let mut s = store();
        s.write(3, b"old").unwrap();
        let old_raw = s.raw_page(3).unwrap().clone();
        s.write(3, b"new").unwrap();
        // Replay just the page bytes: version mismatch via AAD.
        s.set_raw_page(3, old_raw);
        assert!(s.read(3).is_err());
    }

    #[test]
    fn store_full_rollback_rejected() {
        let mut s = store();
        s.write(4, b"old").unwrap();
        let (pages, tree) = s.export_untrusted();
        s.write(4, b"new").unwrap();
        // Replay pages AND tree state: trusted root catches it.
        s.import_untrusted(pages, tree);
        assert!(s.read(4).is_err());
    }

    #[test]
    fn store_isolated_pages() {
        let mut s = store();
        s.write(100, b"a").unwrap();
        s.write(200, b"b").unwrap();
        assert_eq!(s.read(100).unwrap(), b"a");
        assert_eq!(s.read(200).unwrap(), b"b");
    }
}
