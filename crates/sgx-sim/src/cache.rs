//! Set-associative cache simulator with true-LRU replacement.
//!
//! Models the last-level cache of the evaluation machine. Addresses are
//! *logical* (issued by [`crate::mem::MemorySim`]'s bump allocator); only
//! tag/set behaviour is simulated, no data is stored.

use crate::costs::CacheConfig;

/// One cache way: the stored tag and its last-use timestamp.
#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    last_use: u64,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Line was present.
    Hit,
    /// Line was absent and has been filled (possibly evicting).
    Miss,
}

/// A single-level set-associative cache with LRU replacement.
///
/// ```
/// use sgx_sim::cache::{CacheSim, Access};
/// use sgx_sim::costs::CacheConfig;
///
/// let mut cache = CacheSim::new(CacheConfig { capacity: 4096, ways: 2, line_size: 64 });
/// assert_eq!(cache.access(0), Access::Miss);
/// assert_eq!(cache.access(0), Access::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct CacheSim {
    config: CacheConfig,
    sets: Vec<Way>,
    n_sets: usize,
    line_shift: u32,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let n_sets = config.sets();
        CacheSim {
            sets: vec![Way::default(); n_sets * config.ways],
            n_sets,
            line_shift: config.line_size.trailing_zeros(),
            tick: 0,
            hits: 0,
            misses: 0,
            config,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses the line containing byte address `addr`.
    pub fn access(&mut self, addr: u64) -> Access {
        self.tick += 1;
        let line = addr >> self.line_shift;
        let set = (line % self.n_sets as u64) as usize;
        let tag = line / self.n_sets as u64;
        let ways = &mut self.sets[set * self.config.ways..(set + 1) * self.config.ways];

        // Hit?
        for way in ways.iter_mut() {
            if way.valid && way.tag == tag {
                way.last_use = self.tick;
                self.hits += 1;
                return Access::Hit;
            }
        }
        // Miss: fill an invalid way, else evict LRU.
        self.misses += 1;
        let victim =
            ways.iter_mut().min_by_key(|w| if w.valid { w.last_use } else { 0 }).expect("ways > 0");
        victim.tag = tag;
        victim.valid = true;
        victim.last_use = self.tick;
        Access::Miss
    }

    /// Number of hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in `[0, 1]`; 0 if no accesses yet.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Resets hit/miss counters (contents stay).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Invalidates all contents and counters.
    pub fn flush(&mut self) {
        for w in &mut self.sets {
            w.valid = false;
        }
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 16 sets * 2 ways * 64B lines = 2 KiB.
        CacheSim::new(CacheConfig { capacity: 2048, ways: 2, line_size: 64 })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert_eq!(c.access(100), Access::Miss);
        assert_eq!(c.access(100), Access::Hit);
        assert_eq!(c.access(127), Access::Hit); // same line
        assert_eq!(c.access(128), Access::Miss); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = 16 sets * 64 B).
        let stride = 16 * 64u64;
        assert_eq!(c.access(0), Access::Miss);
        assert_eq!(c.access(stride), Access::Miss);
        // Touch line 0 so `stride` becomes LRU.
        assert_eq!(c.access(0), Access::Hit);
        // Third line evicts `stride`.
        assert_eq!(c.access(2 * stride), Access::Miss);
        assert_eq!(c.access(0), Access::Hit);
        assert_eq!(c.access(stride), Access::Miss); // was evicted
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let mut c = tiny();
        let lines = 2048 / 64;
        for i in 0..lines {
            c.access(i as u64 * 64);
        }
        c.reset_stats();
        for _ in 0..10 {
            for i in 0..lines {
                assert_eq!(c.access(i as u64 * 64), Access::Hit);
            }
        }
        assert_eq!(c.miss_rate(), 0.0);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = tiny();
        let lines = 4 * 2048 / 64; // 4x capacity
        for _ in 0..4 {
            for i in 0..lines {
                c.access(i as u64 * 64);
            }
        }
        // Sequential sweep over 4x capacity with LRU: everything misses.
        assert!(c.miss_rate() > 0.9, "rate {}", c.miss_rate());
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert_eq!(c.access(0), Access::Miss);
    }

    #[test]
    fn miss_rate_zero_when_untouched() {
        let c = tiny();
        assert_eq!(c.miss_rate(), 0.0);
    }

    #[test]
    fn default_llc_shape_matches_paper_machine() {
        let c = CacheSim::new(CacheConfig::default());
        assert_eq!(c.config().capacity, 8 * 1024 * 1024);
        assert_eq!(c.config().ways, 16);
    }
}
