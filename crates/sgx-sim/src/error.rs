//! Error type for simulated SGX operations.

use std::error::Error;
use std::fmt;

/// Errors raised by the SGX simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SgxError {
    /// Protected memory failed an integrity or freshness check. On real
    /// hardware this locks the memory controller; the simulator surfaces it
    /// as an error so tests can assert on it.
    IntegrityViolation {
        /// Which check failed.
        what: &'static str,
    },
    /// A report or quote failed verification.
    AttestationFailed {
        /// Which step rejected it.
        reason: &'static str,
    },
    /// Sealed data could not be unsealed (wrong enclave, tampering, or a
    /// rolled-back monotonic counter).
    UnsealFailed {
        /// Which check failed.
        reason: &'static str,
    },
    /// An operation was attempted in an invalid enclave state (e.g. an
    /// ECALL into an uninitialised enclave).
    InvalidState {
        /// What was expected.
        expected: &'static str,
    },
    /// A referenced platform resource does not exist.
    NotFound {
        /// What was looked up.
        what: &'static str,
    },
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgxError::IntegrityViolation { what } => {
                write!(f, "memory integrity violation: {what}")
            }
            SgxError::AttestationFailed { reason } => write!(f, "attestation failed: {reason}"),
            SgxError::UnsealFailed { reason } => write!(f, "unseal failed: {reason}"),
            SgxError::InvalidState { expected } => {
                write!(f, "invalid enclave state, expected {expected}")
            }
            SgxError::NotFound { what } => write!(f, "not found: {what}"),
        }
    }
}

impl Error for SgxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SgxError::IntegrityViolation { what: "page mac mismatch" };
        assert!(e.to_string().contains("page mac mismatch"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<SgxError>();
    }
}
