//! Attested broker-to-broker link sessions.
//!
//! The SCBR overlay (a Siena-style network of routing enclaves) needs a
//! way for two routers on *different* machines to convince each other that
//! the peer really is the expected routing code in a genuine enclave, and
//! to agree on a symmetric key protecting the link between them. This
//! module builds that on the primitives of [`crate::attest`]: a
//! three-message handshake of **mutual quotes** with a fresh RSA response
//! key bound into each side's report data, finishing with an HKDF-derived
//! 256-bit link key.
//!
//! ```text
//! initiator                                   responder
//!   [hello]  ── quote(bind pk_i), pk_i ──────▶  verify quote+policy
//!            ◀─ quote(bind pk_r), pk_r, ───── [accept]
//!               {secret_r}pk_i
//!  [finish]  ── {secret_i}pk_r ──────────────▶ [complete]
//!
//!   link key = HKDF(salt = mr_i ‖ mr_r,
//!                   ikm  = secret_i ‖ secret_r,
//!                   info = "scbr-overlay-link-v1")
//! ```
//!
//! Each side refuses to contribute its secret before the peer's quote has
//! passed the [`AttestationService`] *and* the caller's
//! [`VerifierPolicy`] — a router whose measurement differs (tampered
//! binary) or whose platform is untrusted (emulator) never obtains a link
//! key, so it can neither receive forwarded subscriptions nor inject
//! publications into the overlay.

use crate::attest::{create_report, provision, AttestationService, Quote, VerifierPolicy};
use crate::enclave::{Enclave, Measurement};
use crate::error::SgxError;
use crate::platform::SgxPlatform;
use scbr_crypto::rng::CryptoRng;
use scbr_crypto::rsa::{RsaKeyPair, RsaPublicKey};

/// Length of a derived link key in bytes.
pub const LINK_KEY_LEN: usize = 32;

/// Per-secret contribution length in bytes.
const SECRET_LEN: usize = 32;

/// HKDF info label pinning the protocol version.
const LINK_INFO: &[u8] = b"scbr-overlay-link-v1";

/// A symmetric key shared by the two enclaves at the ends of a link.
#[derive(Clone, PartialEq, Eq)]
pub struct LinkKey([u8; LINK_KEY_LEN]);

impl LinkKey {
    /// The raw key bytes (feed into an AEAD, e.g. a sealed link channel).
    pub fn as_bytes(&self) -> &[u8; LINK_KEY_LEN] {
        &self.0
    }
}

impl std::fmt::Debug for LinkKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "LinkKey(…)")
    }
}

/// First handshake message: a quote binding a fresh response key.
#[derive(Debug, Clone)]
pub struct LinkHello {
    /// Quote whose report data commits to `response_key`.
    pub quote: Quote,
    /// The fresh RSA key the peer should encrypt its secret to.
    pub response_key: RsaPublicKey,
}

impl LinkHello {
    /// Serialises for the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        let quote = self.quote.to_bytes();
        let key = self.response_key.to_bytes();
        let mut out = Vec::with_capacity(8 + quote.len() + key.len());
        out.extend_from_slice(&(quote.len() as u32).to_be_bytes());
        out.extend_from_slice(&quote);
        out.extend_from_slice(&(key.len() as u32).to_be_bytes());
        out.extend_from_slice(&key);
        out
    }

    /// Parses a hello serialised by [`LinkHello::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`SgxError::AttestationFailed`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let (quote_bytes, rest) = take_prefixed(bytes)?;
        let (key_bytes, rest) = take_prefixed(rest)?;
        if !rest.is_empty() {
            return Err(SgxError::AttestationFailed { reason: "link hello trailing bytes" });
        }
        let quote = Quote::from_bytes(quote_bytes)?;
        let response_key = RsaPublicKey::from_bytes(key_bytes)
            .map_err(|_| SgxError::AttestationFailed { reason: "malformed link response key" })?;
        Ok(LinkHello { quote, response_key })
    }
}

/// Second handshake message: the responder's hello plus its wrapped secret.
#[derive(Debug, Clone)]
pub struct LinkAccept {
    /// The responder's own quote and response key.
    pub hello: LinkHello,
    /// The responder's secret contribution, encrypted to the initiator's
    /// response key.
    pub wrapped_secret: Vec<u8>,
}

impl LinkAccept {
    /// Serialises for the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        let hello = self.hello.to_bytes();
        let mut out = Vec::with_capacity(8 + hello.len() + self.wrapped_secret.len());
        out.extend_from_slice(&(hello.len() as u32).to_be_bytes());
        out.extend_from_slice(&hello);
        out.extend_from_slice(&(self.wrapped_secret.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.wrapped_secret);
        out
    }

    /// Parses an accept serialised by [`LinkAccept::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`SgxError::AttestationFailed`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let (hello_bytes, rest) = take_prefixed(bytes)?;
        let (wrapped, rest) = take_prefixed(rest)?;
        if !rest.is_empty() {
            return Err(SgxError::AttestationFailed { reason: "link accept trailing bytes" });
        }
        Ok(LinkAccept {
            hello: LinkHello::from_bytes(hello_bytes)?,
            wrapped_secret: wrapped.to_vec(),
        })
    }
}

/// Third handshake message: the initiator's wrapped secret.
#[derive(Debug, Clone)]
pub struct LinkFinish {
    /// The initiator's secret contribution, encrypted to the responder's
    /// response key.
    pub wrapped_secret: Vec<u8>,
}

impl LinkFinish {
    /// Serialises for the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.wrapped_secret.len());
        out.extend_from_slice(&(self.wrapped_secret.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.wrapped_secret);
        out
    }

    /// Parses a finish serialised by [`LinkFinish::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`SgxError::AttestationFailed`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SgxError> {
        let (wrapped, rest) = take_prefixed(bytes)?;
        if !rest.is_empty() {
            return Err(SgxError::AttestationFailed { reason: "link finish trailing bytes" });
        }
        Ok(LinkFinish { wrapped_secret: wrapped.to_vec() })
    }
}

/// Splits a `u32`-length-prefixed blob off the front of `bytes`.
fn take_prefixed(bytes: &[u8]) -> Result<(&[u8], &[u8]), SgxError> {
    if bytes.len() < 4 {
        return Err(SgxError::AttestationFailed { reason: "truncated link message" });
    }
    let len = u32::from_be_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    let rest = &bytes[4..];
    if rest.len() < len {
        return Err(SgxError::AttestationFailed { reason: "truncated link message" });
    }
    Ok((&rest[..len], &rest[len..]))
}

/// Initiator-side handshake state between [`initiate`] and [`finish`]
/// (conceptually enclave-resident: it holds the response private key).
#[derive(Debug)]
pub struct LinkInitiator {
    pair: RsaKeyPair,
    mr_local: Measurement,
}

/// Responder-side handshake state between [`accept`] and [`complete`].
#[derive(Debug)]
pub struct LinkResponder {
    pair: RsaKeyPair,
    secret_local: [u8; SECRET_LEN],
    mr_initiator: Measurement,
    mr_local: Measurement,
}

/// Starts a link handshake: inside the enclave, generate a response key
/// pair and bind its public half into a quoted report.
///
/// # Errors
///
/// Propagates key-generation and quoting failures.
pub fn initiate(
    platform: &SgxPlatform,
    enclave: &Enclave,
    rng: &mut CryptoRng,
) -> Result<(LinkHello, LinkInitiator), SgxError> {
    let (report, pair) = enclave.ecall(|ctx| {
        let pair = RsaKeyPair::generate(512, rng)
            .map_err(|_| SgxError::AttestationFailed { reason: "link key generation failed" })?;
        let report = create_report(ctx, provision::bind_key(pair.public()));
        Ok::<_, SgxError>((report, pair))
    })?;
    let quote = platform.quote(&report)?;
    let hello = LinkHello { quote, response_key: pair.public().clone() };
    let initiator = LinkInitiator { pair, mr_local: enclave.identity().mr_enclave };
    Ok((hello, initiator))
}

/// Responder side: verify the initiator's quote against `service` and
/// `policy`, then answer with an own quoted hello plus a wrapped secret
/// contribution.
///
/// # Errors
///
/// Any attestation failure, policy violation or binding mismatch refuses
/// the link before any secret material is produced.
pub fn accept(
    platform: &SgxPlatform,
    enclave: &Enclave,
    service: &AttestationService,
    policy: &VerifierPolicy,
    peer: &LinkHello,
    rng: &mut CryptoRng,
) -> Result<(LinkAccept, LinkResponder), SgxError> {
    let (mr_initiator, report, pair, secret, wrapped) = enclave.ecall(|ctx| {
        let identity = verify_hello(service, policy, peer)?;
        let pair = RsaKeyPair::generate(512, rng)
            .map_err(|_| SgxError::AttestationFailed { reason: "link key generation failed" })?;
        let mut secret = [0u8; SECRET_LEN];
        rng.fill(&mut secret);
        let wrapped = peer
            .response_key
            .encrypt(&secret, rng)
            .map_err(|_| SgxError::AttestationFailed { reason: "link secret wrap failed" })?;
        let report = create_report(ctx, provision::bind_key(pair.public()));
        Ok::<_, SgxError>((identity, report, pair, secret, wrapped))
    })?;
    let quote = platform.quote(&report)?;
    let accept = LinkAccept {
        hello: LinkHello { quote, response_key: pair.public().clone() },
        wrapped_secret: wrapped,
    };
    let responder = LinkResponder {
        pair,
        secret_local: secret,
        mr_initiator,
        mr_local: enclave.identity().mr_enclave,
    };
    Ok((accept, responder))
}

/// Initiator side: verify the responder's quote, unwrap its secret,
/// contribute an own secret, and derive the link key.
///
/// # Errors
///
/// Any attestation failure, policy violation, binding mismatch or unwrap
/// failure aborts the handshake.
pub fn finish(
    initiator: LinkInitiator,
    peer: &LinkAccept,
    service: &AttestationService,
    policy: &VerifierPolicy,
    enclave: &Enclave,
    rng: &mut CryptoRng,
) -> Result<(LinkFinish, LinkKey), SgxError> {
    enclave.ecall(|_ctx| {
        let mr_responder = verify_hello(service, policy, &peer.hello)?;
        let secret_peer = initiator
            .pair
            .private()
            .decrypt(&peer.wrapped_secret)
            .map_err(|_| SgxError::AttestationFailed { reason: "link secret unwrap failed" })?;
        let mut secret_local = [0u8; SECRET_LEN];
        rng.fill(&mut secret_local);
        let wrapped = peer
            .hello
            .response_key
            .encrypt(&secret_local, rng)
            .map_err(|_| SgxError::AttestationFailed { reason: "link secret wrap failed" })?;
        let key = derive_key(initiator.mr_local, mr_responder, &secret_local, &secret_peer);
        Ok((LinkFinish { wrapped_secret: wrapped }, key))
    })
}

/// Responder side: unwrap the initiator's secret and derive the same link
/// key as [`finish`].
///
/// # Errors
///
/// [`SgxError::AttestationFailed`] if the wrapped secret does not unwrap
/// under the responder's response key.
pub fn complete(
    responder: LinkResponder,
    finish: &LinkFinish,
    enclave: &Enclave,
) -> Result<LinkKey, SgxError> {
    enclave.ecall(|_ctx| {
        let secret_peer = responder
            .pair
            .private()
            .decrypt(&finish.wrapped_secret)
            .map_err(|_| SgxError::AttestationFailed { reason: "link secret unwrap failed" })?;
        Ok(derive_key(
            responder.mr_initiator,
            responder.mr_local,
            &secret_peer,
            &responder.secret_local,
        ))
    })
}

/// Checks a hello's quote, identity policy and key binding, returning the
/// attested measurement.
fn verify_hello(
    service: &AttestationService,
    policy: &VerifierPolicy,
    hello: &LinkHello,
) -> Result<Measurement, SgxError> {
    let (identity, report_data) = service.verify(&hello.quote)?;
    policy.check(&identity)?;
    if report_data != provision::bind_key(&hello.response_key) {
        return Err(SgxError::AttestationFailed { reason: "link response key not bound in quote" });
    }
    Ok(identity.mr_enclave)
}

/// Both ends derive the same key from the ordered measurements and the
/// ordered secret contributions (initiator first).
fn derive_key(
    mr_initiator: Measurement,
    mr_responder: Measurement,
    secret_initiator: &[u8],
    secret_responder: &[u8],
) -> LinkKey {
    let mut salt = Vec::with_capacity(64);
    salt.extend_from_slice(&mr_initiator);
    salt.extend_from_slice(&mr_responder);
    let mut ikm = Vec::with_capacity(secret_initiator.len() + secret_responder.len());
    ikm.extend_from_slice(secret_initiator);
    ikm.extend_from_slice(secret_responder);
    let mut key = [0u8; LINK_KEY_LEN];
    scbr_crypto::hkdf::derive(&salt, &ikm, LINK_INFO, &mut key);
    LinkKey(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::EnclaveBuilder;

    const ROUTER_CODE: &[u8] = b"scbr overlay router v1";

    fn router(platform: &SgxPlatform) -> Enclave {
        platform.launch(EnclaveBuilder::new("scbr-router").add_page(ROUTER_CODE)).unwrap()
    }

    fn trust_both(a: &SgxPlatform, b: &SgxPlatform) -> AttestationService {
        let mut service = AttestationService::new();
        service.trust_platform(a.attestation_public_key().clone());
        service.trust_platform(b.attestation_public_key().clone());
        service
    }

    /// Runs the whole handshake between two enclaves, returning both keys.
    fn handshake(
        pa: &SgxPlatform,
        ea: &Enclave,
        pb: &SgxPlatform,
        eb: &Enclave,
        service: &AttestationService,
        policy: &VerifierPolicy,
        seed: u64,
    ) -> Result<(LinkKey, LinkKey), SgxError> {
        let mut rng_a = CryptoRng::from_seed(seed);
        let mut rng_b = CryptoRng::from_seed(seed + 1);
        let (hello, st_a) = initiate(pa, ea, &mut rng_a)?;
        // Everything travels as bytes, as it would over a real link.
        let hello = LinkHello::from_bytes(&hello.to_bytes())?;
        let (accept_msg, st_b) = accept(pb, eb, service, policy, &hello, &mut rng_b)?;
        let accept_msg = LinkAccept::from_bytes(&accept_msg.to_bytes())?;
        let (finish_msg, key_a) = finish(st_a, &accept_msg, service, policy, ea, &mut rng_a)?;
        let finish_msg = LinkFinish::from_bytes(&finish_msg.to_bytes())?;
        let key_b = complete(st_b, &finish_msg, eb)?;
        Ok((key_a, key_b))
    }

    #[test]
    fn both_ends_derive_the_same_key() {
        let pa = SgxPlatform::for_testing(1);
        let pb = SgxPlatform::for_testing(2);
        let (ea, eb) = (router(&pa), router(&pb));
        let service = trust_both(&pa, &pb);
        let policy = VerifierPolicy::require_mr_enclave(ea.identity().mr_enclave);
        let (key_a, key_b) = handshake(&pa, &ea, &pb, &eb, &service, &policy, 100).unwrap();
        assert_eq!(key_a, key_b);
        assert_ne!(key_a.as_bytes(), &[0u8; LINK_KEY_LEN]);
    }

    #[test]
    fn distinct_links_get_distinct_keys() {
        let pa = SgxPlatform::for_testing(3);
        let pb = SgxPlatform::for_testing(4);
        let (ea, eb) = (router(&pa), router(&pb));
        let service = trust_both(&pa, &pb);
        let policy = VerifierPolicy::require_mr_enclave(ea.identity().mr_enclave);
        let (k1, _) = handshake(&pa, &ea, &pb, &eb, &service, &policy, 100).unwrap();
        let (k2, _) = handshake(&pa, &ea, &pb, &eb, &service, &policy, 300).unwrap();
        assert_ne!(k1, k2, "fresh secrets per handshake");
    }

    #[test]
    fn tampered_measurement_is_refused_by_responder() {
        let pa = SgxPlatform::for_testing(5);
        let pb = SgxPlatform::for_testing(6);
        let rogue =
            pa.launch(EnclaveBuilder::new("scbr-router").add_page(b"router + backdoor")).unwrap();
        let eb = router(&pb);
        let service = trust_both(&pa, &pb);
        let policy = VerifierPolicy::require_mr_enclave(eb.identity().mr_enclave);
        let mut rng = CryptoRng::from_seed(7);
        let (hello, _st) = initiate(&pa, &rogue, &mut rng).unwrap();
        let result = accept(&pb, &eb, &service, &policy, &hello, &mut rng);
        assert!(matches!(
            result,
            Err(SgxError::AttestationFailed { reason: "unexpected mrenclave" })
        ));
    }

    #[test]
    fn untrusted_platform_is_refused() {
        let pa = SgxPlatform::for_testing(8);
        let emulator = SgxPlatform::for_testing(9);
        let ea = router(&pa);
        let on_emulator = router(&emulator);
        // Only pa's platform is trusted.
        let mut service = AttestationService::new();
        service.trust_platform(pa.attestation_public_key().clone());
        let policy = VerifierPolicy::require_mr_enclave(ea.identity().mr_enclave);
        let mut rng = CryptoRng::from_seed(10);
        let (hello, _st) = initiate(&emulator, &on_emulator, &mut rng).unwrap();
        assert!(accept(&pa, &ea, &service, &policy, &hello, &mut rng).is_err());
    }

    #[test]
    fn initiator_verifies_responder_too() {
        let pa = SgxPlatform::for_testing(11);
        let pb = SgxPlatform::for_testing(12);
        let ea = router(&pa);
        let rogue =
            pb.launch(EnclaveBuilder::new("scbr-router").add_page(b"router + backdoor")).unwrap();
        let service = trust_both(&pa, &pb);
        let policy = VerifierPolicy::require_mr_enclave(ea.identity().mr_enclave);
        let mut rng_a = CryptoRng::from_seed(13);
        let mut rng_b = CryptoRng::from_seed(14);
        let (hello, st_a) = initiate(&pa, &ea, &mut rng_a).unwrap();
        // The rogue responder skips its own policy check and answers anyway.
        let lax = VerifierPolicy::require_mr_enclave(ea.identity().mr_enclave);
        let (accept_msg, _st_b) = accept(&pb, &rogue, &service, &lax, &hello, &mut rng_b).unwrap();
        assert!(finish(st_a, &accept_msg, &service, &policy, &ea, &mut rng_a).is_err());
    }

    #[test]
    fn substituted_response_key_is_refused() {
        let pa = SgxPlatform::for_testing(15);
        let pb = SgxPlatform::for_testing(16);
        let (ea, eb) = (router(&pa), router(&pb));
        let service = trust_both(&pa, &pb);
        let policy = VerifierPolicy::require_mr_enclave(ea.identity().mr_enclave);
        let mut rng = CryptoRng::from_seed(17);
        let (mut hello, _st) = initiate(&pa, &ea, &mut rng).unwrap();
        // A man in the middle swaps in their own response key.
        let mitm = RsaKeyPair::generate(512, &mut rng).unwrap();
        hello.response_key = mitm.public().clone();
        assert!(matches!(
            accept(&pb, &eb, &service, &policy, &hello, &mut rng),
            Err(SgxError::AttestationFailed { reason: "link response key not bound in quote" })
        ));
    }

    #[test]
    fn handshake_charges_enclave_crossings() {
        let pa = SgxPlatform::for_testing(18);
        let pb = SgxPlatform::for_testing(19);
        let (ea, eb) = (router(&pa), router(&pb));
        let service = trust_both(&pa, &pb);
        let policy = VerifierPolicy::require_mr_enclave(ea.identity().mr_enclave);
        handshake(&pa, &ea, &pb, &eb, &service, &policy, 100).unwrap();
        // initiate + finish on one side, accept + complete on the other.
        assert_eq!(ea.memory().stats().ecalls, 2);
        assert_eq!(eb.memory().stats().ecalls, 2);
    }

    #[test]
    fn wire_forms_reject_garbage() {
        assert!(LinkHello::from_bytes(b"nope").is_err());
        assert!(LinkAccept::from_bytes(&[0, 0, 0, 9, 1]).is_err());
        assert!(LinkFinish::from_bytes(&[0, 0, 0, 1, 7, 8]).is_err());
    }
}
