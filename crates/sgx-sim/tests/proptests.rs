//! Property-based tests for the SGX simulator's core invariants.

use proptest::prelude::*;
use scbr_crypto::ctr::SymmetricKey;
use scbr_crypto::rng::CryptoRng;
use sgx_sim::cache::CacheSim;
use sgx_sim::costs::{CacheConfig, CostModel, EpcConfig};
use sgx_sim::epc::Epc;
use sgx_sim::mee::{CounterTree, ProtectedStore};
use sgx_sim::mem::{MemorySim, SimArena};

proptest! {
    /// Hits + misses always equals the number of accesses, and residency in
    /// a cache never exceeds capacity (modelled indirectly: a second pass
    /// over a working set that fits must be all hits).
    #[test]
    fn cache_accounting_is_consistent(addrs in proptest::collection::vec(0u64..1_000_000, 1..500)) {
        let mut cache = CacheSim::new(CacheConfig { capacity: 16 * 1024, ways: 4, line_size: 64 });
        for &a in &addrs {
            cache.access(a);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
        prop_assert!(cache.miss_rate() <= 1.0);
    }

    /// A working set that fits the cache has zero misses after warmup,
    /// regardless of the access pattern order.
    #[test]
    fn cache_fitting_working_set_all_hits(mut lines in proptest::collection::vec(0u64..32, 10..100)) {
        let mut cache = CacheSim::new(CacheConfig { capacity: 4096, ways: 4, line_size: 64 });
        // Warm every line.
        for l in 0..32u64 {
            cache.access(l * 64);
        }
        cache.reset_stats();
        lines.sort_unstable();
        for &l in &lines {
            cache.access(l * 64);
        }
        prop_assert_eq!(cache.misses(), 0);
    }

    /// The EPC never reports more resident pages than its capacity, and
    /// faults = admissions + swaps.
    #[test]
    fn epc_invariants(pages in proptest::collection::vec(0u64..64, 1..400), cap in 1usize..32) {
        let mut epc = Epc::new(cap);
        for &p in &pages {
            epc.touch(p);
        }
        prop_assert!(epc.resident_pages() <= cap);
        prop_assert_eq!(epc.faults(), epc.admissions() + epc.swaps());
        // Each distinct page is admitted exactly once.
        let distinct: std::collections::HashSet<_> = pages.iter().collect();
        prop_assert_eq!(epc.admissions(), distinct.len() as u64);
    }

    /// Counter-tree versions count bumps exactly, for arbitrary interleaved
    /// blocks, and always verify when untampered.
    #[test]
    fn counter_tree_versions_count_bumps(ops in proptest::collection::vec(0u64..512, 1..200)) {
        let mut tree = CounterTree::new(512, [9u8; 32]);
        let mut expected = std::collections::HashMap::new();
        for &b in &ops {
            let v = tree.bump(b).unwrap();
            let e = expected.entry(b).or_insert(0u64);
            *e += 1;
            prop_assert_eq!(v, *e);
        }
        for (&b, &v) in &expected {
            prop_assert_eq!(tree.version(b).unwrap(), v);
        }
    }

    /// Protected store round-trips arbitrary page contents and any
    /// single-byte corruption of the stored blob is detected.
    #[test]
    fn protected_store_detects_any_corruption(data in proptest::collection::vec(any::<u8>(), 1..128),
                                              page in 0u64..1024, flip in 0usize..1024) {
        let mut rng = CryptoRng::from_seed(3);
        let key = SymmetricKey::generate(&mut rng);
        let mut store = ProtectedStore::new(1024, &key, rng);
        store.write(page, &data).unwrap();
        prop_assert_eq!(store.read(page).unwrap(), data);
        let mut raw = store.raw_page(page).unwrap().clone();
        let idx = flip % raw.len();
        raw[idx] ^= 1;
        store.set_raw_page(page, raw);
        prop_assert!(store.read(page).is_err());
    }

    /// Virtual time is monotone non-decreasing under any access sequence,
    /// and enclave memory is never cheaper than native for the same trace.
    #[test]
    fn enclave_never_cheaper_than_native(offsets in proptest::collection::vec(0u64..256 * 1024, 1..300)) {
        let cache = CacheConfig { capacity: 8 * 1024, ways: 4, line_size: 64 };
        let native = MemorySim::native(cache, CostModel::default());
        let enclave = MemorySim::enclave(
            cache,
            EpcConfig { total_bytes: 64 * 4096, usable_bytes: 16 * 4096, page_size: 4096 },
            CostModel::default(),
        );
        let base_n = native.alloc(256 * 1024);
        let base_e = enclave.alloc(256 * 1024);
        let mut last_n = 0.0f64;
        for &off in &offsets {
            native.touch_read(base_n + off, 8);
            enclave.touch_read(base_e + off, 8);
            let now = native.elapsed_ns();
            prop_assert!(now >= last_n);
            last_n = now;
        }
        prop_assert!(enclave.elapsed_ns() >= native.elapsed_ns());
    }

    /// Arena addresses are injective across any push sequence.
    #[test]
    fn arena_addresses_injective(count in 1u32..3000, stride in 1u64..512) {
        let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
        let mut arena: SimArena<u32> = SimArena::with_stride(&mem, stride);
        let mut seen = std::collections::HashSet::new();
        for i in 0..count {
            let idx = arena.push(i);
            prop_assert!(seen.insert(arena.addr_of(idx)));
        }
    }
}
