//! The router role: hosts the matching engine (ideally inside an enclave)
//! on untrusted infrastructure.
//!
//! The router never sees plaintext subscriptions or headers — decryption
//! happens in [`crate::engine::MatchingEngine`] behind the enclave call
//! gate. What the untrusted router code *does* see, by design (§3.3), is
//! the client identity attached to each delivery so it can maintain
//! delivery channels.
//!
//! ## Batch-first event loop
//!
//! The loop treats **batches as the unit of work**. When a publication
//! arrives it opportunistically drains whatever other publications are
//! already queued on the event channel (stopping at the first non-publish
//! event so message order is preserved), flattens
//! [`Message::PublishBatch`] frames into the same batch, and matches it
//! in [`MAX_DRAIN`]-bounded **single enclave crossings**
//! ([`RouterEngine::match_batch_each`]) — at most one publication-free
//! wakeup per crossing, never more than `MAX_DRAIN` publications pinned
//! by one ECALL, even when a single wire frame carries more. Under light
//! load the batch degenerates to one message and behaves exactly like the
//! classic per-message loop; under heavy load the EENTER/EEXIT cost is
//! amortised across everything the producers managed to queue — the
//! paper's "message batching" future-work optimisation.

use crate::engine::RouterEngine;
use crate::error::ScbrError;
use crate::ids::{ClientId, KeyEpoch};
use crate::protocol::messages::{Message, PublishItem};
use crate::roles::{pump_listener, send_best_effort, ConnEvent};
use crossbeam::channel::unbounded;
use scbr_net::{Connection, Listener};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Maximum publications matched per enclave crossing by the drain loop.
/// Bounds both delivery latency under saturation and the working set a
/// single ECALL pins inside the enclave.
pub const MAX_DRAIN: usize = 128;

/// Delivery metadata for one drained publication (its header travels
/// separately, in the batch handed to the engine).
struct PendingPublish {
    /// Connection the publication arrived on (error replies go here).
    conn: u64,
    epoch: KeyEpoch,
    payload_ct: Vec<u8>,
}

/// A running router node.
#[derive(Debug)]
pub struct Router {
    handle: Option<JoinHandle<RouterEngine>>,
}

impl Router {
    /// Starts the router's event loop on `listener`, serving `engine`.
    ///
    /// The engine should already be provisioned with keys (see
    /// [`crate::protocol::keys::provision_sk_via_attestation`]).
    pub fn spawn(listener: Box<dyn Listener>, engine: RouterEngine) -> Router {
        let (events_tx, events_rx) = unbounded();
        let accepted = pump_listener(listener, events_tx, 0);
        let handle = std::thread::spawn(move || {
            let mut engine = engine;
            let mut conns: HashMap<u64, Arc<dyn Connection>> = HashMap::new();
            let mut delivery: HashMap<ClientId, u64> = HashMap::new();
            // An event pulled off the channel while draining a publication
            // batch; processed before blocking on the channel again.
            let mut stashed: Option<ConnEvent> = None;
            loop {
                // Collect any newly accepted connections.
                while let Ok((id, conn)) = accepted.try_recv() {
                    conns.insert(id, conn);
                }
                let event = match stashed.take() {
                    Some(event) => event,
                    None => {
                        let Ok(event) = events_rx.recv() else { break };
                        event
                    }
                };
                match event {
                    ConnEvent::Gone { conn } => {
                        conns.remove(&conn);
                        delivery.retain(|_, c| *c != conn);
                    }
                    ConnEvent::Msg { conn, message } => {
                        // The connection may have been accepted after its
                        // first frame was pumped.
                        while let Ok((id, c)) = accepted.try_recv() {
                            conns.insert(id, c);
                        }
                        match message {
                            Message::Hello { client } => {
                                delivery.insert(client, conn);
                            }
                            Message::Register { envelope } => {
                                let result = engine.call(|e| e.register_envelope(&envelope));
                                if let Some(c) = conns.get(&conn) {
                                    let reply = match result {
                                        Ok(id) => Message::RegisterAck { id },
                                        Err(e) => Message::Error { message: e.to_string() },
                                    };
                                    send_best_effort(c.as_ref(), &reply);
                                }
                            }
                            Message::Unregister { envelope } => {
                                // Removal is idempotent at the engine: an
                                // already-gone id still acks (the producer
                                // retired it either way); only broken
                                // envelopes error.
                                let result = engine.call(|e| e.unregister_envelope(&envelope));
                                if let Some(c) = conns.get(&conn) {
                                    let reply = match result {
                                        Ok((id, _, _)) => Message::UnregisterAck { id },
                                        Err(e) => Message::Error { message: e.to_string() },
                                    };
                                    send_best_effort(c.as_ref(), &reply);
                                }
                            }
                            message @ (Message::Publish { .. } | Message::PublishBatch { .. }) => {
                                // Drain the channel into one batch, then
                                // match it in MAX_DRAIN-bounded enclave
                                // crossings.
                                let mut headers: Vec<Vec<u8>> = Vec::new();
                                let mut pending: Vec<PendingPublish> = Vec::new();
                                collect_publishes(&mut headers, &mut pending, conn, message);
                                while headers.len() < MAX_DRAIN {
                                    match events_rx.try_recv() {
                                        Ok(ConnEvent::Msg {
                                            conn: c,
                                            message:
                                                m @ (Message::Publish { .. }
                                                | Message::PublishBatch { .. }),
                                        }) => collect_publishes(&mut headers, &mut pending, c, m),
                                        Ok(other) => {
                                            stashed = Some(other);
                                            break;
                                        }
                                        Err(_) => break,
                                    }
                                }
                                // A single wire frame may exceed MAX_DRAIN
                                // (the net layer allows up to 65 536
                                // members): chunking re-imposes the
                                // per-crossing bound, and an empty frame
                                // yields no chunks — no wasted crossing.
                                for (chunk, info) in
                                    headers.chunks(MAX_DRAIN).zip(pending.chunks(MAX_DRAIN))
                                {
                                    let outcomes = engine.match_batch_each(chunk);
                                    for (publish, outcome) in info.iter().zip(outcomes) {
                                        dispatch_outcome(publish, outcome, &conns, &delivery);
                                    }
                                }
                            }
                            Message::Shutdown => {
                                // Surface the transition counters the
                                // batch-first loop exists to amortise.
                                let stats = engine.stats();
                                eprintln!(
                                    "router: shutdown after {} enclave crossings \
                                     ({} ocalls, {:.0} virtual ns)",
                                    stats.ecalls, stats.ocalls, stats.elapsed_ns
                                );
                                break;
                            }
                            other => {
                                if let Some(c) = conns.get(&conn) {
                                    send_best_effort(
                                        c.as_ref(),
                                        &Message::Error {
                                            message: format!("unexpected {}", other.kind()),
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
            }
            engine
        });
        Router { handle: Some(handle) }
    }

    /// Waits for the router loop to exit (after a `Shutdown` message),
    /// returning the engine for inspection.
    ///
    /// # Errors
    ///
    /// [`ScbrError::NotFound`] if already joined or the thread panicked.
    pub fn join(mut self) -> Result<RouterEngine, ScbrError> {
        self.handle
            .take()
            .ok_or(ScbrError::NotFound { what: "router thread" })?
            .join()
            .map_err(|_| ScbrError::NotFound { what: "router thread (panicked)" })
    }
}

/// Appends the publication(s) in `message` to the in-flight batch.
fn collect_publishes(
    headers: &mut Vec<Vec<u8>>,
    pending: &mut Vec<PendingPublish>,
    conn: u64,
    message: Message,
) {
    match message {
        Message::Publish { header_ct, epoch, payload_ct } => {
            headers.push(header_ct);
            pending.push(PendingPublish { conn, epoch, payload_ct });
        }
        Message::PublishBatch { items } => {
            for PublishItem { header_ct, epoch, payload_ct } in items {
                headers.push(header_ct);
                pending.push(PendingPublish { conn, epoch, payload_ct });
            }
        }
        _ => unreachable!("only publish traffic is collected"),
    }
}

/// Delivers one matched publication (or reports its failure to the
/// publishing connection).
fn dispatch_outcome(
    publish: &PendingPublish,
    outcome: Result<Vec<ClientId>, ScbrError>,
    conns: &HashMap<u64, Arc<dyn Connection>>,
    delivery: &HashMap<ClientId, u64>,
) {
    match outcome {
        Ok(clients) => {
            let msg =
                Message::Deliver { epoch: publish.epoch, payload_ct: publish.payload_ct.clone() };
            for client in clients {
                if let Some(conn_id) = delivery.get(&client) {
                    if let Some(c) = conns.get(conn_id) {
                        send_best_effort(c.as_ref(), &msg);
                    }
                }
            }
        }
        Err(e) => {
            if let Some(c) = conns.get(&publish.conn) {
                send_best_effort(c.as_ref(), &Message::Error { message: e.to_string() });
            }
        }
    }
}
