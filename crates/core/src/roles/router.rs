//! The router role: hosts the matching engine (ideally inside an enclave)
//! on untrusted infrastructure.
//!
//! The router never sees plaintext subscriptions or headers — decryption
//! happens in [`crate::engine::MatchingEngine`] behind the enclave call
//! gate. What the untrusted router code *does* see, by design (§3.3), is
//! the client identity attached to each delivery so it can maintain
//! delivery channels.

use crate::engine::RouterEngine;
use crate::error::ScbrError;
use crate::ids::ClientId;
use crate::protocol::messages::Message;
use crate::roles::{pump_listener, send_best_effort, ConnEvent};
use crossbeam::channel::unbounded;
use scbr_net::{Connection, Listener};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running router node.
#[derive(Debug)]
pub struct Router {
    handle: Option<JoinHandle<RouterEngine>>,
}

impl Router {
    /// Starts the router's event loop on `listener`, serving `engine`.
    ///
    /// The engine should already be provisioned with keys (see
    /// [`crate::protocol::keys::provision_sk_via_attestation`]).
    pub fn spawn(listener: Box<dyn Listener>, engine: RouterEngine) -> Router {
        let (events_tx, events_rx) = unbounded();
        let accepted = pump_listener(listener, events_tx, 0);
        let handle = std::thread::spawn(move || {
            let mut engine = engine;
            let mut conns: HashMap<u64, Arc<dyn Connection>> = HashMap::new();
            let mut delivery: HashMap<ClientId, u64> = HashMap::new();
            loop {
                // Collect any newly accepted connections.
                while let Ok((id, conn)) = accepted.try_recv() {
                    conns.insert(id, conn);
                }
                let Ok(event) = events_rx.recv() else { break };
                match event {
                    ConnEvent::Gone { conn } => {
                        conns.remove(&conn);
                        delivery.retain(|_, c| *c != conn);
                    }
                    ConnEvent::Msg { conn, message } => {
                        // The connection may have been accepted after its
                        // first frame was pumped.
                        while let Ok((id, c)) = accepted.try_recv() {
                            conns.insert(id, c);
                        }
                        match message {
                            Message::Hello { client } => {
                                delivery.insert(client, conn);
                            }
                            Message::Register { envelope } => {
                                let result =
                                    engine.call(|e| e.register_envelope(&envelope));
                                if let Some(c) = conns.get(&conn) {
                                    let reply = match result {
                                        Ok(id) => Message::RegisterAck { id },
                                        Err(e) => Message::Error { message: e.to_string() },
                                    };
                                    send_best_effort(c.as_ref(), &reply);
                                }
                            }
                            Message::Publish { header_ct, epoch, payload_ct } => {
                                match engine.call(|e| e.match_encrypted(&header_ct)) {
                                    Ok(clients) => {
                                        let msg = Message::Deliver {
                                            epoch,
                                            payload_ct: payload_ct.clone(),
                                        };
                                        for client in clients {
                                            if let Some(conn_id) = delivery.get(&client) {
                                                if let Some(c) = conns.get(conn_id) {
                                                    send_best_effort(c.as_ref(), &msg);
                                                }
                                            }
                                        }
                                    }
                                    Err(e) => {
                                        if let Some(c) = conns.get(&conn) {
                                            send_best_effort(
                                                c.as_ref(),
                                                &Message::Error { message: e.to_string() },
                                            );
                                        }
                                    }
                                }
                            }
                            Message::Shutdown => break,
                            other => {
                                if let Some(c) = conns.get(&conn) {
                                    send_best_effort(
                                        c.as_ref(),
                                        &Message::Error {
                                            message: format!("unexpected {}", other.kind()),
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
            }
            engine
        });
        Router { handle: Some(handle) }
    }

    /// Waits for the router loop to exit (after a `Shutdown` message),
    /// returning the engine for inspection.
    ///
    /// # Errors
    ///
    /// [`ScbrError::NotFound`] if already joined or the thread panicked.
    pub fn join(mut self) -> Result<RouterEngine, ScbrError> {
        self.handle
            .take()
            .ok_or(ScbrError::NotFound { what: "router thread" })?
            .join()
            .map_err(|_| ScbrError::NotFound { what: "router thread (panicked)" })
    }
}
