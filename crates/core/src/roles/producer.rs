//! The producer role: owns the data, the keys and the clients.
//!
//! The producer (service provider) is trusted by clients. It admits
//! clients, validates and re-encrypts their subscriptions (protocol step
//! 2), publishes encrypted quotes, and rotates the payload group key as
//! membership changes.

use crate::error::ScbrError;
use crate::ids::ClientId;
use crate::ids::SubscriptionId;
use crate::protocol::admission::ClientDirectory;
use crate::protocol::group::GroupKeyManager;
use crate::protocol::keys::{unsubscribe_signing_bytes, ProducerCrypto};
use crate::protocol::messages::{Message, PublishItem};
use crate::publication::PublicationSpec;
use crate::roles::ConnEvent;
use crate::roles::{pump_connection, pump_listener, send_best_effort};
use crossbeam::channel::{unbounded, Sender};
use scbr_crypto::rng::CryptoRng;
use scbr_crypto::rsa::RsaPublicKey;
use scbr_net::{Connection, Listener};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Operator commands accepted by a running [`Producer`].
#[derive(Debug)]
pub enum ProducerCommand {
    /// Admit a client (adds it to the payload group and pushes the current
    /// group key if the client is connected).
    Admit {
        /// The client to admit.
        client: ClientId,
        /// The client's public key.
        public_key: RsaPublicKey,
    },
    /// Suspend a client (subscriptions refused until reactivated).
    Suspend(ClientId),
    /// Revoke a client: removed from the group, key rotated, fresh key
    /// pushed to remaining members.
    Revoke(ClientId),
    /// Rotate the group key without membership change.
    Rekey,
    /// Publish a quote: header encrypted under SK, payload under the group
    /// key.
    Publish(PublicationSpec),
    /// Publish a whole batch of quotes as one wire frame
    /// ([`Message::PublishBatch`]): the router matches the batch through a
    /// single enclave crossing, amortising the call-gate cost.
    PublishBatch(Vec<PublicationSpec>),
    /// Stop the event loop.
    Shutdown,
}

/// Which kind of router request a queued ack slot belongs to (router
/// replies are FIFO over one connection, but ack and error shapes differ
/// per kind).
#[derive(Debug, Clone, Copy)]
enum PendingKind {
    Register,
    Unregister,
}

/// Control handle to a running producer.
#[derive(Debug, Clone)]
pub struct ProducerHandle {
    tx: Sender<ProducerCommand>,
}

impl ProducerHandle {
    /// Sends a command; returns whether the producer is still running.
    pub fn send(&self, cmd: ProducerCommand) -> bool {
        self.tx.send(cmd).is_ok()
    }
}

/// A running producer node.
#[derive(Debug)]
pub struct Producer {
    handle: Option<JoinHandle<()>>,
    control: ProducerHandle,
}

impl Producer {
    /// Starts the producer loop.
    ///
    /// * `listener` — endpoint clients connect to (submissions + key
    ///   updates).
    /// * `router` — established connection to the router.
    /// * `crypto` — the producer's key material (`PK`, `SK`).
    pub fn spawn(
        listener: Box<dyn Listener>,
        router: Box<dyn Connection>,
        crypto: ProducerCrypto,
        rng: CryptoRng,
    ) -> Producer {
        let (control_tx, control_rx) = unbounded();
        let (events_tx, events_rx) = unbounded();
        const ROUTER_CONN: u64 = 0;
        let router: Arc<dyn Connection> = Arc::from(router);
        pump_connection(ROUTER_CONN, router.clone(), events_tx.clone());
        let accepted = pump_listener(listener, events_tx, 1);

        let handle = std::thread::spawn(move || {
            let mut rng = rng;
            let mut directory = ClientDirectory::new();
            let mut group = GroupKeyManager::new(&mut rng);
            let mut conns: HashMap<u64, Arc<dyn Connection>> = HashMap::new();
            let mut client_conns: HashMap<ClientId, u64> = HashMap::new();
            // Requests in flight to the router, oldest first. One queue
            // for both kinds: the router processes its connection in FIFO
            // order and replies (ack *or* error) once per request, so the
            // front entry always tells us which client — and which kind of
            // request — the next router reply belongs to.
            let mut pending_acks: Vec<(u64, PendingKind)> = Vec::new();

            loop {
                crossbeam::channel::select! {
                    recv(control_rx) -> cmd => {
                        let Ok(cmd) = cmd else { break };
                        match cmd {
                            ProducerCommand::Admit { client, public_key } => {
                                directory.admit(client, public_key.clone());
                                group.add_member(client, public_key);
                                // Push the current key if connected.
                                if let Ok(updates) = group.key_updates(&mut rng) {
                                    push_key_updates(&updates, &client_conns, &conns, &[client]);
                                }
                            }
                            ProducerCommand::Suspend(c) => {
                                let _ = directory.suspend(c);
                            }
                            ProducerCommand::Revoke(c) => {
                                let _ = directory.revoke(c);
                                group.remove_member(c);
                                group.rekey(&mut rng);
                                if let Ok(updates) = group.key_updates(&mut rng) {
                                    let members = group.members();
                                    push_key_updates(&updates, &client_conns, &conns, &members);
                                }
                            }
                            ProducerCommand::Rekey => {
                                group.rekey(&mut rng);
                                if let Ok(updates) = group.key_updates(&mut rng) {
                                    let members = group.members();
                                    push_key_updates(&updates, &client_conns, &conns, &members);
                                }
                            }
                            ProducerCommand::Publish(publication) => {
                                let header_ct = crypto.encrypt_header(&publication, &mut rng);
                                let (epoch, payload_ct) =
                                    group.encrypt_payload(publication.payload_bytes(), &mut rng);
                                send_best_effort(
                                    router.as_ref(),
                                    &Message::Publish { header_ct, epoch, payload_ct },
                                );
                            }
                            ProducerCommand::PublishBatch(publications) => {
                                // Chunk the outgoing frames: never exceed
                                // the router's per-crossing drain bound per
                                // frame, and stay far inside the wire-level
                                // frame limit so encoding cannot fail (an
                                // oversized batch must degrade into more
                                // frames, not kill the event loop). An
                                // empty command sends nothing.
                                const MAX_BATCH_BYTES: usize = 4 << 20;
                                let mut items: Vec<PublishItem> = Vec::new();
                                let mut batch_bytes = 0usize;
                                for publication in &publications {
                                    let header_ct = crypto.encrypt_header(publication, &mut rng);
                                    let (epoch, payload_ct) =
                                        group.encrypt_payload(publication.payload_bytes(), &mut rng);
                                    let item_bytes = header_ct.len() + payload_ct.len() + 32;
                                    if item_bytes > MAX_BATCH_BYTES {
                                        // A single outsized publication
                                        // cannot ride in a batch frame; ship
                                        // it alone so the wire layer applies
                                        // its own size policy (exactly like
                                        // ProducerCommand::Publish).
                                        send_best_effort(
                                            router.as_ref(),
                                            &Message::Publish { header_ct, epoch, payload_ct },
                                        );
                                        continue;
                                    }
                                    batch_bytes += item_bytes;
                                    items.push(PublishItem { header_ct, epoch, payload_ct });
                                    if items.len() >= crate::roles::router::MAX_DRAIN
                                        || batch_bytes >= MAX_BATCH_BYTES
                                    {
                                        send_best_effort(
                                            router.as_ref(),
                                            &Message::PublishBatch {
                                                items: std::mem::take(&mut items),
                                            },
                                        );
                                        batch_bytes = 0;
                                    }
                                }
                                if !items.is_empty() {
                                    send_best_effort(
                                        router.as_ref(),
                                        &Message::PublishBatch { items },
                                    );
                                }
                            }
                            ProducerCommand::Shutdown => {
                                send_best_effort(router.as_ref(), &Message::Shutdown);
                                break;
                            }
                        }
                    }
                    recv(events_rx) -> event => {
                        let Ok(event) = event else { break };
                        while let Ok((id, conn)) = accepted.try_recv() {
                            conns.insert(id, conn);
                        }
                        match event {
                            ConnEvent::Gone { conn } => {
                                conns.remove(&conn);
                                client_conns.retain(|_, c| *c != conn);
                            }
                            ConnEvent::Msg { conn, message } => match message {
                                Message::Hello { client } => {
                                    client_conns.insert(client, conn);
                                    // If already admitted, push the current key.
                                    if directory.check_admitted(client).is_ok() {
                                        if let Ok(updates) = group.key_updates(&mut rng) {
                                            push_key_updates(
                                                &updates, &client_conns, &conns, &[client],
                                            );
                                        }
                                    }
                                }
                                Message::SubmitSubscription { client, encrypted_subscription } => {
                                    let reply = handle_submission(
                                        &crypto,
                                        &mut directory,
                                        client,
                                        &encrypted_subscription,
                                        router.as_ref(),
                                        &mut rng,
                                    );
                                    match reply {
                                        Ok(()) => pending_acks.push((conn, PendingKind::Register)),
                                        Err(e) => {
                                            if let Some(c) = conns.get(&conn) {
                                                send_best_effort(
                                                    c.as_ref(),
                                                    &Message::SubscriptionRejected {
                                                        reason: e.to_string(),
                                                    },
                                                );
                                            }
                                        }
                                    }
                                }
                                Message::Unsubscribe { client, id, signature } => {
                                    let reply = handle_unsubscription(
                                        &crypto,
                                        &mut directory,
                                        client,
                                        id,
                                        &signature,
                                        router.as_ref(),
                                        &mut rng,
                                    );
                                    match reply {
                                        Ok(()) => {
                                            pending_acks.push((conn, PendingKind::Unregister))
                                        }
                                        Err(e) => {
                                            if let Some(c) = conns.get(&conn) {
                                                send_best_effort(
                                                    c.as_ref(),
                                                    &Message::Error { message: e.to_string() },
                                                );
                                            }
                                        }
                                    }
                                }
                                // Router acknowledgements map onto the oldest
                                // pending submission (the router processes
                                // registrations in order).
                                Message::RegisterAck { id } if conn == ROUTER_CONN => {
                                    if !pending_acks.is_empty() {
                                        let (client_conn, _) = pending_acks.remove(0);
                                        if let Some(c) = conns.get(&client_conn) {
                                            send_best_effort(
                                                c.as_ref(),
                                                &Message::SubscriptionAccepted { id },
                                            );
                                        }
                                    }
                                }
                                Message::UnregisterAck { id } if conn == ROUTER_CONN => {
                                    if !pending_acks.is_empty() {
                                        let (client_conn, _) = pending_acks.remove(0);
                                        if let Some(c) = conns.get(&client_conn) {
                                            send_best_effort(
                                                c.as_ref(),
                                                &Message::Unsubscribed { id },
                                            );
                                        }
                                    }
                                }
                                // A router error refuses the *oldest* in-
                                // flight request, whichever kind it was —
                                // the stored kind picks the reply shape the
                                // waiting client understands.
                                Message::Error { message } if conn == ROUTER_CONN => {
                                    if !pending_acks.is_empty() {
                                        let (client_conn, kind) = pending_acks.remove(0);
                                        if let Some(c) = conns.get(&client_conn) {
                                            let reply = match kind {
                                                PendingKind::Register => {
                                                    Message::SubscriptionRejected {
                                                        reason: message,
                                                    }
                                                }
                                                PendingKind::Unregister => {
                                                    Message::Error { message }
                                                }
                                            };
                                            send_best_effort(c.as_ref(), &reply);
                                        }
                                    }
                                }
                                Message::Shutdown => break,
                                other => {
                                    if let Some(c) = conns.get(&conn) {
                                        send_best_effort(
                                            c.as_ref(),
                                            &Message::Error {
                                                message: format!("unexpected {}", other.kind()),
                                            },
                                        );
                                    }
                                }
                            },
                        }
                    }
                }
            }
        });
        Producer { handle: Some(handle), control: ProducerHandle { tx: control_tx } }
    }

    /// The control handle.
    pub fn handle(&self) -> ProducerHandle {
        self.control.clone()
    }

    /// Stops the loop and waits for it.
    ///
    /// # Errors
    ///
    /// [`ScbrError::NotFound`] if already joined or the thread panicked.
    pub fn shutdown(mut self) -> Result<(), ScbrError> {
        let _ = self.control.send(ProducerCommand::Shutdown);
        self.handle
            .take()
            .ok_or(ScbrError::NotFound { what: "producer thread" })?
            .join()
            .map_err(|_| ScbrError::NotFound { what: "producer thread (panicked)" })
    }
}

/// Validates and forwards one client submission (protocol step 2).
fn handle_submission(
    crypto: &ProducerCrypto,
    directory: &mut ClientDirectory,
    client: ClientId,
    encrypted_subscription: &[u8],
    router: &dyn Connection,
    rng: &mut CryptoRng,
) -> Result<(), ScbrError> {
    directory.check_admitted(client)?;
    let spec = crypto.open_client_subscription(encrypted_subscription)?;
    let id = directory.issue_subscription(client)?;
    let envelope = crypto.seal_registration(&spec, id, client, rng)?;
    send_best_effort(router, &Message::Register { envelope });
    Ok(())
}

/// Validates and forwards one client unsubscribe request: the client must
/// be admitted, the request must carry a valid signature under the
/// client's admission key, and the subscription must belong to that
/// client. Only then does the producer seal an unregistration envelope
/// for the router.
fn handle_unsubscription(
    crypto: &ProducerCrypto,
    directory: &mut ClientDirectory,
    client: ClientId,
    id: SubscriptionId,
    signature: &[u8],
    router: &dyn Connection,
    rng: &mut CryptoRng,
) -> Result<(), ScbrError> {
    let record = directory.check_admitted(client)?;
    record.public_key().verify(&unsubscribe_signing_bytes(client, id), signature)?;
    directory.retire_subscription(client, id)?;
    let envelope = crypto.seal_unregistration(id, client, rng)?;
    send_best_effort(router, &Message::Unregister { envelope });
    Ok(())
}

/// Pushes key updates to the subset `targets` of connected clients.
fn push_key_updates(
    updates: &[(ClientId, Vec<u8>)],
    client_conns: &HashMap<ClientId, u64>,
    conns: &HashMap<u64, Arc<dyn Connection>>,
    targets: &[ClientId],
) {
    for (client, wrapped) in updates {
        if !targets.contains(client) {
            continue;
        }
        if let Some(conn_id) = client_conns.get(client) {
            if let Some(conn) = conns.get(conn_id) {
                send_best_effort(conn.as_ref(), &Message::KeyUpdate { wrapped: wrapped.clone() });
            }
        }
    }
}
