//! Runnable SCBR nodes: producer, router and client.
//!
//! Each role is an event loop over [`scbr_net`] connections speaking
//! [`crate::protocol::messages::Message`]. The wiring matches the paper's
//! Figure 3: clients talk to the producer to subscribe (and receive group
//! keys), the producer talks to the router to register subscriptions and
//! publish, and the router pushes matched payloads to clients over their
//! delivery channels.
//!
//! The roles are transport-agnostic: tests and benchmarks use
//! [`scbr_net::InProcNetwork`]; the examples also run over TCP.

pub mod client;
pub mod producer;
pub mod router;

use crate::protocol::messages::Message;
use crossbeam::channel::{unbounded, Receiver, Sender};
use scbr_net::Connection;
use std::sync::Arc;

pub use client::ClientNode;
pub use producer::{Producer, ProducerCommand, ProducerHandle};
pub use router::Router;

/// An event produced by a connection pump.
#[derive(Debug)]
pub(crate) enum ConnEvent {
    /// A decoded message arrived on connection `conn`.
    Msg {
        /// Pump-local connection identifier.
        conn: u64,
        /// The decoded message.
        message: Message,
    },
    /// The connection closed or failed.
    Gone {
        /// Pump-local connection identifier.
        conn: u64,
    },
}

/// Spawns a reader thread that decodes frames from `connection` into
/// [`ConnEvent`]s on `events`.
pub(crate) fn pump_connection(
    conn_id: u64,
    connection: Arc<dyn Connection>,
    events: Sender<ConnEvent>,
) {
    std::thread::spawn(move || loop {
        match connection.recv() {
            Ok(frame) => match Message::from_wire(&frame) {
                Ok(message) => {
                    if events.send(ConnEvent::Msg { conn: conn_id, message }).is_err() {
                        return;
                    }
                }
                Err(_) => {
                    // Malformed traffic: drop the frame, keep the
                    // connection (robustness against garbage).
                }
            },
            Err(_) => {
                let _ = events.send(ConnEvent::Gone { conn: conn_id });
                return;
            }
        }
    });
}

/// Spawns an acceptor thread that pumps every accepted connection into
/// `events`, tagging connections with ids starting at `first_id`.
/// Returns a receiver of the accepted connections (so the owner can write
/// to them).
pub(crate) fn pump_listener(
    listener: Box<dyn scbr_net::Listener>,
    events: Sender<ConnEvent>,
    first_id: u64,
) -> Receiver<(u64, Arc<dyn Connection>)> {
    let (tx, rx) = unbounded();
    std::thread::spawn(move || {
        let mut next = first_id;
        while let Ok(conn) = listener.accept() {
            let conn: Arc<dyn Connection> = Arc::from(conn);
            let id = next;
            next += 1;
            pump_connection(id, conn.clone(), events.clone());
            if tx.send((id, conn)).is_err() {
                return;
            }
        }
    });
    rx
}

/// Sends a message on a connection, ignoring disconnects (the pump reports
/// those separately).
pub(crate) fn send_best_effort(conn: &dyn Connection, msg: &Message) {
    let _ = conn.send(&msg.to_wire());
}
