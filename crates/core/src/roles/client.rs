//! The client role: subscribes through the producer, receives deliveries
//! from the router, and decrypts payloads with group keys.

use crate::error::ScbrError;
use crate::ids::{ClientId, KeyEpoch, SubscriptionId};
use crate::protocol::group::GroupKeyStore;
use crate::protocol::keys::{encrypt_subscription_for_producer, unsubscribe_signing_bytes};
use crate::protocol::messages::Message;
use crate::subscription::SubscriptionSpec;
use scbr_crypto::rng::CryptoRng;
use scbr_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use scbr_net::Connection;
use std::time::Duration;

/// A decrypted delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The group-key epoch the payload was encrypted under.
    pub epoch: KeyEpoch,
    /// The decrypted payload.
    pub payload: Vec<u8>,
}

/// A synchronous SCBR client.
///
/// Owns two connections: to the producer (subscriptions, key updates) and
/// to the router (deliveries). Methods drain key updates opportunistically
/// as they arrive interleaved with other traffic.
pub struct ClientNode {
    id: ClientId,
    key_pair: RsaKeyPair,
    keys: GroupKeyStore,
    producer: Box<dyn Connection>,
    router: Box<dyn Connection>,
    producer_key: Option<RsaPublicKey>,
    rng: CryptoRng,
}

impl std::fmt::Debug for ClientNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientNode")
            .field("id", &self.id)
            .field("epochs_held", &self.keys.len())
            .finish()
    }
}

impl ClientNode {
    /// Creates a client and announces itself on both connections.
    ///
    /// # Errors
    ///
    /// Key-generation or transport failures.
    pub fn connect(
        id: ClientId,
        producer: Box<dyn Connection>,
        router: Box<dyn Connection>,
        mut rng: CryptoRng,
    ) -> Result<Self, ScbrError> {
        let key_pair = RsaKeyPair::generate(512, &mut rng)?;
        let hello = Message::Hello { client: id };
        producer.send(&hello.to_wire())?;
        router.send(&hello.to_wire())?;
        Ok(ClientNode {
            id,
            key_pair,
            keys: GroupKeyStore::new(),
            producer,
            router,
            producer_key: None,
            rng,
        })
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The public key the producer should be given at admission time.
    pub fn public_key(&self) -> &RsaPublicKey {
        self.key_pair.public()
    }

    /// Submits a subscription (protocol step 1) and waits for the verdict.
    ///
    /// # Errors
    ///
    /// [`ScbrError::NotAdmitted`] when rejected; transport/crypto failures
    /// otherwise.
    pub fn subscribe(
        &mut self,
        spec: &SubscriptionSpec,
        timeout: Duration,
    ) -> Result<SubscriptionId, ScbrError> {
        let ct = encrypt_subscription_for_producer(
            // Subscriptions are encrypted to the *producer*; its key is
            // delivered out of band (service signup), modelled here as the
            // key cached in the producer connection handshake. The caller
            // passes it in via `set_producer_key` below when needed.
            self.producer_key
                .as_ref()
                .ok_or(ScbrError::MissingKeys { which: "producer public key" })?,
            spec,
            &mut self.rng,
        )?;
        let msg = Message::SubmitSubscription { client: self.id, encrypted_subscription: ct };
        self.producer.send(&msg.to_wire())?;
        // Wait for the verdict, stashing any interleaved key updates.
        self.await_producer_reply(timeout, |msg| match msg {
            Message::SubscriptionAccepted { id } => Ok(Some(id)),
            Message::SubscriptionRejected { reason } => {
                Err(ScbrError::UnexpectedMessage { got: format!("rejected: {reason}") })
            }
            other => Err(ScbrError::UnexpectedMessage { got: other.kind().to_owned() }),
        })
    }

    /// Retires one of this client's subscriptions and waits for the
    /// producer's confirmation. The request is signed with the client's
    /// admission key so nobody else can shed this client's interest.
    ///
    /// # Errors
    ///
    /// [`ScbrError::UnexpectedMessage`] when the producer rejects the
    /// request (not admitted, bad signature, not the owner) or the wait
    /// times out; transport/crypto failures otherwise.
    pub fn unsubscribe(&mut self, id: SubscriptionId, timeout: Duration) -> Result<(), ScbrError> {
        let signature = self.key_pair.private().sign(&unsubscribe_signing_bytes(self.id, id))?;
        let msg = Message::Unsubscribe { client: self.id, id, signature };
        self.producer.send(&msg.to_wire())?;
        self.await_producer_reply(timeout, |msg| match msg {
            Message::Unsubscribed { id: got } if got == id => Ok(Some(())),
            Message::Error { message } => {
                Err(ScbrError::UnexpectedMessage { got: format!("rejected: {message}") })
            }
            other => Err(ScbrError::UnexpectedMessage { got: other.kind().to_owned() }),
        })
    }

    /// Blocks on the producer connection until `judge` resolves the reply,
    /// ingesting any key updates that arrive interleaved with it. `judge`
    /// returns `Ok(Some(_))` on the terminal message, `Ok(None)` to keep
    /// waiting, or an error to abort.
    ///
    /// The client runs on the untrusted host, so the deadline is real wall
    /// time bounding a real network wait — the enclave's virtual clock has
    /// no business here.
    // lint: allow(SL01, host-side client bounding a network wait with wall time)
    fn await_producer_reply<T>(
        &mut self,
        timeout: Duration,
        mut judge: impl FnMut(Message) -> Result<Option<T>, ScbrError>,
    ) -> Result<T, ScbrError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            let Some(frame) = self.producer.recv_timeout(remaining)? else {
                return Err(ScbrError::UnexpectedMessage { got: "timeout".into() });
            };
            match Message::from_wire(&frame)? {
                Message::KeyUpdate { wrapped } => {
                    let _ = self.keys.ingest_update(&self.key_pair, &wrapped);
                }
                other => {
                    if let Some(done) = judge(other)? {
                        return Ok(done);
                    }
                }
            }
        }
    }

    /// Waits for the next delivery from the router and decrypts it.
    ///
    /// Returns `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// [`ScbrError::MissingKeys`] when the payload's epoch key was never
    /// received (e.g. after revocation); transport or crypto failures
    /// otherwise.
    pub fn poll_delivery(&mut self, timeout: Duration) -> Result<Option<Delivery>, ScbrError> {
        self.drain_key_updates(Duration::from_millis(0))?;
        let Some(frame) = self.router.recv_timeout(timeout)? else {
            return Ok(None);
        };
        match Message::from_wire(&frame)? {
            Message::Deliver { epoch, payload_ct } => {
                let payload = self.keys.open_payload(epoch, &payload_ct)?;
                Ok(Some(Delivery { epoch, payload }))
            }
            other => Err(ScbrError::UnexpectedMessage { got: other.kind().to_owned() }),
        }
    }

    /// Like [`ClientNode::poll_delivery`] but returns the raw ciphertext
    /// without requiring the group key (what a revoked client still sees).
    ///
    /// # Errors
    ///
    /// Transport or decoding failures.
    pub fn poll_delivery_raw(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<(KeyEpoch, Vec<u8>)>, ScbrError> {
        let Some(frame) = self.router.recv_timeout(timeout)? else {
            return Ok(None);
        };
        match Message::from_wire(&frame)? {
            Message::Deliver { epoch, payload_ct } => Ok(Some((epoch, payload_ct))),
            other => Err(ScbrError::UnexpectedMessage { got: other.kind().to_owned() }),
        }
    }

    /// Drains pending key updates from the producer connection.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn drain_key_updates(&mut self, timeout: Duration) -> Result<usize, ScbrError> {
        let mut n = 0;
        while let Some(frame) = self.producer.recv_timeout(timeout)? {
            if let Ok(Message::KeyUpdate { wrapped }) = Message::from_wire(&frame) {
                if self.keys.ingest_update(&self.key_pair, &wrapped).is_ok() {
                    n += 1;
                }
            }
        }
        Ok(n)
    }

    /// Number of group-key epochs this client can decrypt.
    pub fn epochs_held(&self) -> usize {
        self.keys.len()
    }

    /// Installs the producer's public key (obtained at signup).
    pub fn set_producer_key(&mut self, key: RsaPublicKey) {
        self.producer_key = Some(key);
    }
}
