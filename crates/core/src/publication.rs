//! Publications: header (filterable attributes) plus opaque payload.
//!
//! Following the paper's model (§3.2), a message is a *header* — named
//! attribute/value pairs the CBR engine filters on — and a *payload* that
//! is opaque to SCBR (it is encrypted under a group key the router never
//! sees).

use crate::attr::{AttrId, AttrSchema};
use crate::error::ScbrError;
use crate::value::{Scalar, Value};

/// A wire-level publication: named header attributes and an opaque payload.
///
/// ```
/// use scbr::publication::PublicationSpec;
///
/// let quote = PublicationSpec::new()
///     .attr("symbol", "HAL")
///     .attr("price", 49.5)
///     .payload(b"full quote details".to_vec());
/// assert_eq!(quote.header().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PublicationSpec {
    header: Vec<(String, Value)>,
    payload: Vec<u8>,
}

impl PublicationSpec {
    /// An empty publication.
    pub fn new() -> Self {
        PublicationSpec::default()
    }

    /// Adds a header attribute.
    #[must_use]
    pub fn attr(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.header.push((name.to_owned(), value.into()));
        self
    }

    /// Sets the opaque payload.
    #[must_use]
    pub fn payload(mut self, payload: Vec<u8>) -> Self {
        self.payload = payload;
        self
    }

    /// Header attributes in authoring order.
    pub fn header(&self) -> &[(String, Value)] {
        &self.header
    }

    /// The opaque payload.
    pub fn payload_bytes(&self) -> &[u8] {
        &self.payload
    }

    /// Compiles the header against `schema` for matching.
    ///
    /// # Errors
    ///
    /// [`ScbrError::InvalidPublication`] on NaN values or duplicate
    /// attribute names.
    pub fn compile_header(&self, schema: &AttrSchema) -> Result<CompiledHeader, ScbrError> {
        let mut entries: Vec<(AttrId, Scalar)> = Vec::with_capacity(self.header.len());
        for (name, value) in &self.header {
            if value.is_nan() {
                return Err(ScbrError::InvalidPublication { reason: "nan attribute value" });
            }
            let id = schema.intern(name);
            if entries.iter().any(|(a, _)| *a == id) {
                return Err(ScbrError::InvalidPublication { reason: "duplicate attribute" });
            }
            entries.push((id, value.to_scalar()));
        }
        entries.sort_by_key(|(a, _)| *a);
        Ok(CompiledHeader { entries })
    }
}

/// A compiled header: `(attribute, scalar)` pairs sorted by attribute id.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledHeader {
    entries: Vec<(AttrId, Scalar)>,
}

impl CompiledHeader {
    /// An empty header. Pair with [`crate::codec::decode_header_into`] to
    /// reuse one header's buffer across decodes on the hot path.
    pub fn empty() -> Self {
        CompiledHeader::default()
    }

    /// Mutable access to the entry buffer for the in-place decode path.
    pub(crate) fn entries_mut(&mut self) -> &mut Vec<(AttrId, Scalar)> {
        &mut self.entries
    }

    /// The sorted entries.
    pub fn entries(&self) -> &[(AttrId, Scalar)] {
        &self.entries
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the header carries no attributes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the scalar for `attr`.
    pub fn get(&self, attr: AttrId) -> Option<&Scalar> {
        self.entries.binary_search_by_key(&attr, |(a, _)| *a).ok().map(|i| &self.entries[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_sorts_by_attr_id() {
        let schema = AttrSchema::new();
        // Intern in one order, author in another.
        schema.intern("a");
        schema.intern("b");
        let spec = PublicationSpec::new().attr("b", 2i64).attr("a", 1i64);
        let header = spec.compile_header(&schema).unwrap();
        let ids: Vec<u16> = header.entries().iter().map(|(a, _)| a.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn get_by_attr() {
        let schema = AttrSchema::new();
        let spec = PublicationSpec::new().attr("price", 9.5).attr("symbol", "HAL");
        let header = spec.compile_header(&schema).unwrap();
        let price = schema.lookup("price").unwrap();
        assert!(matches!(header.get(price), Some(Scalar::Float(v)) if *v == 9.5));
        assert!(header.get(AttrId(99)).is_none());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let schema = AttrSchema::new();
        let spec = PublicationSpec::new().attr("x", 1i64).attr("x", 2i64);
        assert!(spec.compile_header(&schema).is_err());
    }

    #[test]
    fn nan_rejected() {
        let schema = AttrSchema::new();
        let spec = PublicationSpec::new().attr("x", f64::NAN);
        assert!(spec.compile_header(&schema).is_err());
    }

    #[test]
    fn payload_is_preserved() {
        let spec = PublicationSpec::new().payload(vec![1, 2, 3]);
        assert_eq!(spec.payload_bytes(), &[1, 2, 3]);
    }

    #[test]
    fn empty_header_compiles() {
        let schema = AttrSchema::new();
        let header = PublicationSpec::new().compile_header(&schema).unwrap();
        assert!(header.is_empty());
        assert_eq!(header.len(), 0);
    }
}
