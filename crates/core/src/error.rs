//! Error type for the SCBR engine and protocol.

use scbr_crypto::CryptoError;
use scbr_net::NetError;
use sgx_sim::SgxError;
use std::error::Error;
use std::fmt;

/// Errors raised by the SCBR engine, protocol and roles.
#[derive(Debug)]
#[non_exhaustive]
pub enum ScbrError {
    /// A subscription is malformed (contradictory, ill-typed, oversized).
    InvalidSubscription {
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A publication is malformed.
    InvalidPublication {
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A wire message could not be decoded.
    Codec {
        /// What was being decoded.
        context: &'static str,
    },
    /// A cryptographic operation failed (decryption, signature, …).
    Crypto(CryptoError),
    /// An SGX operation failed (attestation, sealing, …).
    Sgx(SgxError),
    /// A transport operation failed.
    Net(NetError),
    /// The client is not admitted (unknown, suspended, or revoked).
    NotAdmitted {
        /// The client's status at rejection time.
        status: &'static str,
    },
    /// The engine is missing key material for the requested operation.
    MissingKeys {
        /// Which key is missing.
        which: &'static str,
    },
    /// A protocol peer sent an unexpected message kind.
    UnexpectedMessage {
        /// What was received.
        got: String,
    },
    /// A referenced entity does not exist.
    NotFound {
        /// What was looked up.
        what: &'static str,
    },
}

impl fmt::Display for ScbrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScbrError::InvalidSubscription { reason } => {
                write!(f, "invalid subscription: {reason}")
            }
            ScbrError::InvalidPublication { reason } => {
                write!(f, "invalid publication: {reason}")
            }
            ScbrError::Codec { context } => write!(f, "malformed {context}"),
            ScbrError::Crypto(e) => write!(f, "crypto failure: {e}"),
            ScbrError::Sgx(e) => write!(f, "sgx failure: {e}"),
            ScbrError::Net(e) => write!(f, "transport failure: {e}"),
            ScbrError::NotAdmitted { status } => write!(f, "client not admitted ({status})"),
            ScbrError::MissingKeys { which } => write!(f, "missing key material: {which}"),
            ScbrError::UnexpectedMessage { got } => write!(f, "unexpected message: {got}"),
            ScbrError::NotFound { what } => write!(f, "not found: {what}"),
        }
    }
}

impl Error for ScbrError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScbrError::Crypto(e) => Some(e),
            ScbrError::Sgx(e) => Some(e),
            ScbrError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for ScbrError {
    fn from(e: CryptoError) -> Self {
        ScbrError::Crypto(e)
    }
}

impl From<SgxError> for ScbrError {
    fn from(e: SgxError) -> Self {
        ScbrError::Sgx(e)
    }
}

impl From<NetError> for ScbrError {
    fn from(e: NetError) -> Self {
        ScbrError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = ScbrError::from(CryptoError::VerificationFailed);
        assert!(e.to_string().contains("crypto"));
        assert!(e.source().is_some());
        let e = ScbrError::InvalidSubscription { reason: "nan operand" };
        assert!(e.to_string().contains("nan operand"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ScbrError>();
    }
}
