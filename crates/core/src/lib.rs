//! # scbr — Secure Content-Based Routing
//!
//! A full reimplementation of **SCBR** ([Pires, Pasin, Felber & Fetzer,
//! Middleware 2016]): a privacy-preserving content-based publish/subscribe
//! router whose matching engine runs inside an Intel SGX enclave (simulated
//! here by [`sgx_sim`]), so the infrastructure hosting it never sees
//! subscriptions or publication headers in the clear.
//!
//! ## Architecture
//!
//! * **Data model** — typed attribute values ([`value`]), publications as
//!   header + opaque payload ([`publication`]), subscriptions as
//!   conjunctions of equality/range predicates ([`subscription`],
//!   [`predicate`]).
//! * **Matching** — three interchangeable indexes ([`index`]); the default
//!   is the paper's containment poset, which prunes matching using the
//!   covering partial order.
//! * **Engine** — [`engine::MatchingEngine`] decrypts and matches inside
//!   the trust boundary; [`engine::RouterEngine`] places it inside or
//!   outside an enclave (the axis of the paper's experiments).
//! * **Protocol** — the Figure 4 key exchange, admission control and group
//!   key rotation ([`protocol`]).
//! * **Roles** — runnable producer / router / client nodes over
//!   [`scbr_net`] transports ([`roles`]).
//!
//! ## Quickstart
//!
//! ```
//! use scbr::engine::MatchingEngine;
//! use scbr::index::IndexKind;
//! use scbr::ids::{ClientId, SubscriptionId};
//! use scbr::publication::PublicationSpec;
//! use scbr::subscription::SubscriptionSpec;
//! use sgx_sim::MemorySim;
//!
//! let mem = MemorySim::native_default();
//! let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
//! engine.register_plain(
//!     SubscriptionId(1),
//!     ClientId(42),
//!     &SubscriptionSpec::new().eq("symbol", "HAL").lt("price", 50.0),
//! )?;
//! let quote = PublicationSpec::new().attr("symbol", "HAL").attr("price", 49.5);
//! assert_eq!(engine.match_plain(&quote)?, vec![ClientId(42)]);
//! # Ok::<(), scbr::ScbrError>(())
//! ```
//!
//! [Pires, Pasin, Felber & Fetzer, Middleware 2016]: https://doi.org/10.1145/2988336.2988346

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod cluster;
pub mod codec;
pub mod engine;
pub mod error;
pub mod ids;
pub mod index;
pub mod predicate;
pub mod protocol;
pub mod publication;
pub mod roles;
pub mod subscription;
pub mod value;

pub use engine::{MatchingEngine, Placement, RouterEngine};
pub use error::ScbrError;
pub use ids::{ClientId, KeyEpoch, SubscriptionId};
pub use index::{IndexKind, SubscriptionIndex};
pub use publication::PublicationSpec;
pub use subscription::{CompiledSubscription, SubscriptionSpec};
