//! Linear-scan subscription index.
//!
//! Every registered subscription is checked against every publication.
//! Used as the correctness oracle for the smarter indexes and as the
//! unoptimised baseline in the ablation benchmarks.

use super::{
    IndexKind, MatchScratch, SubscriptionIndex, CONSTRAINT_BYTES, NODE_HEADER_BYTES, NODE_STRIDE,
};
use crate::ids::{ClientId, SubscriptionId};
use crate::publication::CompiledHeader;
use crate::subscription::CompiledSubscription;
use sgx_sim::{MemorySim, SimArena};
use std::collections::HashMap;

#[derive(Debug)]
struct Entry {
    id: SubscriptionId,
    client: ClientId,
    sub: CompiledSubscription,
    alive: bool,
}

/// A subscription index that scans all entries on every match.
#[derive(Debug)]
pub struct NaiveIndex {
    mem: MemorySim,
    entries: SimArena<Entry>,
    by_id: HashMap<SubscriptionId, u32>,
    live: usize,
}

impl NaiveIndex {
    /// Creates an empty index storing entries in `mem`.
    pub fn new(mem: &MemorySim) -> Self {
        NaiveIndex {
            mem: mem.clone(),
            entries: SimArena::with_stride(mem, NODE_STRIDE),
            by_id: HashMap::new(),
            live: 0,
        }
    }
}

impl SubscriptionIndex for NaiveIndex {
    fn insert(&mut self, id: SubscriptionId, client: ClientId, sub: CompiledSubscription) {
        let idx = self.entries.push(Entry { id, client, sub, alive: true });
        self.by_id.insert(id, idx);
        self.live += 1;
    }

    fn remove(&mut self, id: SubscriptionId) -> bool {
        match self.by_id.remove(&id) {
            Some(idx) => {
                let entry = self.entries.write(idx);
                debug_assert_eq!(entry.id, id, "id map out of sync");
                entry.alive = false;
                self.live -= 1;
                true
            }
            None => false,
        }
    }

    fn match_into(
        &self,
        header: &CompiledHeader,
        _scratch: &mut MatchScratch,
        out: &mut Vec<ClientId>,
    ) {
        // The linear scan needs no traversal state; it is allocation-free
        // by construction.
        for idx in 0..self.entries.len() as u32 {
            // Touch the header plus as many constraints as this entry holds.
            let peek = self.entries.peek(idx);
            let touched = NODE_HEADER_BYTES + peek.sub.len() as u64 * CONSTRAINT_BYTES;
            let entry = self.entries.read_partial(idx, touched);
            self.mem.charge_predicate_evals(entry.sub.len().max(1) as u64);
            if entry.alive && entry.sub.matches(header) {
                out.push(entry.client);
            }
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn node_count(&self) -> usize {
        self.entries.len()
    }

    fn logical_bytes(&self) -> u64 {
        self.entries.len() as u64 * NODE_STRIDE
    }

    fn kind(&self) -> IndexKind {
        IndexKind::Naive
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;

    #[test]
    fn conformance() {
        conformance_scenario(|mem| Box::new(NaiveIndex::new(mem)));
    }

    #[test]
    fn empty_index_matches_nothing() {
        let mem = free_mem();
        let index = NaiveIndex::new(&mem);
        let schema = crate::attr::AttrSchema::new();
        let h = header(&schema, &[("x", 1i64.into())]);
        assert!(matches(&index, &h).is_empty());
        assert!(index.is_empty());
    }

    #[test]
    fn logical_bytes_grow_with_entries() {
        let mem = free_mem();
        let schema = crate::attr::AttrSchema::new();
        let mut index = NaiveIndex::new(&mem);
        assert_eq!(index.logical_bytes(), 0);
        for i in 0..10 {
            index.insert(
                SubscriptionId(i),
                ClientId(i),
                sub(&schema, crate::subscription::SubscriptionSpec::new().eq("s", i as i64)),
            );
        }
        assert_eq!(index.logical_bytes(), 10 * NODE_STRIDE);
        assert_eq!(index.node_count(), 10);
    }

    #[test]
    fn matching_charges_memory_traffic() {
        let mem = free_mem();
        let schema = crate::attr::AttrSchema::new();
        let mut index = NaiveIndex::new(&mem);
        for i in 0..100 {
            index.insert(
                SubscriptionId(i),
                ClientId(i),
                sub(&schema, crate::subscription::SubscriptionSpec::new().eq("s", i as i64)),
            );
        }
        let reads_before = mem.stats().reads;
        let h = header(&schema, &[("s", 5i64.into())]);
        let mut out = Vec::new();
        index.match_header(&h, &mut out);
        assert!(mem.stats().reads > reads_before, "matching reads memory");
        assert_eq!(out, vec![ClientId(5)]);
    }
}
