//! Containment-based subscription index (the paper's engine), rebuilt on a
//! cache-conscious arena layout for the million-subscriber hot path.
//!
//! Subscriptions are organised in a forest ordered by the *covering*
//! relation: a node's subscription covers every subscription in its
//! subtree. Two properties follow:
//!
//! 1. **Pruned matching.** If a publication fails a node's constraints it
//!    cannot match anything below it (child matches ⇒ parent matches, by
//!    covering), so the whole subtree is skipped. Workloads whose
//!    subscriptions form deep chains (many equality predicates on few hot
//!    values — `e100a1`, `e100a1zz100` in Table 1) match fastest; workloads
//!    with many attributes form wide, shallow forests and degrade towards a
//!    linear scan (`e80a4`, `extsub4`), exactly the spread Figure 6 shows.
//! 2. **Shared nodes.** Equal subscriptions (after canonicalisation) share
//!    one node, shrinking the enclave-resident footprint — valuable when
//!    memory beyond the EPC costs 1000× (Figure 8).
//!
//! Compared to [`super::legacy::LegacyPosetIndex`] (the pre-arena engine)
//! three things changed:
//!
//! * **Struct-of-arrays links.** Child/sibling/parent relations live in
//!   flat `Vec<u32>` arrays indexed by node id (`u32::MAX` = none) instead
//!   of a per-node `Vec<u32>` child list. Splicing a node in or out of the
//!   forest is O(1) pointer surgery with no heap allocation and no
//!   `children.clone()`.
//! * **Copyable directory keys.** Each node caches the directory bucket it
//!   roots under ([`DirKey`], derived from its first constraint), so root
//!   promotion/demotion never needs a `sub.clone()`; bucket membership is
//!   maintained with position-indexed `swap_remove`, O(1) per root flip.
//! * **Directory-seeded matching.** A root can only match a publication
//!   that carries its first (minimum-id) constrained attribute with a
//!   compatible kind, so matching seeds its DFS stack from the compatible
//!   buckets only — `top` roots plus, per publication attribute, the exact
//!   string-equality bucket and the numeric-range list. At one million
//!   mostly-unrelated subscriptions this replaces the full root-list walk
//!   with a handful of bucket probes, and the traversal stack itself comes
//!   from the caller's [`MatchScratch`], so steady-state matching performs
//!   zero heap allocation.
//!
//! Node payloads still live in a [`SimArena`] with the paper's ~432-byte
//! stride, so probes surface as cache misses and EPC faults in the
//! simulator. Detached slots are recycled through a free list, keeping the
//! arena footprint proportional to *live* nodes under churn.

use super::{
    IndexKind, MatchScratch, SubscriptionIndex, CONSTRAINT_BYTES, NODE_HEADER_BYTES, NODE_STRIDE,
};
use crate::attr::AttrId;
use crate::ids::{ClientId, SubscriptionId};
use crate::predicate::ConstraintSet;
use crate::publication::CompiledHeader;
use crate::subscription::CompiledSubscription;
use crate::value::Scalar;
use sgx_sim::{MemorySim, SimArena};
use std::collections::HashMap;

/// Sentinel for "no node" in the link arrays.
const NONE: u32 = u32::MAX;

/// Upper bound on candidate nodes examined per sibling list during
/// insertion. A missed cover or adoption only flattens the forest (extra
/// roots), never breaks the parent-covers-child invariant; the cap keeps
/// per-registration work — and therefore the *memory touches the simulator
/// charges per registration* — bounded, matching the modest per-insert
/// footprint the paper's Figure 8 implies.
const SCAN_CAP: usize = 16;

/// Which root-directory bucket a node belongs to, derived from its first
/// (minimum-attribute-id) constraint. Copyable, so root bookkeeping never
/// clones the subscription itself.
// lint: allow(SL02, directory lookup key - no cryptographic material)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DirKey {
    /// No constraints: matches everything, always a candidate.
    Top,
    /// First constraint is a string equality on `(attr, hash)`.
    Eq(AttrId, u64),
    /// First constraint is a numeric range on `attr`.
    Range(AttrId),
}

impl DirKey {
    fn of(sub: &CompiledSubscription) -> Self {
        match sub.constraints().first() {
            None => DirKey::Top,
            Some((attr, ConstraintSet::StrEq(h))) => DirKey::Eq(*attr, *h),
            Some((attr, ConstraintSet::Range { .. })) => DirKey::Range(*attr),
        }
    }
}

/// Root directory: buckets every root by its [`DirKey`].
///
/// Insertion consults only compatible buckets instead of scanning every
/// root, and — new with the arena layout — matching seeds its DFS stack
/// from the same buckets, making candidate work sub-linear in the root
/// count. Soundness rests on [`ConstraintSet::matches`] kind-strictness: a
/// string equality only matches `Scalar::Str` of the same hash, and a
/// range never matches a string, so a root bucketed elsewhere cannot match
/// the publication and skipping it is safe.
#[derive(Debug, Default)]
struct RootDirectory {
    /// Roots with no constraints (match everything).
    top: Vec<u32>,
    by_attr: HashMap<AttrId, AttrBucket>,
}

#[derive(Debug, Default)]
struct AttrBucket {
    /// Roots whose first constraint is a string equality, by hash.
    eq: HashMap<u64, Vec<u32>>,
    /// Roots whose first constraint is a numeric range.
    ranges: Vec<u32>,
}

impl RootDirectory {
    /// The bucket list a key lives in, created on demand.
    fn list_mut(&mut self, key: DirKey) -> &mut Vec<u32> {
        match key {
            DirKey::Top => &mut self.top,
            DirKey::Eq(attr, h) => self.by_attr.entry(attr).or_default().eq.entry(h).or_default(),
            DirKey::Range(attr) => &mut self.by_attr.entry(attr).or_default().ranges,
        }
    }

    /// Root indices that could possibly *cover* `sub`: a covering root's
    /// first attribute is one of `sub`'s, with a compatible kind. Each
    /// list contributes at most [`SCAN_CAP`] entries, sampled across the
    /// list with a subscription-dependent offset (see [`capped_into`]).
    fn cover_candidates_into(&self, sub: &CompiledSubscription, salt: u64, out: &mut Vec<u32>) {
        capped_into(&self.top, salt, out);
        for (attr, set) in sub.constraints() {
            if let Some(bucket) = self.by_attr.get(attr) {
                match set {
                    ConstraintSet::StrEq(h) => {
                        if let Some(list) = bucket.eq.get(h) {
                            capped_into(list, salt, out);
                        }
                    }
                    ConstraintSet::Range { .. } => capped_into(&bucket.ranges, salt, out),
                }
            }
        }
    }

    /// Root indices `sub` might *adopt* (heuristic: only roots sharing
    /// `sub`'s first attribute — missing an adoption keeps the forest
    /// flatter but never breaks the parent-covers-child invariant).
    fn adoption_candidates_into(&self, key: DirKey, salt: u64, out: &mut Vec<u32>) {
        match key {
            DirKey::Top => {
                // An empty subscription covers everything rooted anywhere.
                capped_into(&self.top, salt, out);
                for bucket in self.by_attr.values() {
                    for list in bucket.eq.values() {
                        capped_into(list, salt, out);
                    }
                    capped_into(&bucket.ranges, salt, out);
                }
            }
            DirKey::Eq(attr, h) => {
                if let Some(list) = self.by_attr.get(&attr).and_then(|b| b.eq.get(&h)) {
                    capped_into(list, salt, out);
                }
            }
            DirKey::Range(attr) => {
                if let Some(bucket) = self.by_attr.get(&attr) {
                    capped_into(&bucket.ranges, salt, out);
                }
            }
        }
    }

    /// Seeds a match with every root that could possibly accept `header`:
    /// the unconstrained `top` roots plus, for each publication attribute,
    /// the exact string-equality bucket (when the value is a string) and
    /// the numeric-range list. Complete because a matching root's first
    /// constrained attribute must appear in the header with a compatible
    /// kind, and each root lives in exactly one bucket (no duplicates).
    fn seed_match(&self, header: &CompiledHeader, out: &mut Vec<u32>) {
        out.extend_from_slice(&self.top);
        for (attr, scalar) in header.entries() {
            if let Some(bucket) = self.by_attr.get(attr) {
                if let Scalar::Str(h) = scalar {
                    if let Some(list) = bucket.eq.get(h) {
                        out.extend_from_slice(list);
                    }
                }
                out.extend_from_slice(&bucket.ranges);
            }
        }
    }
}

/// Appends at most [`SCAN_CAP`] entries sampled *across* a candidate list
/// (every ⌈len/CAP⌉-th element) to `out`. Sampling the whole list — rather
/// than only its most recent tail — mirrors a real poset insertion, whose
/// sibling checks land on nodes allocated throughout the index's lifetime.
/// That access pattern is what drives the paper's Figure 8: once the index
/// outgrows the EPC, insertion touches evicted pages and pays for swaps.
fn capped_into(list: &[u32], salt: u64, out: &mut Vec<u32>) {
    if list.len() <= SCAN_CAP {
        out.extend_from_slice(list);
        return;
    }
    let stride = list.len().div_ceil(SCAN_CAP);
    let offset = (salt as usize) % stride;
    out.extend(list.iter().skip(offset).step_by(stride).copied());
}

/// Relation between a resident node's subscription and an incoming one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Relation {
    Equal,
    NodeCoversNew,
    NewCoversNode,
    Unrelated,
}

/// Arena payload: the parts of a node with per-subscription size. The
/// structural links live in the index's struct-of-arrays columns.
#[derive(Debug)]
struct NodeBody {
    sub: CompiledSubscription,
    subscribers: Vec<(SubscriptionId, ClientId)>,
}

/// The containment forest, arena-backed.
#[derive(Debug)]
pub struct PosetIndex {
    mem: MemorySim,
    nodes: SimArena<NodeBody>,
    // Struct-of-arrays link columns, index-parallel with `nodes`.
    // `NONE` (u32::MAX) means absent. Children form an intrusive doubly
    // linked list through first_child/next_sibling/prev_sibling so splices
    // are O(1) and allocation-free.
    first_child: Vec<u32>,
    next_sibling: Vec<u32>,
    prev_sibling: Vec<u32>,
    parent: Vec<u32>,
    /// Directory bucket this node roots under (valid whenever it exists;
    /// recomputed on slot reuse).
    dir_key: Vec<DirKey>,
    /// Position inside its directory bucket list while a root, else NONE.
    dir_pos: Vec<u32>,
    directory: RootDirectory,
    by_id: HashMap<SubscriptionId, u32>,
    /// Detached slots available for reuse (keeps footprint ∝ live nodes
    /// under churn — the arena itself is append-only).
    free: Vec<u32>,
    n_roots: usize,
    live: usize,
    // Reusable insertion/removal buffers (candidate probes, adoptions).
    cand_buf: Vec<u32>,
    adopt_buf: Vec<u32>,
}

impl PosetIndex {
    /// Creates an empty index storing nodes in `mem`.
    pub fn new(mem: &MemorySim) -> Self {
        PosetIndex {
            mem: mem.clone(),
            nodes: SimArena::with_stride(mem, NODE_STRIDE),
            first_child: Vec::new(),
            next_sibling: Vec::new(),
            prev_sibling: Vec::new(),
            parent: Vec::new(),
            dir_key: Vec::new(),
            dir_pos: Vec::new(),
            directory: RootDirectory::default(),
            by_id: HashMap::new(),
            free: Vec::new(),
            n_roots: 0,
            live: 0,
            cand_buf: Vec::new(),
            adopt_buf: Vec::new(),
        }
    }

    /// Number of root nodes (width of the forest).
    pub fn root_count(&self) -> usize {
        self.n_roots
    }

    /// Maximum depth of the forest (1 for a single layer; 0 when empty).
    pub fn depth(&self) -> usize {
        fn depth_of(index: &PosetIndex, node: u32) -> usize {
            let mut deepest = 0;
            let mut c = index.first_child[node as usize];
            while c != NONE {
                deepest = deepest.max(depth_of(index, c));
                c = index.next_sibling[c as usize];
            }
            1 + deepest
        }
        let mut max = 0;
        self.each_root(|r| max = max.max(depth_of(self, r)));
        max
    }

    /// Calls `f` on every root (all directory buckets).
    fn each_root(&self, mut f: impl FnMut(u32)) {
        for &r in &self.directory.top {
            f(r);
        }
        for bucket in self.directory.by_attr.values() {
            for list in bucket.eq.values() {
                for &r in list {
                    f(r);
                }
            }
            for &r in &bucket.ranges {
                f(r);
            }
        }
    }

    /// Reads a node charging traffic proportional to its constraint count.
    fn visit(&self, idx: u32) -> &NodeBody {
        let n_constraints = self.nodes.peek(idx).sub.len() as u64;
        let bytes = NODE_HEADER_BYTES + n_constraints * CONSTRAINT_BYTES;
        self.mem.charge_predicate_evals(n_constraints.max(1));
        self.nodes.read_partial(idx, bytes)
    }

    /// Compares the incoming subscription with a node's, charging the two
    /// covering checks.
    fn relate(&self, idx: u32, sub: &CompiledSubscription) -> Relation {
        let node = self.visit(idx);
        let node_covers = node.sub.covers(sub);
        let new_covers = sub.covers(&node.sub);
        match (node_covers, new_covers) {
            (true, true) => Relation::Equal,
            (true, false) => Relation::NodeCoversNew,
            (false, true) => Relation::NewCoversNode,
            (false, false) => Relation::Unrelated,
        }
    }

    /// Registers `idx` as a root in its directory bucket. O(1).
    fn root_add(&mut self, idx: u32) {
        let key = self.dir_key[idx as usize];
        let list = self.directory.list_mut(key);
        self.dir_pos[idx as usize] = list.len() as u32;
        list.push(idx);
        self.parent[idx as usize] = NONE;
        self.n_roots += 1;
    }

    /// Removes root `idx` from its directory bucket via position-indexed
    /// swap_remove. O(1), no subscription clone.
    fn root_remove(&mut self, idx: u32) {
        let key = self.dir_key[idx as usize];
        let pos = self.dir_pos[idx as usize] as usize;
        let list = self.directory.list_mut(key);
        list.swap_remove(pos);
        let moved = list.get(pos).copied();
        if let Some(m) = moved {
            self.dir_pos[m as usize] = pos as u32;
        }
        self.dir_pos[idx as usize] = NONE;
        self.n_roots -= 1;
    }

    /// Prepends `c` to `p`'s child list. O(1) pointer surgery.
    fn link_child(&mut self, p: u32, c: u32) {
        let head = self.first_child[p as usize];
        self.next_sibling[c as usize] = head;
        self.prev_sibling[c as usize] = NONE;
        if head != NONE {
            self.prev_sibling[head as usize] = c;
        }
        self.first_child[p as usize] = c;
        self.parent[c as usize] = p;
    }

    /// Unlinks `c` from its parent's child list. O(1).
    fn unlink_child(&mut self, c: u32) {
        let p = self.parent[c as usize];
        let prev = self.prev_sibling[c as usize];
        let next = self.next_sibling[c as usize];
        if prev != NONE {
            self.next_sibling[prev as usize] = next;
        } else if p != NONE {
            self.first_child[p as usize] = next;
        }
        if next != NONE {
            self.prev_sibling[next as usize] = prev;
        }
        self.next_sibling[c as usize] = NONE;
        self.prev_sibling[c as usize] = NONE;
        self.parent[c as usize] = NONE;
    }

    /// Appends a capped sample of `p`'s children to `out` without
    /// materialising the list.
    fn children_capped_into(&self, p: u32, salt: u64, out: &mut Vec<u32>) {
        let mut n = 0usize;
        let mut c = self.first_child[p as usize];
        while c != NONE {
            n += 1;
            c = self.next_sibling[c as usize];
        }
        if n == 0 {
            return;
        }
        let (stride, offset) = if n <= SCAN_CAP {
            (1, 0)
        } else {
            let stride = n.div_ceil(SCAN_CAP);
            (stride, (salt as usize) % stride)
        };
        let mut i = 0usize;
        let mut c = self.first_child[p as usize];
        while c != NONE {
            if i >= offset && (i - offset).is_multiple_of(stride) {
                out.push(c);
            }
            i += 1;
            c = self.next_sibling[c as usize];
        }
    }

    /// Allocates a node slot, recycling a detached one when available.
    fn alloc_node(
        &mut self,
        sub: CompiledSubscription,
        subscriber: (SubscriptionId, ClientId),
        key: DirKey,
    ) -> u32 {
        if let Some(idx) = self.free.pop() {
            let body = self.nodes.write(idx);
            body.sub = sub;
            body.subscribers.clear();
            body.subscribers.push(subscriber);
            let i = idx as usize;
            self.first_child[i] = NONE;
            self.next_sibling[i] = NONE;
            self.prev_sibling[i] = NONE;
            self.parent[i] = NONE;
            self.dir_key[i] = key;
            self.dir_pos[i] = NONE;
            idx
        } else {
            let idx = self.nodes.push(NodeBody { sub, subscribers: vec![subscriber] });
            self.first_child.push(NONE);
            self.next_sibling.push(NONE);
            self.prev_sibling.push(NONE);
            self.parent.push(NONE);
            self.dir_key.push(key);
            self.dir_pos.push(NONE);
            idx
        }
    }

    /// Detaches `idx` from the forest, splicing its children to its parent
    /// (or promoting them to roots), and returns the slot to the free list.
    fn detach(&mut self, idx: u32) {
        let p = self.parent[idx as usize];
        let mut kids = std::mem::take(&mut self.cand_buf);
        kids.clear();
        let mut c = self.first_child[idx as usize];
        while c != NONE {
            kids.push(c);
            c = self.next_sibling[c as usize];
        }
        if p != NONE {
            self.unlink_child(idx);
            for &k in &kids {
                self.link_child(p, k);
            }
        } else {
            self.root_remove(idx);
            for &k in &kids {
                let ki = k as usize;
                self.next_sibling[ki] = NONE;
                self.prev_sibling[ki] = NONE;
                self.parent[ki] = NONE;
                self.root_add(k);
            }
        }
        let i = idx as usize;
        self.first_child[i] = NONE;
        self.next_sibling[i] = NONE;
        self.prev_sibling[i] = NONE;
        self.parent[i] = NONE;
        self.nodes.write(idx).subscribers.clear();
        self.free.push(idx);
        self.cand_buf = kids;
    }
}

impl SubscriptionIndex for PosetIndex {
    fn insert(&mut self, id: SubscriptionId, client: ClientId, sub: CompiledSubscription) {
        // Descend to the deepest node covering `sub`. At the root level
        // only compatible directory buckets are consulted; below, children
        // lists are sampled directly.
        let salt = sub.fingerprint();
        let mut cands = std::mem::take(&mut self.cand_buf);
        let mut parent: u32 = NONE;
        let mut equal: u32 = NONE;
        loop {
            cands.clear();
            if parent == NONE {
                self.directory.cover_candidates_into(&sub, salt, &mut cands);
            } else {
                self.children_capped_into(parent, salt, &mut cands);
            }
            // Find a sibling that equals or covers the new subscription.
            let mut next: u32 = NONE;
            for &s in &cands {
                match self.relate(s, &sub) {
                    Relation::Equal => {
                        equal = s;
                        break;
                    }
                    Relation::NodeCoversNew => {
                        next = s;
                        break;
                    }
                    _ => {}
                }
            }
            if equal != NONE || next == NONE {
                break;
            }
            parent = next;
        }
        if equal != NONE {
            self.nodes.write(equal).subscribers.push((id, client));
            self.by_id.insert(id, equal);
            self.live += 1;
            self.cand_buf = cands;
            return;
        }

        // Place a new node under `parent`, adopting any siblings it covers.
        let key = DirKey::of(&sub);
        cands.clear();
        if parent == NONE {
            self.directory.adoption_candidates_into(key, salt, &mut cands);
        } else {
            self.children_capped_into(parent, salt, &mut cands);
        }
        let mut adopted = std::mem::take(&mut self.adopt_buf);
        adopted.clear();
        for &s in &cands {
            if self.relate(s, &sub) == Relation::NewCoversNode {
                adopted.push(s);
            }
        }
        let new_idx = self.alloc_node(sub, (id, client), key);
        for &a in &adopted {
            if parent == NONE {
                self.root_remove(a);
            } else {
                self.unlink_child(a);
            }
            self.link_child(new_idx, a);
        }
        if parent == NONE {
            self.root_add(new_idx);
        } else {
            self.link_child(parent, new_idx);
        }
        self.by_id.insert(id, new_idx);
        self.live += 1;
        self.cand_buf = cands;
        self.adopt_buf = adopted;
    }

    fn remove(&mut self, id: SubscriptionId) -> bool {
        let Some(idx) = self.by_id.remove(&id) else {
            return false;
        };
        {
            let node = self.nodes.write(idx);
            node.subscribers.retain(|(sid, _)| *sid != id);
        }
        if self.nodes.peek(idx).subscribers.is_empty() {
            self.detach(idx);
        }
        self.live -= 1;
        true
    }

    fn match_into(
        &self,
        header: &CompiledHeader,
        scratch: &mut MatchScratch,
        out: &mut Vec<ClientId>,
    ) {
        scratch.stack.clear();
        self.directory.seed_match(header, &mut scratch.stack);
        while let Some(idx) = scratch.stack.pop() {
            let node = self.visit(idx);
            if node.sub.matches(header) {
                out.extend(node.subscribers.iter().map(|(_, c)| *c));
                let mut c = self.first_child[idx as usize];
                while c != NONE {
                    scratch.stack.push(c);
                    c = self.next_sibling[c as usize];
                }
            }
            // A failed node prunes its whole subtree: every descendant is
            // covered by it, so none can match.
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    fn logical_bytes(&self) -> u64 {
        self.nodes.len() as u64 * NODE_STRIDE
    }

    fn kind(&self) -> IndexKind {
        IndexKind::Poset
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::attr::AttrSchema;
    use crate::subscription::SubscriptionSpec;

    #[test]
    fn conformance() {
        conformance_scenario(|mem| Box::new(PosetIndex::new(mem)));
    }

    #[test]
    fn containment_chain_forms_single_root() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = PosetIndex::new(&mem);
        // price > 0 ⊒ price > 10 ⊒ price > 20 ⊒ price > 30
        for (i, bound) in [0.0, 10.0, 20.0, 30.0].iter().enumerate() {
            index.insert(
                SubscriptionId(i as u64),
                ClientId(i as u64),
                sub(&schema, SubscriptionSpec::new().gt("price", *bound)),
            );
        }
        assert_eq!(index.root_count(), 1, "chain shares one root");
        assert_eq!(index.depth(), 4);
    }

    #[test]
    fn reverse_insertion_order_still_nests() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = PosetIndex::new(&mem);
        // Most specific first: the general one must adopt it on arrival.
        for (i, bound) in [30.0, 20.0, 10.0, 0.0].iter().enumerate() {
            index.insert(
                SubscriptionId(i as u64),
                ClientId(i as u64),
                sub(&schema, SubscriptionSpec::new().gt("price", *bound)),
            );
        }
        assert_eq!(index.root_count(), 1);
        assert_eq!(index.depth(), 4);
        let h = header(&schema, &[("price", 25.0.into())]);
        assert_eq!(matches(&index, &h), vec![1, 2, 3]);
    }

    #[test]
    fn equal_subscriptions_share_a_node() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = PosetIndex::new(&mem);
        for i in 0..5u64 {
            index.insert(
                SubscriptionId(i),
                ClientId(i),
                sub(&schema, SubscriptionSpec::new().eq("symbol", "HAL")),
            );
        }
        assert_eq!(index.len(), 5);
        assert_eq!(index.node_count(), 1, "five equal subs, one node");
        let h = header(&schema, &[("symbol", "HAL".into())]);
        assert_eq!(matches(&index, &h), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn canonically_equal_specs_share_a_node() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = PosetIndex::new(&mem);
        // Written differently, canonicalises identically.
        index.insert(
            SubscriptionId(0),
            ClientId(0),
            sub(&schema, SubscriptionSpec::new().ge("p", 1.0).le("p", 2.0)),
        );
        index.insert(
            SubscriptionId(1),
            ClientId(1),
            sub(&schema, SubscriptionSpec::new().between("p", 1.0, 2.0)),
        );
        assert_eq!(index.node_count(), 1);
    }

    #[test]
    fn pruning_skips_subtrees() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = PosetIndex::new(&mem);
        index.insert(
            SubscriptionId(0),
            ClientId(0),
            sub(&schema, SubscriptionSpec::new().eq("symbol", "HAL")),
        );
        for i in 1..=10u64 {
            index.insert(
                SubscriptionId(i),
                ClientId(i),
                sub(&schema, SubscriptionSpec::new().eq("symbol", "HAL").gt("price", i as f64)),
            );
        }
        // A non-HAL publication never leaves the directory: the HAL bucket
        // is skipped entirely, so no node is read at all.
        mem.reset_counters();
        let h = header(&schema, &[("symbol", "IBM".into()), ("price", 100.0.into())]);
        let mut out = Vec::new();
        index.match_header(&h, &mut out);
        assert!(out.is_empty());
        let pruned_reads = mem.stats().reads;
        assert_eq!(pruned_reads, 0, "directory seeding skips the whole forest");
        // A HAL publication walks the full 11-node subtree.
        mem.reset_counters();
        let h2 = header(&schema, &[("symbol", "HAL".into()), ("price", 100.0.into())]);
        index.match_header(&h2, &mut out);
        let full_reads = mem.stats().reads;
        assert!(full_reads >= 11, "full walk visits all nodes, saw {full_reads}");
    }

    #[test]
    fn removal_of_inner_node_reparents_children() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = PosetIndex::new(&mem);
        index.insert(
            SubscriptionId(0),
            ClientId(0),
            sub(&schema, SubscriptionSpec::new().gt("p", 0.0)),
        );
        index.insert(
            SubscriptionId(1),
            ClientId(1),
            sub(&schema, SubscriptionSpec::new().gt("p", 10.0)),
        );
        index.insert(
            SubscriptionId(2),
            ClientId(2),
            sub(&schema, SubscriptionSpec::new().gt("p", 20.0)),
        );
        assert!(index.remove(SubscriptionId(1)));
        // Chain 0 -> 2 must still match correctly.
        let h = header(&schema, &[("p", 25.0.into())]);
        assert_eq!(matches(&index, &h), vec![0, 2]);
        assert_eq!(index.depth(), 2);
    }

    #[test]
    fn removal_of_root_promotes_children_to_roots() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = PosetIndex::new(&mem);
        index.insert(
            SubscriptionId(0),
            ClientId(0),
            sub(&schema, SubscriptionSpec::new().gt("p", 0.0)),
        );
        index.insert(
            SubscriptionId(1),
            ClientId(1),
            sub(&schema, SubscriptionSpec::new().gt("p", 10.0)),
        );
        assert!(index.remove(SubscriptionId(0)));
        assert_eq!(index.root_count(), 1);
        let h = header(&schema, &[("p", 15.0.into())]);
        assert_eq!(matches(&index, &h), vec![1]);
    }

    #[test]
    fn shared_node_removal_keeps_other_subscriber() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = PosetIndex::new(&mem);
        let spec = || SubscriptionSpec::new().eq("s", "X");
        index.insert(SubscriptionId(0), ClientId(0), sub(&schema, spec()));
        index.insert(SubscriptionId(1), ClientId(1), sub(&schema, spec()));
        assert!(index.remove(SubscriptionId(0)));
        let h = header(&schema, &[("s", "X".into())]);
        assert_eq!(matches(&index, &h), vec![1]);
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn unrelated_subscriptions_become_roots() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = PosetIndex::new(&mem);
        for i in 0..10u64 {
            index.insert(
                SubscriptionId(i),
                ClientId(i),
                sub(&schema, SubscriptionSpec::new().eq("symbol", format!("S{i}").as_str())),
            );
        }
        assert_eq!(index.root_count(), 10, "distinct equalities don't nest");
        assert_eq!(index.depth(), 1);
    }

    #[test]
    fn churn_recycles_arena_slots() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = PosetIndex::new(&mem);
        // Heavy churn over distinct topics: every removal detaches a node
        // and the free list must recycle its slot, keeping the append-only
        // arena's footprint proportional to the live set.
        for round in 0..100u64 {
            index.insert(
                SubscriptionId(round),
                ClientId(round),
                sub(&schema, SubscriptionSpec::new().eq("topic", format!("t{round}").as_str())),
            );
            if round >= 4 {
                assert!(index.remove(SubscriptionId(round - 4)));
            }
        }
        assert_eq!(index.len(), 4);
        assert_eq!(index.node_count(), 4);
        assert!(
            index.logical_bytes() <= 16 * NODE_STRIDE,
            "arena grew past recycling: {} bytes",
            index.logical_bytes()
        );
        let h = header(&schema, &[("topic", "t97".into())]);
        assert_eq!(matches(&index, &h), vec![97]);
    }

    #[test]
    fn directory_seeding_visits_only_compatible_buckets() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = PosetIndex::new(&mem);
        // 200 distinct topic equalities plus one numeric-range root.
        for i in 0..200u64 {
            index.insert(
                SubscriptionId(i),
                ClientId(i),
                sub(&schema, SubscriptionSpec::new().eq("topic", format!("t{i}").as_str())),
            );
        }
        index.insert(
            SubscriptionId(1000),
            ClientId(1000),
            sub(&schema, SubscriptionSpec::new().gt("priority", 5i64)),
        );
        mem.reset_counters();
        let h = header(&schema, &[("topic", "t7".into()), ("priority", 9i64.into())]);
        assert_eq!(matches(&index, &h), vec![7, 1000]);
        // Two compatible roots seeded (t7's bucket + the priority range
        // list); each 72-byte visit touches two cache lines. The other 199
        // topic roots are never read — a full walk would cost ~400 reads.
        assert!(mem.stats().reads <= 6, "seeded match read {} lines", mem.stats().reads);
    }

    #[test]
    fn match_into_reuses_scratch_capacity() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = PosetIndex::new(&mem);
        for i in 0..50u64 {
            index.insert(
                SubscriptionId(i),
                ClientId(i),
                sub(&schema, SubscriptionSpec::new().gt("p", (50 - i as i64) as f64)),
            );
        }
        let h = header(&schema, &[("p", 100.0.into())]);
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        index.match_into(&h, &mut scratch, &mut out);
        assert_eq!(out.len(), 50);
        let retained = scratch.retained();
        assert!(retained > 0);
        for _ in 0..10 {
            out.clear();
            index.match_into(&h, &mut scratch, &mut out);
            assert_eq!(out.len(), 50);
        }
        assert_eq!(scratch.retained(), retained, "scratch capacity is stable");
    }

    #[test]
    fn agrees_with_naive_on_random_workload() {
        use crate::index::naive::NaiveIndex;
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut poset = PosetIndex::new(&mem);
        let mut naive = NaiveIndex::new(&mem);
        let mut rng = scbr_crypto::CryptoRng::from_seed(99);
        let symbols = ["A", "B", "C"];
        for i in 0..300u64 {
            let mut spec = SubscriptionSpec::new();
            if rng.chance(0.8) {
                spec = spec.eq("symbol", symbols[rng.below(3) as usize]);
            }
            if rng.chance(0.7) {
                let lo = rng.below(50) as f64;
                spec = spec.ge("price", lo).le("price", lo + rng.below(30) as f64);
            }
            if rng.chance(0.3) {
                spec = spec.gt("volume", rng.below(1000) as i64);
            }
            let compiled = sub(&schema, spec);
            poset.insert(SubscriptionId(i), ClientId(i), compiled.clone());
            naive.insert(SubscriptionId(i), ClientId(i), compiled);
        }
        for t in 0..100 {
            let h = header(
                &schema,
                &[
                    ("symbol", symbols[(t % 3) as usize].into()),
                    ("price", (((t * 7) % 80) as f64).into()),
                    ("volume", (((t * 13) % 1200) as i64).into()),
                ],
            );
            assert_eq!(matches(&poset, &h), matches(&naive, &h), "trial {t}");
        }
    }
}
