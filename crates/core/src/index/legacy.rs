//! Pre-arena containment poset, frozen as the "old" baseline.
//!
//! This is the PR-6-era [`poset`](super::poset) implementation kept
//! verbatim: per-node `Vec<u32>` child lists (pointer-chasing and a heap
//! allocation per structural edit), `sub.clone()` on detach/adopt, a fresh
//! root-list clone per match, and a full root-list walk for every
//! publication. It exists so `BENCH_million.json` can record `index_kind`
//! old vs arena on identical workloads, and so the equivalence proptests
//! can pin the arena rewrite against the original semantics.
//!
//! Subscriptions are organised in a forest ordered by the *covering*
//! relation: a node's subscription covers every subscription in its
//! subtree. Two properties follow:
//!
//! 1. **Pruned matching.** If a publication fails a node's constraints it
//!    cannot match anything below it (child matches ⇒ parent matches, by
//!    covering), so the whole subtree is skipped. Workloads whose
//!    subscriptions form deep chains (many equality predicates on few hot
//!    values — `e100a1`, `e100a1zz100` in Table 1) match fastest; workloads
//!    with many attributes form wide, shallow forests and degrade towards a
//!    linear scan (`e80a4`, `extsub4`), exactly the spread Figure 6 shows.
//! 2. **Shared nodes.** Equal subscriptions (after canonicalisation) share
//!    one node, shrinking the enclave-resident footprint — valuable when
//!    memory beyond the EPC costs 1000× (Figure 8).
//!
//! The forest is stored in a [`SimArena`] with the paper's ~432-byte node
//! footprint, so probes surface as cache misses and EPC faults in the
//! simulator.

use super::{
    IndexKind, MatchScratch, SubscriptionIndex, CONSTRAINT_BYTES, NODE_HEADER_BYTES, NODE_STRIDE,
};
use crate::attr::AttrId;
use crate::ids::{ClientId, SubscriptionId};
use crate::predicate::ConstraintSet;
use crate::publication::CompiledHeader;
use crate::subscription::CompiledSubscription;
use sgx_sim::{MemorySim, SimArena};
use std::collections::HashMap;

/// Root-level insertion accelerator.
///
/// A root can only cover an incoming subscription if the root's *first*
/// (minimum-id) constrained attribute is also constrained by the incoming
/// one, with a compatible constraint kind. Bucketing roots by that first
/// constraint (and, for string equalities, by hash) lets insertion consult
/// only compatible buckets instead of scanning every root — essential for
/// the paper's 500 000-subscription registration experiment (Figure 8).
///
/// **Matching is unaffected**: it still walks the full root list, as the
/// paper's engine does; the directory only accelerates housekeeping.
/// Upper bound on candidate nodes examined per sibling list during
/// insertion. A missed cover or adoption only flattens the forest (extra
/// roots), never breaks the parent-covers-child invariant; the cap keeps
/// per-registration work — and therefore the *memory touches the simulator
/// charges per registration* — bounded, matching the modest per-insert
/// footprint the paper's Figure 8 implies.
const SCAN_CAP: usize = 16;

#[derive(Debug, Default)]
struct RootDirectory {
    /// Roots with no constraints (match everything).
    top: Vec<u32>,
    by_attr: HashMap<AttrId, AttrBucket>,
}

#[derive(Debug, Default)]
struct AttrBucket {
    /// Roots whose first constraint is a string equality, by hash.
    eq: HashMap<u64, Vec<u32>>,
    /// Roots whose first constraint is a numeric range.
    ranges: Vec<u32>,
}

impl RootDirectory {
    fn key_of(sub: &CompiledSubscription) -> Option<(AttrId, Option<u64>)> {
        sub.constraints().first().map(|(attr, set)| match set {
            ConstraintSet::StrEq(h) => (*attr, Some(*h)),
            ConstraintSet::Range { .. } => (*attr, None),
        })
    }

    fn add(&mut self, idx: u32, sub: &CompiledSubscription) {
        match Self::key_of(sub) {
            None => self.top.push(idx),
            Some((attr, Some(h))) => {
                self.by_attr.entry(attr).or_default().eq.entry(h).or_default().push(idx)
            }
            Some((attr, None)) => self.by_attr.entry(attr).or_default().ranges.push(idx),
        }
    }

    fn remove(&mut self, idx: u32, sub: &CompiledSubscription) {
        match Self::key_of(sub) {
            None => self.top.retain(|&r| r != idx),
            Some((attr, Some(h))) => {
                if let Some(bucket) = self.by_attr.get_mut(&attr) {
                    if let Some(list) = bucket.eq.get_mut(&h) {
                        list.retain(|&r| r != idx);
                    }
                }
            }
            Some((attr, None)) => {
                if let Some(bucket) = self.by_attr.get_mut(&attr) {
                    bucket.ranges.retain(|&r| r != idx);
                }
            }
        }
    }

    /// Root indices that could possibly *cover* `sub`: a covering root's
    /// first attribute is one of `sub`'s, with a compatible kind. Each
    /// list contributes at most [`SCAN_CAP`] entries, sampled across the
    /// list with a subscription-dependent offset (see [`capped`]).
    fn cover_candidates(&self, sub: &CompiledSubscription, salt: u64) -> Vec<u32> {
        let mut out: Vec<u32> = capped(&self.top, salt);
        for (attr, set) in sub.constraints() {
            if let Some(bucket) = self.by_attr.get(attr) {
                match set {
                    ConstraintSet::StrEq(h) => {
                        if let Some(list) = bucket.eq.get(h) {
                            out.extend(capped(list, salt));
                        }
                    }
                    ConstraintSet::Range { .. } => out.extend(capped(&bucket.ranges, salt)),
                }
            }
        }
        out
    }

    /// Root indices `sub` might *adopt* (heuristic: only roots sharing
    /// `sub`'s first attribute — missing an adoption keeps the forest
    /// flatter but never breaks the parent-covers-child invariant).
    fn adoption_candidates(&self, sub: &CompiledSubscription, salt: u64) -> Vec<u32> {
        match Self::key_of(sub) {
            None => {
                // An empty subscription covers everything rooted anywhere.
                let mut all = capped(&self.top, salt);
                for bucket in self.by_attr.values() {
                    for list in bucket.eq.values() {
                        all.extend(capped(list, salt));
                    }
                    all.extend(capped(&bucket.ranges, salt));
                }
                all
            }
            Some((attr, key)) => match self.by_attr.get(&attr) {
                None => Vec::new(),
                Some(bucket) => match key {
                    Some(h) => bucket.eq.get(&h).map(|l| capped(l, salt)).unwrap_or_default(),
                    None => capped(&bucket.ranges, salt),
                },
            },
        }
    }
}

/// At most [`SCAN_CAP`] entries sampled *across* a candidate list (every
/// ⌈len/CAP⌉-th element). Sampling the whole list — rather than only its
/// most recent tail — mirrors a real poset insertion, whose sibling checks
/// land on nodes allocated throughout the index's lifetime. That access
/// pattern is what drives the paper's Figure 8: once the index outgrows
/// the EPC, insertion touches evicted pages and pays for swaps.
fn capped(list: &[u32], salt: u64) -> Vec<u32> {
    if list.len() <= SCAN_CAP {
        return list.to_vec();
    }
    let stride = list.len().div_ceil(SCAN_CAP);
    let offset = (salt as usize) % stride;
    list.iter().skip(offset).step_by(stride).copied().collect()
}

/// Relation between a resident node's subscription and an incoming one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Relation {
    Equal,
    NodeCoversNew,
    NewCoversNode,
    Unrelated,
}

#[derive(Debug)]
struct Node {
    sub: CompiledSubscription,
    subscribers: Vec<(SubscriptionId, ClientId)>,
    children: Vec<u32>,
    parent: Option<u32>,
    /// Detached nodes stay in the arena (append-only store) but leave the
    /// forest.
    detached: bool,
}

/// The containment forest.
#[derive(Debug)]
pub struct LegacyPosetIndex {
    mem: MemorySim,
    nodes: SimArena<Node>,
    roots: Vec<u32>,
    directory: RootDirectory,
    by_id: HashMap<SubscriptionId, u32>,
    live: usize,
}

impl LegacyPosetIndex {
    /// Creates an empty index storing nodes in `mem`.
    pub fn new(mem: &MemorySim) -> Self {
        LegacyPosetIndex {
            mem: mem.clone(),
            nodes: SimArena::with_stride(mem, NODE_STRIDE),
            roots: Vec::new(),
            directory: RootDirectory::default(),
            by_id: HashMap::new(),
            live: 0,
        }
    }

    /// Number of root nodes (width of the forest).
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Maximum depth of the forest (1 for a single layer; 0 when empty).
    pub fn depth(&self) -> usize {
        fn depth_of(index: &LegacyPosetIndex, node: u32) -> usize {
            1 + index
                .nodes
                .peek(node)
                .children
                .iter()
                .map(|&c| depth_of(index, c))
                .max()
                .unwrap_or(0)
        }
        self.roots.iter().map(|&r| depth_of(self, r)).max().unwrap_or(0)
    }

    /// Reads a node charging traffic proportional to its constraint count.
    fn visit(&self, idx: u32) -> &Node {
        let n_constraints = self.nodes.peek(idx).sub.len() as u64;
        let bytes = NODE_HEADER_BYTES + n_constraints * CONSTRAINT_BYTES;
        self.mem.charge_predicate_evals(n_constraints.max(1));
        self.nodes.read_partial(idx, bytes)
    }

    /// Compares the incoming subscription with a node's, charging the two
    /// covering checks.
    fn relate(&self, idx: u32, sub: &CompiledSubscription) -> Relation {
        let node = self.visit(idx);
        let node_covers = node.sub.covers(sub);
        let new_covers = sub.covers(&node.sub);
        match (node_covers, new_covers) {
            (true, true) => Relation::Equal,
            (true, false) => Relation::NodeCoversNew,
            (false, true) => Relation::NewCoversNode,
            (false, false) => Relation::Unrelated,
        }
    }

    /// Detaches `idx` from the forest, splicing its children to `parent`.
    fn detach(&mut self, idx: u32) {
        let (parent, children) = {
            let node = self.nodes.peek(idx);
            (node.parent, node.children.clone())
        };
        // Re-parent children.
        for &c in &children {
            self.nodes.write(c).parent = parent;
        }
        match parent {
            Some(p) => {
                let pn = self.nodes.write(p);
                pn.children.retain(|&c| c != idx);
                pn.children.extend_from_slice(&children);
            }
            None => {
                self.roots.retain(|&r| r != idx);
                let detached_sub = self.nodes.peek(idx).sub.clone();
                self.directory.remove(idx, &detached_sub);
                self.roots.extend_from_slice(&children);
                for &c in &children {
                    let child_sub = self.nodes.peek(c).sub.clone();
                    self.directory.add(c, &child_sub);
                }
            }
        }
        let node = self.nodes.write(idx);
        node.children.clear();
        node.parent = None;
        node.detached = true;
    }
}

impl SubscriptionIndex for LegacyPosetIndex {
    fn insert(&mut self, id: SubscriptionId, client: ClientId, sub: CompiledSubscription) {
        // Descend to the deepest node covering `sub`. At the root level
        // only compatible directory buckets are consulted; below, children
        // lists are scanned directly.
        let salt = sub.fingerprint();
        let mut parent: Option<u32> = None;
        loop {
            let siblings: Vec<u32> = match parent {
                Some(p) => capped(&self.nodes.peek(p).children, salt),
                None => self.directory.cover_candidates(&sub, salt),
            };
            // Find a sibling that equals or covers the new subscription.
            let mut next: Option<u32> = None;
            let mut equal: Option<u32> = None;
            for &s in siblings.iter() {
                match self.relate(s, &sub) {
                    Relation::Equal => {
                        equal = Some(s);
                        break;
                    }
                    Relation::NodeCoversNew => {
                        next = Some(s);
                        break;
                    }
                    _ => {}
                }
            }
            if let Some(e) = equal {
                self.nodes.write(e).subscribers.push((id, client));
                self.by_id.insert(id, e);
                self.live += 1;
                return;
            }
            match next {
                Some(n) => parent = Some(n),
                None => break,
            }
        }

        // Place a new node under `parent`, adopting any siblings it covers.
        let candidates: Vec<u32> = match parent {
            Some(p) => capped(&self.nodes.peek(p).children, salt),
            None => self.directory.adoption_candidates(&sub, salt),
        };
        let mut adopted = Vec::new();
        for s in candidates {
            if self.relate(s, &sub) == Relation::NewCoversNode {
                adopted.push(s);
            }
        }
        let new_idx = self.nodes.push(Node {
            sub: sub.clone(),
            subscribers: vec![(id, client)],
            children: adopted.clone(),
            parent,
            detached: false,
        });
        for &a in &adopted {
            self.nodes.write(a).parent = Some(new_idx);
        }
        match parent {
            Some(p) => {
                let pn = self.nodes.write(p);
                pn.children.retain(|c| !adopted.contains(c));
                pn.children.push(new_idx);
            }
            None => {
                for &a in &adopted {
                    self.roots.retain(|r| *r != a);
                    let adopted_sub = self.nodes.peek(a).sub.clone();
                    self.directory.remove(a, &adopted_sub);
                }
                self.roots.push(new_idx);
                self.directory.add(new_idx, &sub);
            }
        }
        self.by_id.insert(id, new_idx);
        self.live += 1;
    }

    fn remove(&mut self, id: SubscriptionId) -> bool {
        let Some(idx) = self.by_id.remove(&id) else {
            return false;
        };
        {
            let node = self.nodes.write(idx);
            node.subscribers.retain(|(sid, _)| *sid != id);
        }
        let now_empty = self.nodes.peek(idx).subscribers.is_empty();
        if now_empty {
            self.detach(idx);
        }
        self.live -= 1;
        true
    }

    // lint: allow(SL03, frozen pre-arena baseline - allocates per call by design)
    fn match_into(
        &self,
        header: &CompiledHeader,
        _scratch: &mut MatchScratch,
        out: &mut Vec<ClientId>,
    ) {
        // Deliberately unchanged from the pre-arena engine: allocates a
        // fresh stack per call and walks every root.
        let mut stack: Vec<u32> = self.roots.clone();
        while let Some(idx) = stack.pop() {
            let node = self.visit(idx);
            if node.sub.matches(header) {
                out.extend(node.subscribers.iter().map(|(_, c)| *c));
                stack.extend_from_slice(&node.children);
            }
            // A failed node prunes its whole subtree: every descendant is
            // covered by it, so none can match.
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn logical_bytes(&self) -> u64 {
        self.nodes.len() as u64 * NODE_STRIDE
    }

    fn kind(&self) -> IndexKind {
        IndexKind::PosetLegacy
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::attr::AttrSchema;
    use crate::subscription::SubscriptionSpec;

    #[test]
    fn conformance() {
        conformance_scenario(|mem| Box::new(LegacyPosetIndex::new(mem)));
    }

    #[test]
    fn containment_chain_forms_single_root() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = LegacyPosetIndex::new(&mem);
        // price > 0 ⊒ price > 10 ⊒ price > 20 ⊒ price > 30
        for (i, bound) in [0.0, 10.0, 20.0, 30.0].iter().enumerate() {
            index.insert(
                SubscriptionId(i as u64),
                ClientId(i as u64),
                sub(&schema, SubscriptionSpec::new().gt("price", *bound)),
            );
        }
        assert_eq!(index.root_count(), 1, "chain shares one root");
        assert_eq!(index.depth(), 4);
    }

    #[test]
    fn reverse_insertion_order_still_nests() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = LegacyPosetIndex::new(&mem);
        // Most specific first: the general one must adopt it on arrival.
        for (i, bound) in [30.0, 20.0, 10.0, 0.0].iter().enumerate() {
            index.insert(
                SubscriptionId(i as u64),
                ClientId(i as u64),
                sub(&schema, SubscriptionSpec::new().gt("price", *bound)),
            );
        }
        assert_eq!(index.root_count(), 1);
        assert_eq!(index.depth(), 4);
        let h = header(&schema, &[("price", 25.0.into())]);
        assert_eq!(matches(&index, &h), vec![1, 2, 3]);
    }

    #[test]
    fn equal_subscriptions_share_a_node() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = LegacyPosetIndex::new(&mem);
        for i in 0..5u64 {
            index.insert(
                SubscriptionId(i),
                ClientId(i),
                sub(&schema, SubscriptionSpec::new().eq("symbol", "HAL")),
            );
        }
        assert_eq!(index.len(), 5);
        assert_eq!(index.node_count(), 1, "five equal subs, one node");
        let h = header(&schema, &[("symbol", "HAL".into())]);
        assert_eq!(matches(&index, &h), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn canonically_equal_specs_share_a_node() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = LegacyPosetIndex::new(&mem);
        // Written differently, canonicalises identically.
        index.insert(
            SubscriptionId(0),
            ClientId(0),
            sub(&schema, SubscriptionSpec::new().ge("p", 1.0).le("p", 2.0)),
        );
        index.insert(
            SubscriptionId(1),
            ClientId(1),
            sub(&schema, SubscriptionSpec::new().between("p", 1.0, 2.0)),
        );
        assert_eq!(index.node_count(), 1);
    }

    #[test]
    fn pruning_skips_subtrees() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = LegacyPosetIndex::new(&mem);
        index.insert(
            SubscriptionId(0),
            ClientId(0),
            sub(&schema, SubscriptionSpec::new().eq("symbol", "HAL")),
        );
        for i in 1..=10u64 {
            index.insert(
                SubscriptionId(i),
                ClientId(i),
                sub(&schema, SubscriptionSpec::new().eq("symbol", "HAL").gt("price", i as f64)),
            );
        }
        // A non-HAL publication must only evaluate the root.
        mem.reset_counters();
        let h = header(&schema, &[("symbol", "IBM".into()), ("price", 100.0.into())]);
        let mut out = Vec::new();
        index.match_header(&h, &mut out);
        assert!(out.is_empty());
        // Only the root was visited: one partial node read. Compare against
        // a header that matches everything (visits all 11 nodes).
        let pruned_reads = mem.stats().reads;
        mem.reset_counters();
        let h2 = header(&schema, &[("symbol", "HAL".into()), ("price", 100.0.into())]);
        index.match_header(&h2, &mut out);
        let full_reads = mem.stats().reads;
        assert!(full_reads >= 5 * pruned_reads, "pruned {pruned_reads} vs full {full_reads}");
    }

    #[test]
    fn removal_of_inner_node_reparents_children() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = LegacyPosetIndex::new(&mem);
        index.insert(
            SubscriptionId(0),
            ClientId(0),
            sub(&schema, SubscriptionSpec::new().gt("p", 0.0)),
        );
        index.insert(
            SubscriptionId(1),
            ClientId(1),
            sub(&schema, SubscriptionSpec::new().gt("p", 10.0)),
        );
        index.insert(
            SubscriptionId(2),
            ClientId(2),
            sub(&schema, SubscriptionSpec::new().gt("p", 20.0)),
        );
        assert!(index.remove(SubscriptionId(1)));
        // Chain 0 -> 2 must still match correctly.
        let h = header(&schema, &[("p", 25.0.into())]);
        assert_eq!(matches(&index, &h), vec![0, 2]);
        assert_eq!(index.depth(), 2);
    }

    #[test]
    fn removal_of_root_promotes_children_to_roots() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = LegacyPosetIndex::new(&mem);
        index.insert(
            SubscriptionId(0),
            ClientId(0),
            sub(&schema, SubscriptionSpec::new().gt("p", 0.0)),
        );
        index.insert(
            SubscriptionId(1),
            ClientId(1),
            sub(&schema, SubscriptionSpec::new().gt("p", 10.0)),
        );
        assert!(index.remove(SubscriptionId(0)));
        assert_eq!(index.root_count(), 1);
        let h = header(&schema, &[("p", 15.0.into())]);
        assert_eq!(matches(&index, &h), vec![1]);
    }

    #[test]
    fn shared_node_removal_keeps_other_subscriber() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = LegacyPosetIndex::new(&mem);
        let spec = || SubscriptionSpec::new().eq("s", "X");
        index.insert(SubscriptionId(0), ClientId(0), sub(&schema, spec()));
        index.insert(SubscriptionId(1), ClientId(1), sub(&schema, spec()));
        assert!(index.remove(SubscriptionId(0)));
        let h = header(&schema, &[("s", "X".into())]);
        assert_eq!(matches(&index, &h), vec![1]);
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn unrelated_subscriptions_become_roots() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = LegacyPosetIndex::new(&mem);
        for i in 0..10u64 {
            index.insert(
                SubscriptionId(i),
                ClientId(i),
                sub(&schema, SubscriptionSpec::new().eq("symbol", format!("S{i}").as_str())),
            );
        }
        assert_eq!(index.root_count(), 10, "distinct equalities don't nest");
        assert_eq!(index.depth(), 1);
    }

    #[test]
    fn agrees_with_naive_on_random_workload() {
        use crate::index::naive::NaiveIndex;
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut poset = LegacyPosetIndex::new(&mem);
        let mut naive = NaiveIndex::new(&mem);
        let mut rng = scbr_crypto::CryptoRng::from_seed(99);
        let symbols = ["A", "B", "C"];
        for i in 0..300u64 {
            let mut spec = SubscriptionSpec::new();
            if rng.chance(0.8) {
                spec = spec.eq("symbol", symbols[rng.below(3) as usize]);
            }
            if rng.chance(0.7) {
                let lo = rng.below(50) as f64;
                spec = spec.ge("price", lo).le("price", lo + rng.below(30) as f64);
            }
            if rng.chance(0.3) {
                spec = spec.gt("volume", rng.below(1000) as i64);
            }
            let compiled = sub(&schema, spec);
            poset.insert(SubscriptionId(i), ClientId(i), compiled.clone());
            naive.insert(SubscriptionId(i), ClientId(i), compiled);
        }
        for t in 0..100 {
            let h = header(
                &schema,
                &[
                    ("symbol", symbols[(t % 3) as usize].into()),
                    ("price", (((t * 7) % 80) as f64).into()),
                    ("volume", (((t * 13) % 1200) as i64).into()),
                ],
            );
            assert_eq!(matches(&poset, &h), matches(&naive, &h), "trial {t}");
        }
    }
}
