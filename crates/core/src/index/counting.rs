//! Counting-algorithm subscription index.
//!
//! The classic alternative to containment forests (used by Gryphon and
//! others, and discussed in the paper's related work through \[17\]): every
//! constraint is posted to a per-attribute list; matching evaluates each
//! publication attribute against its postings and counts, per
//! subscription, how many constraints were satisfied. A subscription
//! matches when its full constraint count is reached.
//!
//! Included as an ablation point: it trades the poset's pruning for
//! attribute-local processing, which wins when publications carry few of
//! the constrained attributes and loses on deep containment workloads.

use super::{IndexKind, MatchScratch, SubscriptionIndex, CONSTRAINT_BYTES, NODE_HEADER_BYTES};
use crate::attr::AttrId;
use crate::ids::{ClientId, SubscriptionId};
use crate::predicate::ConstraintSet;
use crate::publication::CompiledHeader;
use crate::subscription::CompiledSubscription;
use sgx_sim::{MemorySim, SimArena};
use std::collections::HashMap;

/// Logical footprint of a subscription record (ids + count + flags).
const ENTRY_STRIDE: u64 = NODE_HEADER_BYTES;
/// Logical footprint of one posting (constraint + owner).
const POSTING_STRIDE: u64 = CONSTRAINT_BYTES + 8;

#[derive(Debug)]
struct SubEntry {
    id: SubscriptionId,
    client: ClientId,
    needed: u16,
    alive: bool,
}

#[derive(Debug, Clone, Copy)]
struct Posting {
    set: ConstraintSet,
    sub: u32,
}

/// Counting-based index with per-attribute posting lists.
#[derive(Debug)]
pub struct CountingIndex {
    mem: MemorySim,
    entries: SimArena<SubEntry>,
    postings: SimArena<Posting>,
    by_attr: HashMap<AttrId, Vec<u32>>,
    /// Subscriptions with zero constraints match every publication.
    unconstrained: Vec<u32>,
    by_id: HashMap<SubscriptionId, u32>,
    live: usize,
}

impl CountingIndex {
    /// Creates an empty index storing entries and postings in `mem`.
    pub fn new(mem: &MemorySim) -> Self {
        CountingIndex {
            mem: mem.clone(),
            entries: SimArena::with_stride(mem, ENTRY_STRIDE),
            postings: SimArena::with_stride(mem, POSTING_STRIDE),
            by_attr: HashMap::new(),
            unconstrained: Vec::new(),
            by_id: HashMap::new(),
            live: 0,
        }
    }
}

impl SubscriptionIndex for CountingIndex {
    fn insert(&mut self, id: SubscriptionId, client: ClientId, sub: CompiledSubscription) {
        let needed = sub.len() as u16;
        let entry_idx = self.entries.push(SubEntry { id, client, needed, alive: true });
        for (attr, set) in sub.constraints() {
            let p = self.postings.push(Posting { set: *set, sub: entry_idx });
            self.by_attr.entry(*attr).or_default().push(p);
        }
        if needed == 0 {
            self.unconstrained.push(entry_idx);
        }
        self.by_id.insert(id, entry_idx);
        self.live += 1;
    }

    fn remove(&mut self, id: SubscriptionId) -> bool {
        match self.by_id.remove(&id) {
            Some(idx) => {
                let entry = self.entries.write(idx);
                debug_assert_eq!(entry.id, id, "id map out of sync");
                entry.alive = false;
                self.unconstrained.retain(|&u| u != idx);
                self.live -= 1;
                true
            }
            None => false,
        }
    }

    fn match_into(
        &self,
        header: &CompiledHeader,
        scratch: &mut MatchScratch,
        out: &mut Vec<ClientId>,
    ) {
        // The caller-owned scratch carries the epoch-stamped satisfaction
        // counters; resizing only happens while the index is still growing,
        // so steady-state matching allocates nothing.
        scratch.epoch += 1;
        let epoch = scratch.epoch;
        if scratch.counts.len() < self.entries.len() {
            scratch.counts.resize(self.entries.len(), (0, 0));
        }
        for (attr, scalar) in header.entries() {
            let Some(list) = self.by_attr.get(attr) else { continue };
            for &p in list {
                let posting = self.postings.read(p);
                self.mem.charge_predicate_evals(1);
                if posting.set.matches(scalar) {
                    let slot = &mut scratch.counts[posting.sub as usize];
                    if slot.0 != epoch {
                        *slot = (epoch, 0);
                    }
                    slot.1 += 1;
                    // Resolve on the last satisfied constraint.
                    let entry = self.entries.read(posting.sub);
                    if entry.alive && entry.needed == slot.1 {
                        out.push(entry.client);
                    }
                }
            }
        }
        for &u in &self.unconstrained {
            let entry = self.entries.read(u);
            if entry.alive {
                out.push(entry.client);
            }
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn node_count(&self) -> usize {
        self.entries.len()
    }

    fn logical_bytes(&self) -> u64 {
        self.entries.len() as u64 * ENTRY_STRIDE + self.postings.len() as u64 * POSTING_STRIDE
    }

    fn kind(&self) -> IndexKind {
        IndexKind::Counting
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::attr::AttrSchema;
    use crate::subscription::SubscriptionSpec;

    #[test]
    fn conformance() {
        conformance_scenario(|mem| Box::new(CountingIndex::new(mem)));
    }

    #[test]
    fn counts_require_all_constraints() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = CountingIndex::new(&mem);
        index.insert(
            SubscriptionId(0),
            ClientId(0),
            sub(&schema, SubscriptionSpec::new().eq("a", 1i64).eq("b", 2i64).eq("c", 3i64)),
        );
        // Two of three constraints satisfied: no match.
        let partial =
            header(&schema, &[("a", 1i64.into()), ("b", 2i64.into()), ("c", 9i64.into())]);
        assert!(matches(&index, &partial).is_empty());
        let full = header(&schema, &[("a", 1i64.into()), ("b", 2i64.into()), ("c", 3i64.into())]);
        assert_eq!(matches(&index, &full), vec![0]);
    }

    #[test]
    fn epoch_reset_between_matches() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = CountingIndex::new(&mem);
        index.insert(
            SubscriptionId(0),
            ClientId(0),
            sub(&schema, SubscriptionSpec::new().eq("a", 1i64).eq("b", 2i64)),
        );
        // First match satisfies only `a`; second only `b`. Stale counts must
        // not combine across publications.
        let h1 = header(&schema, &[("a", 1i64.into())]);
        let h2 = header(&schema, &[("b", 2i64.into())]);
        assert!(matches(&index, &h1).is_empty());
        assert!(matches(&index, &h2).is_empty());
    }

    #[test]
    fn logical_bytes_counts_postings() {
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut index = CountingIndex::new(&mem);
        index.insert(
            SubscriptionId(0),
            ClientId(0),
            sub(&schema, SubscriptionSpec::new().eq("a", 1i64).eq("b", 2i64)),
        );
        assert_eq!(index.logical_bytes(), ENTRY_STRIDE + 2 * POSTING_STRIDE);
    }

    #[test]
    fn agrees_with_naive_on_random_workload() {
        use crate::index::naive::NaiveIndex;
        let mem = free_mem();
        let schema = AttrSchema::new();
        let mut counting = CountingIndex::new(&mem);
        let mut naive = NaiveIndex::new(&mem);
        let mut rng = scbr_crypto::CryptoRng::from_seed(7);
        let symbols = ["A", "B", "C", "D"];
        for i in 0..200u64 {
            let mut spec = SubscriptionSpec::new();
            if rng.chance(0.7) {
                spec = spec.eq("symbol", symbols[rng.below(4) as usize]);
            }
            if rng.chance(0.6) {
                spec = spec.lt("price", rng.below(100) as f64);
            }
            if rng.chance(0.2) {
                spec = spec.ge("volume", rng.below(500) as i64);
            }
            let compiled = sub(&schema, spec);
            counting.insert(SubscriptionId(i), ClientId(i), compiled.clone());
            naive.insert(SubscriptionId(i), ClientId(i), compiled);
        }
        // Remove a random third from both.
        for i in (0..200u64).step_by(3) {
            counting.remove(SubscriptionId(i));
            naive.remove(SubscriptionId(i));
        }
        for t in 0..60 {
            let h = header(
                &schema,
                &[
                    ("symbol", symbols[(t % 4) as usize].into()),
                    ("price", (((t * 11) % 120) as f64).into()),
                    ("volume", (((t * 17) % 700) as i64).into()),
                ],
            );
            assert_eq!(matches(&counting, &h), matches(&naive, &h), "trial {t}");
        }
    }
}
