//! Subscription indexes: the data structures the routing engine matches
//! against.
//!
//! Four implementations with one interface:
//!
//! * [`poset::PosetIndex`] — the paper's containment-based
//!   index (à la Siena) rebuilt on an arena layout: subscriptions form a
//!   forest ordered by covering, matching prunes entire subtrees whose
//!   root fails, and the root directory seeds each match with only the
//!   buckets compatible with the publication's attributes.
//! * [`legacy::LegacyPosetIndex`] — the pre-arena poset kept verbatim as
//!   the "old" baseline for the `BENCH_million.json` before/after rows.
//! * [`naive::NaiveIndex`] — a linear scan, the correctness
//!   oracle and worst-case baseline.
//! * [`counting::CountingIndex`] — a classic
//!   counting-algorithm engine with per-attribute posting lists, used for
//!   the ablation study in `DESIGN.md`.
//!
//! All indexes store their nodes in [`sgx_sim::SimArena`]s so every probe
//! is charged to the owning [`sgx_sim::MemorySim`] — that is what lets the
//! benchmarks observe cache-miss knees and EPC paging exactly where the
//! paper does.
//!
//! The hot path is [`SubscriptionIndex::match_into`]: it threads a
//! caller-owned [`MatchScratch`] through the traversal so steady-state
//! matching performs no heap allocation. [`SubscriptionIndex::match_header`]
//! is a convenience wrapper that conjures a scratch per call.

pub mod counting;
pub mod legacy;
pub mod naive;
pub mod poset;

use crate::ids::{ClientId, SubscriptionId};
use crate::publication::CompiledHeader;
use crate::subscription::CompiledSubscription;

pub use counting::CountingIndex;
pub use legacy::LegacyPosetIndex;
pub use naive::NaiveIndex;
pub use poset::PosetIndex;

/// Reusable per-engine traversal state threaded through
/// [`SubscriptionIndex::match_into`].
///
/// Holds the poset DFS stack and the counting index's epoch-stamped
/// satisfaction counters (its dedup "bitmap"): after a short warm-up the
/// buffers reach their high-water mark and matching allocates nothing.
/// One scratch may be shared across index kinds; each implementation
/// resizes only the parts it uses.
#[derive(Debug, Default)]
pub struct MatchScratch {
    /// DFS work list (poset traversal).
    pub(crate) stack: Vec<u32>,
    /// `(epoch, satisfied)` per arena entry (counting index). A stale
    /// epoch reads as zero, so clearing between matches is O(1).
    pub(crate) counts: Vec<(u64, u16)>,
    /// Current stamp for `counts` validity.
    pub(crate) epoch: u64,
}

impl MatchScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Capacity currently retained by the scratch, in entries.
    pub fn retained(&self) -> usize {
        self.stack.capacity() + self.counts.capacity()
    }
}

/// Logical bytes charged for a node header (ids, counts, links).
pub(crate) const NODE_HEADER_BYTES: u64 = 48;
/// Logical bytes charged per stored constraint.
pub(crate) const CONSTRAINT_BYTES: u64 = 24;
/// Logical node stride: header plus the full inline constraint array. With
/// [`crate::subscription::MAX_CONSTRAINTS`] = 16 this is 432 bytes — the
/// paper reports 10 k subscriptions ≈ 4.37 MB, i.e. ~437 B each.
pub(crate) const NODE_STRIDE: u64 =
    NODE_HEADER_BYTES + crate::subscription::MAX_CONSTRAINTS as u64 * CONSTRAINT_BYTES;

/// Which index implementation to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Containment poset (the paper's engine), arena-backed.
    Poset,
    /// Pre-arena containment poset, kept as the before/after baseline.
    PosetLegacy,
    /// Linear scan baseline.
    Naive,
    /// Counting algorithm with per-attribute postings.
    Counting,
}

/// Common interface of all subscription indexes.
pub trait SubscriptionIndex: Send {
    /// Registers a subscription for `client`.
    fn insert(&mut self, id: SubscriptionId, client: ClientId, sub: CompiledSubscription);

    /// Unregisters subscription `id`. Returns whether it existed.
    fn remove(&mut self, id: SubscriptionId) -> bool;

    /// Appends the clients whose subscriptions match `header` to `out`
    /// (duplicates possible when one client registered several matching
    /// subscriptions; callers dedup), reusing `scratch` for all traversal
    /// state. Steady-state calls must not allocate.
    fn match_into(
        &self,
        header: &CompiledHeader,
        scratch: &mut MatchScratch,
        out: &mut Vec<ClientId>,
    );

    /// Convenience wrapper around [`Self::match_into`] with a throwaway
    /// scratch (an unused `Vec` does not allocate, so this is only costly
    /// once the traversal actually grows the buffers).
    fn match_header(&self, header: &CompiledHeader, out: &mut Vec<ClientId>) {
        let mut scratch = MatchScratch::new();
        self.match_into(header, &mut scratch, out);
    }

    /// Number of live subscriptions.
    fn len(&self) -> usize;

    /// True when no subscription is registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of structural nodes (≤ `len` when equal subscriptions share a
    /// node; ≥ `len` only never).
    fn node_count(&self) -> usize;

    /// Simulated memory footprint in bytes.
    fn logical_bytes(&self) -> u64;

    /// Which implementation this is.
    fn kind(&self) -> IndexKind;
}

/// Constructs an index of the requested kind on the given memory.
pub fn new_index(kind: IndexKind, mem: &sgx_sim::MemorySim) -> Box<dyn SubscriptionIndex> {
    match kind {
        IndexKind::Poset => Box::new(PosetIndex::new(mem)),
        IndexKind::PosetLegacy => Box::new(LegacyPosetIndex::new(mem)),
        IndexKind::Naive => Box::new(NaiveIndex::new(mem)),
        IndexKind::Counting => Box::new(CountingIndex::new(mem)),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for index tests.

    use super::*;
    use crate::attr::AttrSchema;
    use crate::publication::PublicationSpec;
    use crate::subscription::SubscriptionSpec;
    use sgx_sim::{CostModel, MemorySim};

    /// A memory simulator with zero costs (functional tests).
    pub fn free_mem() -> MemorySim {
        MemorySim::native(sgx_sim::CacheConfig::default(), CostModel::free())
    }

    /// Compiles a subscription spec.
    pub fn sub(schema: &AttrSchema, spec: SubscriptionSpec) -> CompiledSubscription {
        spec.compile(schema).unwrap()
    }

    /// Compiles a header from name/value pairs.
    pub fn header(schema: &AttrSchema, attrs: &[(&str, crate::value::Value)]) -> CompiledHeader {
        let mut spec = PublicationSpec::new();
        for (n, v) in attrs {
            spec = spec.attr(n, v.clone());
        }
        spec.compile_header(schema).unwrap()
    }

    /// Matches and returns sorted, deduplicated client ids.
    pub fn matches(index: &dyn SubscriptionIndex, header: &CompiledHeader) -> Vec<u64> {
        let mut out = Vec::new();
        index.match_header(header, &mut out);
        let mut ids: Vec<u64> = out.into_iter().map(|c| c.0).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Exercises one index implementation against a fixed scenario; used by
    /// each implementation's test module so all three stay in lockstep.
    pub fn conformance_scenario(make: impl Fn(&MemorySim) -> Box<dyn SubscriptionIndex>) {
        let schema = AttrSchema::new();
        let mem = free_mem();
        let mut index = make(&mem);

        // A containment chain plus unrelated subscriptions.
        index.insert(
            SubscriptionId(1),
            ClientId(1),
            sub(&schema, SubscriptionSpec::new().gt("price", 0.0)),
        );
        index.insert(
            SubscriptionId(2),
            ClientId(2),
            sub(&schema, SubscriptionSpec::new().gt("price", 10.0)),
        );
        index.insert(
            SubscriptionId(3),
            ClientId(3),
            sub(&schema, SubscriptionSpec::new().gt("price", 10.0).eq("symbol", "HAL")),
        );
        index.insert(
            SubscriptionId(4),
            ClientId(4),
            sub(&schema, SubscriptionSpec::new().eq("symbol", "IBM")),
        );
        index.insert(
            SubscriptionId(5),
            ClientId(5),
            sub(&schema, SubscriptionSpec::new()), // matches everything
        );
        assert_eq!(index.len(), 5);

        let h = header(&schema, &[("price", 15.0.into()), ("symbol", "HAL".into())]);
        assert_eq!(matches(index.as_ref(), &h), vec![1, 2, 3, 5]);

        let h2 = header(&schema, &[("price", 5.0.into()), ("symbol", "IBM".into())]);
        assert_eq!(matches(index.as_ref(), &h2), vec![1, 4, 5]);

        let h3 = header(&schema, &[("volume", 1i64.into())]);
        assert_eq!(matches(index.as_ref(), &h3), vec![5]);

        // Removal.
        assert!(index.remove(SubscriptionId(2)));
        assert!(!index.remove(SubscriptionId(2)), "double remove is false");
        assert_eq!(index.len(), 4);
        assert_eq!(matches(index.as_ref(), &h), vec![1, 3, 5]);

        // Removing an inner node must not orphan its descendants.
        assert!(index.remove(SubscriptionId(1)));
        assert_eq!(matches(index.as_ref(), &h), vec![3, 5]);

        // Duplicate subscriptions from different clients.
        index.insert(
            SubscriptionId(6),
            ClientId(6),
            sub(&schema, SubscriptionSpec::new().eq("symbol", "IBM")),
        );
        assert_eq!(matches(index.as_ref(), &h2), vec![4, 5, 6]);
    }
}
