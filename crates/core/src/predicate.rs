//! Predicates, canonical constraints, and their containment relation.
//!
//! A subscription is a conjunction of predicates over attributes. For
//! matching and containment purposes every attribute's predicates are
//! canonicalised into a single [`ConstraintSet`]: a (possibly half-open)
//! interval for numeric attributes, or an equality test for strings.
//!
//! Containment ("covering" in Siena terminology) is the workhorse of the
//! SCBR index: subscription *A covers B* when every event matching B also
//! matches A. The index exploits this to prune whole subtrees during
//! matching.

use crate::value::{Scalar, ValueKind};
use std::cmp::Ordering;
use std::fmt;

/// Comparison operator of a raw predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Equal.
    Eq,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Eq => "=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// One endpoint of a numeric interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bound {
    /// No bound on this side.
    Unbounded,
    /// Endpoint included.
    Inclusive(Scalar),
    /// Endpoint excluded.
    Exclusive(Scalar),
}

impl Bound {
    /// The scalar at this bound, if any.
    pub fn scalar(&self) -> Option<&Scalar> {
        match self {
            Bound::Unbounded => None,
            Bound::Inclusive(s) | Bound::Exclusive(s) => Some(s),
        }
    }
}

/// Canonical constraint over one attribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstraintSet {
    /// Numeric interval `lo .. hi` (either side may be unbounded).
    Range {
        /// Lower endpoint.
        lo: Bound,
        /// Upper endpoint.
        hi: Bound,
    },
    /// String equality, compiled to an FNV-1a hash.
    StrEq(u64),
}

impl ConstraintSet {
    /// An unbounded numeric range (matches any value of the right kind).
    pub fn any_range() -> Self {
        ConstraintSet::Range { lo: Bound::Unbounded, hi: Bound::Unbounded }
    }

    /// Point equality on a numeric scalar.
    pub fn point(s: Scalar) -> Self {
        ConstraintSet::Range { lo: Bound::Inclusive(s), hi: Bound::Inclusive(s) }
    }

    /// Does `value` satisfy this constraint? Kind mismatches never match.
    pub fn matches(&self, value: &Scalar) -> bool {
        match self {
            ConstraintSet::StrEq(h) => matches!(value, Scalar::Str(v) if v == h),
            ConstraintSet::Range { lo, hi } => {
                let lo_ok = match lo {
                    Bound::Unbounded => !matches!(value, Scalar::Str(_)),
                    Bound::Inclusive(s) => {
                        matches!(value.order(s), Some(Ordering::Greater | Ordering::Equal))
                    }
                    Bound::Exclusive(s) => matches!(value.order(s), Some(Ordering::Greater)),
                };
                let hi_ok = match hi {
                    Bound::Unbounded => !matches!(value, Scalar::Str(_)),
                    Bound::Inclusive(s) => {
                        matches!(value.order(s), Some(Ordering::Less | Ordering::Equal))
                    }
                    Bound::Exclusive(s) => matches!(value.order(s), Some(Ordering::Less)),
                };
                lo_ok && hi_ok
            }
        }
    }

    /// Containment: does `self` accept every value `other` accepts?
    pub fn covers(&self, other: &ConstraintSet) -> bool {
        match (self, other) {
            (ConstraintSet::StrEq(a), ConstraintSet::StrEq(b)) => a == b,
            (
                ConstraintSet::Range { lo: alo, hi: ahi },
                ConstraintSet::Range { lo: blo, hi: bhi },
            ) => lo_covers(alo, blo) && hi_covers(ahi, bhi),
            // A range never covers a string constraint or vice versa: their
            // value domains are disjoint, and an empty-domain `other` would
            // make coverage vacuous but also useless for the index.
            _ => false,
        }
    }

    /// Intersects with another constraint on the same attribute (used when a
    /// subscription repeats an attribute). Returns `None` when the
    /// intersection is empty or the kinds are incompatible.
    pub fn intersect(&self, other: &ConstraintSet) -> Option<ConstraintSet> {
        match (self, other) {
            (ConstraintSet::StrEq(a), ConstraintSet::StrEq(b)) => {
                if a == b {
                    Some(*self)
                } else {
                    None
                }
            }
            (
                ConstraintSet::Range { lo: alo, hi: ahi },
                ConstraintSet::Range { lo: blo, hi: bhi },
            ) => {
                let lo = tighter_lo(alo, blo)?;
                let hi = tighter_hi(ahi, bhi)?;
                if range_is_empty(&lo, &hi) {
                    None
                } else {
                    Some(ConstraintSet::Range { lo, hi })
                }
            }
            _ => None,
        }
    }

    /// The value kind this constraint applies to, if determinable.
    pub fn kind(&self) -> Option<ValueKind> {
        match self {
            ConstraintSet::StrEq(_) => Some(ValueKind::Str),
            ConstraintSet::Range { lo, hi } => {
                lo.scalar().or_else(|| hi.scalar()).map(|s| s.kind())
            }
        }
    }
}

/// True when lower bound `a` is at least as permissive as `b`.
fn lo_covers(a: &Bound, b: &Bound) -> bool {
    match (a, b) {
        (Bound::Unbounded, _) => true,
        (_, Bound::Unbounded) => false,
        (Bound::Inclusive(x), Bound::Inclusive(y)) | (Bound::Exclusive(x), Bound::Exclusive(y)) => {
            matches!(x.order(y), Some(Ordering::Less | Ordering::Equal))
        }
        (Bound::Inclusive(x), Bound::Exclusive(y)) => {
            // [x covers (y when x <= y (x=y: (y,..) ⊂ [y,..)).
            matches!(x.order(y), Some(Ordering::Less | Ordering::Equal))
        }
        (Bound::Exclusive(x), Bound::Inclusive(y)) => {
            // (x covers [y only when x < y.
            matches!(x.order(y), Some(Ordering::Less))
        }
    }
}

/// True when upper bound `a` is at least as permissive as `b`.
fn hi_covers(a: &Bound, b: &Bound) -> bool {
    match (a, b) {
        (Bound::Unbounded, _) => true,
        (_, Bound::Unbounded) => false,
        (Bound::Inclusive(x), Bound::Inclusive(y)) | (Bound::Exclusive(x), Bound::Exclusive(y)) => {
            matches!(x.order(y), Some(Ordering::Greater | Ordering::Equal))
        }
        (Bound::Inclusive(x), Bound::Exclusive(y)) => {
            matches!(x.order(y), Some(Ordering::Greater | Ordering::Equal))
        }
        (Bound::Exclusive(x), Bound::Inclusive(y)) => {
            matches!(x.order(y), Some(Ordering::Greater))
        }
    }
}

/// The more restrictive of two lower bounds; `None` on kind mismatch.
fn tighter_lo(a: &Bound, b: &Bound) -> Option<Bound> {
    match (a, b) {
        (Bound::Unbounded, other) | (other, Bound::Unbounded) => Some(*other),
        _ => {
            let (x, y) = (a.scalar().expect("bounded"), b.scalar().expect("bounded"));
            x.order(y)?; // kinds must agree
            if lo_covers(a, b) {
                Some(*b)
            } else {
                Some(*a)
            }
        }
    }
}

/// The more restrictive of two upper bounds; `None` on kind mismatch.
fn tighter_hi(a: &Bound, b: &Bound) -> Option<Bound> {
    match (a, b) {
        (Bound::Unbounded, other) | (other, Bound::Unbounded) => Some(*other),
        _ => {
            let (x, y) = (a.scalar().expect("bounded"), b.scalar().expect("bounded"));
            x.order(y)?;
            if hi_covers(a, b) {
                Some(*b)
            } else {
                Some(*a)
            }
        }
    }
}

/// True when the interval `[lo, hi]` contains no values.
fn range_is_empty(lo: &Bound, hi: &Bound) -> bool {
    match (lo.scalar(), hi.scalar()) {
        (Some(l), Some(h)) => match l.order(h) {
            Some(Ordering::Greater) => true,
            Some(Ordering::Equal) => {
                // Equal endpoints: empty unless both inclusive.
                !(matches!(lo, Bound::Inclusive(_)) && matches!(hi, Bound::Inclusive(_)))
            }
            Some(Ordering::Less) => false,
            None => true,
        },
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(lo: Bound, hi: Bound) -> ConstraintSet {
        ConstraintSet::Range { lo, hi }
    }

    fn f(v: f64) -> Scalar {
        Scalar::Float(v)
    }

    #[test]
    fn point_matching() {
        let c = ConstraintSet::point(f(5.0));
        assert!(c.matches(&f(5.0)));
        assert!(!c.matches(&f(5.1)));
        assert!(!c.matches(&Scalar::Int(5)), "kind strictness");
    }

    #[test]
    fn interval_matching_with_openness() {
        let c = range(Bound::Exclusive(f(1.0)), Bound::Inclusive(f(2.0)));
        assert!(!c.matches(&f(1.0)));
        assert!(c.matches(&f(1.5)));
        assert!(c.matches(&f(2.0)));
        assert!(!c.matches(&f(2.5)));
    }

    #[test]
    fn unbounded_sides() {
        let c = range(Bound::Unbounded, Bound::Exclusive(f(0.0)));
        assert!(c.matches(&f(-1e300)));
        assert!(!c.matches(&f(0.0)));
        let any = ConstraintSet::any_range();
        assert!(any.matches(&f(1.0)));
        assert!(any.matches(&Scalar::Int(1)));
        assert!(!any.matches(&Scalar::Str(7)), "ranges never match strings");
    }

    #[test]
    fn string_equality() {
        let c = ConstraintSet::StrEq(42);
        assert!(c.matches(&Scalar::Str(42)));
        assert!(!c.matches(&Scalar::Str(41)));
        assert!(!c.matches(&Scalar::Int(42)));
    }

    #[test]
    fn covers_intervals() {
        let wide = range(Bound::Inclusive(f(0.0)), Bound::Inclusive(f(10.0)));
        let narrow = range(Bound::Inclusive(f(2.0)), Bound::Inclusive(f(8.0)));
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        assert!(wide.covers(&wide), "reflexive");
    }

    #[test]
    fn covers_respects_openness() {
        let closed = range(Bound::Inclusive(f(0.0)), Bound::Inclusive(f(1.0)));
        let open = range(Bound::Exclusive(f(0.0)), Bound::Exclusive(f(1.0)));
        assert!(closed.covers(&open));
        assert!(!open.covers(&closed), "(0,1) does not cover [0,1]");
    }

    #[test]
    fn covers_unbounded() {
        let any = ConstraintSet::any_range();
        let something = range(Bound::Inclusive(f(3.0)), Bound::Unbounded);
        assert!(any.covers(&something));
        assert!(!something.covers(&any));
    }

    #[test]
    fn covers_strings() {
        assert!(ConstraintSet::StrEq(1).covers(&ConstraintSet::StrEq(1)));
        assert!(!ConstraintSet::StrEq(1).covers(&ConstraintSet::StrEq(2)));
        assert!(!ConstraintSet::any_range().covers(&ConstraintSet::StrEq(1)));
    }

    #[test]
    fn covers_implies_matches_subset() {
        // Spot-check the semantic definition on a grid of values.
        let a = range(Bound::Inclusive(f(0.0)), Bound::Exclusive(f(5.0)));
        let b = range(Bound::Exclusive(f(1.0)), Bound::Inclusive(f(4.0)));
        assert!(a.covers(&b));
        for i in -10..100 {
            let v = f(i as f64 / 10.0);
            if b.matches(&v) {
                assert!(a.matches(&v), "value {v:?} matched b but not a");
            }
        }
    }

    #[test]
    fn intersect_narrows() {
        let a = range(Bound::Inclusive(f(0.0)), Bound::Inclusive(f(10.0)));
        let b = range(Bound::Inclusive(f(5.0)), Bound::Inclusive(f(20.0)));
        let i = a.intersect(&b).unwrap();
        assert!(i.matches(&f(7.0)));
        assert!(!i.matches(&f(3.0)));
        assert!(!i.matches(&f(15.0)));
    }

    #[test]
    fn intersect_empty_is_none() {
        let a = range(Bound::Inclusive(f(0.0)), Bound::Inclusive(f(1.0)));
        let b = range(Bound::Inclusive(f(2.0)), Bound::Inclusive(f(3.0)));
        assert!(a.intersect(&b).is_none());
        // Touching open endpoints: (1,2) ∩ [2,3] is empty.
        let open = range(Bound::Exclusive(f(1.0)), Bound::Exclusive(f(2.0)));
        assert!(open.intersect(&b).is_none());
        // Touching closed endpoints: [0,2] ∩ [2,3] = {2}.
        let c = range(Bound::Inclusive(f(0.0)), Bound::Inclusive(f(2.0)));
        let point = c.intersect(&b).unwrap();
        assert!(point.matches(&f(2.0)));
        assert!(!point.matches(&f(2.1)));
    }

    #[test]
    fn intersect_strings() {
        assert!(ConstraintSet::StrEq(1).intersect(&ConstraintSet::StrEq(1)).is_some());
        assert!(ConstraintSet::StrEq(1).intersect(&ConstraintSet::StrEq(2)).is_none());
        assert!(ConstraintSet::StrEq(1).intersect(&ConstraintSet::any_range()).is_none());
    }

    #[test]
    fn intersect_kind_mismatch_is_none() {
        let ints = range(Bound::Inclusive(Scalar::Int(0)), Bound::Unbounded);
        let floats = range(Bound::Inclusive(f(0.0)), Bound::Unbounded);
        assert!(ints.intersect(&floats).is_none());
    }

    #[test]
    fn kind_inference() {
        assert_eq!(ConstraintSet::StrEq(1).kind(), Some(ValueKind::Str));
        assert_eq!(ConstraintSet::point(f(1.0)).kind(), Some(ValueKind::Float));
        assert_eq!(ConstraintSet::any_range().kind(), None);
    }

    #[test]
    fn op_display() {
        assert_eq!(Op::Eq.to_string(), "=");
        assert_eq!(Op::Le.to_string(), "<=");
    }
}
