//! Attribute values and their matching-friendly scalar encoding.
//!
//! Publication headers carry typed values ([`Value`]); the matching engine
//! compiles them into fixed-size [`Scalar`]s: integers and floats compare
//! by order, strings by a 64-bit FNV-1a hash (SCBR's filters only ever test
//! strings for equality — ranges over strings are rejected at subscription
//! build time).

use std::cmp::Ordering;
use std::fmt;

/// The type of a value or constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float (NaN rejected at the API boundary).
    Float,
    /// UTF-8 string (equality-only in filters).
    Str,
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueKind::Int => write!(f, "int"),
            ValueKind::Float => write!(f, "float"),
            ValueKind::Str => write!(f, "str"),
        }
    }
}

/// A typed attribute value as carried in publication headers and
/// subscription predicates.
///
/// ```
/// use scbr::value::Value;
///
/// let price = Value::Float(49.5);
/// assert_eq!(price.kind(), scbr::value::ValueKind::Float);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Float(f64),
    /// String value.
    Str(String),
}

impl Value {
    /// The value's kind.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Str(_) => ValueKind::Str,
        }
    }

    /// True for floats that are NaN (disallowed in headers and filters).
    pub fn is_nan(&self) -> bool {
        matches!(self, Value::Float(f) if f.is_nan())
    }

    /// Compiles to the fixed-size scalar used by the matching engine.
    pub fn to_scalar(&self) -> Scalar {
        match self {
            Value::Int(i) => Scalar::Int(*i),
            Value::Float(f) => Scalar::Float(*f),
            Value::Str(s) => Scalar::Str(fnv1a(s.as_bytes())),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Fixed-size compiled form of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// Integer.
    Int(i64),
    /// Float (never NaN once validated upstream).
    Float(f64),
    /// FNV-1a hash of a string (equality comparisons only).
    Str(u64),
}

impl Scalar {
    /// The scalar's kind.
    pub fn kind(&self) -> ValueKind {
        match self {
            Scalar::Int(_) => ValueKind::Int,
            Scalar::Float(_) => ValueKind::Float,
            Scalar::Str(_) => ValueKind::Str,
        }
    }

    /// Orders two scalars of the same orderable kind.
    ///
    /// Returns `None` across kinds and for strings (hash order is
    /// meaningless); string equality is still visible through
    /// [`Scalar::same`] .
    pub fn order(&self, other: &Scalar) -> Option<Ordering> {
        match (self, other) {
            (Scalar::Int(a), Scalar::Int(b)) => Some(a.cmp(b)),
            (Scalar::Float(a), Scalar::Float(b)) => Some(a.total_cmp(b)),
            _ => None,
        }
    }

    /// Equality across identical kinds (strings compare by hash).
    pub fn same(&self, other: &Scalar) -> bool {
        match (self, other) {
            (Scalar::Int(a), Scalar::Int(b)) => a == b,
            (Scalar::Float(a), Scalar::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            (Scalar::Str(a), Scalar::Str(b)) => a == b,
            _ => false,
        }
    }
}

/// FNV-1a 64-bit hash (stable across runs; used for string equality).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        assert_eq!(Value::Int(1).kind(), ValueKind::Int);
        assert_eq!(Value::Float(1.0).kind(), ValueKind::Float);
        assert_eq!(Value::Str("x".into()).kind(), ValueKind::Str);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(String::from("hi")), Value::Str("hi".into()));
    }

    #[test]
    fn nan_detection() {
        assert!(Value::Float(f64::NAN).is_nan());
        assert!(!Value::Float(0.0).is_nan());
        assert!(!Value::Int(0).is_nan());
    }

    #[test]
    fn scalar_ordering_within_kind() {
        assert_eq!(Scalar::Int(1).order(&Scalar::Int(2)), Some(Ordering::Less));
        assert_eq!(Scalar::Float(2.0).order(&Scalar::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Scalar::Float(3.0).order(&Scalar::Float(2.0)), Some(Ordering::Greater));
    }

    #[test]
    fn scalar_ordering_across_kinds_none() {
        assert_eq!(Scalar::Int(1).order(&Scalar::Float(1.0)), None);
        assert_eq!(Scalar::Str(1).order(&Scalar::Str(1)), None, "strings are unordered");
    }

    #[test]
    fn scalar_same() {
        assert!(Scalar::Int(4).same(&Scalar::Int(4)));
        assert!(!Scalar::Int(4).same(&Scalar::Int(5)));
        assert!(Value::Str("HAL".into()).to_scalar().same(&Value::Str("HAL".into()).to_scalar()));
        assert!(!Value::Str("HAL".into()).to_scalar().same(&Value::Str("IBM".into()).to_scalar()));
        assert!(!Scalar::Int(4).same(&Scalar::Float(4.0)), "kinds are strict");
    }

    #[test]
    fn fnv_known_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Float(1.5).to_string(), "1.5");
        assert_eq!(Value::Str("s".into()).to_string(), "\"s\"");
        assert_eq!(ValueKind::Float.to_string(), "float");
    }
}
