//! Horizontal scaling: a StreamHub-style partitioned router.
//!
//! The paper's conclusion points out that the EPC limit "can be overcome
//! through horizontal scalability", and §3.4 advocates a StreamHub-like
//! architecture of specialised components over a broker overlay. This
//! module implements that extension: subscriptions are *partitioned*
//! across several enclave-hosted matcher slices, and publications are
//! fanned out to every slice, whose results are merged.
//!
//! Each slice holds `1/n`-th of the index, so a database that would
//! overflow one enclave's EPC (and fall off the Figure 8 cliff) stays
//! within budget on `n` slices. The slices share nothing; in a real
//! deployment they would be separate machines, so the fan-out matching
//! time is the *maximum* over slices, which
//! [`PartitionedRouter::parallel_elapsed_ns`] reports.

use crate::engine::RouterEngine;
use crate::error::ScbrError;
use crate::ids::{ClientId, SubscriptionId};
use crate::index::IndexKind;
use crate::subscription::SubscriptionSpec;
use scbr_crypto::ctr::SymmetricKey;
use scbr_crypto::rsa::RsaPublicKey;
use sgx_sim::SgxPlatform;
use std::collections::HashMap;

/// A router made of `n` enclave-hosted matcher slices.
#[derive(Debug)]
pub struct PartitionedRouter {
    slices: Vec<RouterEngine>,
    /// Which slice holds each subscription (for unregistration).
    placement: HashMap<SubscriptionId, usize>,
    next: usize,
}

impl PartitionedRouter {
    /// Launches `n` matcher enclaves on `platform`.
    ///
    /// # Errors
    ///
    /// Propagates enclave-launch failures.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn in_enclaves(
        platform: &SgxPlatform,
        kind: IndexKind,
        n: usize,
    ) -> Result<Self, ScbrError> {
        assert!(n > 0, "at least one slice required");
        let mut slices = Vec::with_capacity(n);
        for _ in 0..n {
            slices.push(RouterEngine::in_enclave(platform, kind)?);
        }
        Ok(PartitionedRouter { slices, placement: HashMap::new(), next: 0 })
    }

    /// Number of slices.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Provisions every slice with the shared keys (each slice would run
    /// its own attestation in a real deployment; the producer-side key
    /// management "could be simply replicated", §3.4).
    pub fn provision_keys(&mut self, sk: &SymmetricKey, producer_key: &RsaPublicKey) {
        for slice in &mut self.slices {
            let (sk, pk) = (sk.clone(), producer_key.clone());
            slice.call(move |e| e.provision_keys(sk, pk));
        }
    }

    /// Registers an encrypted envelope on the next slice (round-robin
    /// placement keeps slices balanced without inspecting ciphertexts).
    ///
    /// # Errors
    ///
    /// Propagates the slice engine's verification/decryption failures.
    pub fn register_envelope(&mut self, envelope: &[u8]) -> Result<SubscriptionId, ScbrError> {
        let slice = self.next % self.slices.len();
        self.next += 1;
        let id = self.slices[slice].call(|e| e.register_envelope(envelope))?;
        self.placement.insert(id, slice);
        Ok(id)
    }

    /// Registers a plaintext subscription (baseline path).
    ///
    /// # Errors
    ///
    /// Propagates compilation failures.
    pub fn register_plain(
        &mut self,
        id: SubscriptionId,
        client: ClientId,
        spec: &SubscriptionSpec,
    ) -> Result<(), ScbrError> {
        let slice = self.next % self.slices.len();
        self.next += 1;
        self.slices[slice].call(|e| e.register_plain(id, client, spec))?;
        self.placement.insert(id, slice);
        Ok(())
    }

    /// Unregisters a subscription wherever it lives.
    pub fn unregister(&mut self, id: SubscriptionId) -> bool {
        match self.placement.remove(&id) {
            Some(slice) => self.slices[slice].call(|e| e.unregister(id)),
            None => false,
        }
    }

    /// Matches an encrypted header against every slice and merges the
    /// client lists (sorted, deduplicated).
    ///
    /// # Errors
    ///
    /// Fails if any slice fails.
    pub fn match_encrypted(&mut self, header_ct: &[u8]) -> Result<Vec<ClientId>, ScbrError> {
        let mut merged = Vec::new();
        for slice in &mut self.slices {
            merged.extend(slice.call(|e| e.match_encrypted(header_ct))?);
        }
        merged.sort_unstable_by_key(|c| c.0);
        merged.dedup();
        Ok(merged)
    }

    /// Total subscriptions across slices.
    pub fn len(&self) -> usize {
        self.slices.iter().map(|s| s.engine().index().len()).sum()
    }

    /// True when no subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wall-clock model for the fan-out deployment: slices run in
    /// parallel, so matching latency is the slowest slice's virtual time.
    pub fn parallel_elapsed_ns(&self) -> f64 {
        self.slices
            .iter()
            .map(|s| s.elapsed_ns())
            .fold(0.0, f64::max)
    }

    /// Aggregate virtual time (total energy/work across slices).
    pub fn total_elapsed_ns(&self) -> f64 {
        self.slices.iter().map(|s| s.elapsed_ns()).sum()
    }

    /// Total EPC page swaps across slices (the Figure 8 failure mode this
    /// architecture avoids).
    pub fn total_epc_swaps(&self) -> u64 {
        self.slices.iter().map(|s| s.stats().epc_swaps).sum()
    }

    /// Resets every slice's counters.
    pub fn reset_counters(&self) {
        for slice in &self.slices {
            slice.reset_counters();
        }
    }

    /// Access to the underlying slices (inspection).
    pub fn slices(&self) -> &[RouterEngine] {
        &self.slices
    }
}

/// Convenience: a single-enclave router exposed through the same API, for
/// apples-to-apples comparisons in tests and benchmarks.
pub fn single(platform: &SgxPlatform, kind: IndexKind) -> Result<PartitionedRouter, ScbrError> {
    PartitionedRouter::in_enclaves(platform, kind, 1)
}

/// Re-exported for the module's tests and benches.
pub use crate::engine::Placement as SlicePlacement;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::keys::ProducerCrypto;
    use crate::publication::PublicationSpec;
    use scbr_crypto::rng::CryptoRng;
    use sgx_sim::{CacheConfig, CostModel, EpcConfig};

    fn producer() -> (ProducerCrypto, CryptoRng) {
        let mut rng = CryptoRng::from_seed(1);
        let crypto = ProducerCrypto::generate(512, &mut rng).unwrap();
        (crypto, rng)
    }

    #[test]
    fn partitioned_matches_like_single() {
        let platform = SgxPlatform::for_testing(2);
        let (crypto, mut rng) = producer();
        let mut one = single(&platform, IndexKind::Poset).unwrap();
        let mut four = PartitionedRouter::in_enclaves(&platform, IndexKind::Poset, 4).unwrap();
        one.provision_keys(crypto.sk(), crypto.public_key());
        four.provision_keys(crypto.sk(), crypto.public_key());

        for i in 0..40u64 {
            let spec = SubscriptionSpec::new().gt("price", (i % 10) as f64);
            let env = crypto
                .seal_registration(&spec, SubscriptionId(i), ClientId(i), &mut rng)
                .unwrap();
            one.register_envelope(&env).unwrap();
            four.register_envelope(&env).unwrap();
        }
        assert_eq!(one.len(), 40);
        assert_eq!(four.len(), 40);

        for price in [0.5f64, 5.5, 9.5, 20.0] {
            let publication = PublicationSpec::new().attr("price", price);
            let ct = crypto.encrypt_header(&publication, &mut rng);
            assert_eq!(
                one.match_encrypted(&ct).unwrap(),
                four.match_encrypted(&ct).unwrap(),
                "price {price}"
            );
        }
    }

    #[test]
    fn unregister_routes_to_owning_slice() {
        let platform = SgxPlatform::for_testing(3);
        let (crypto, _rng) = producer();
        let mut router = PartitionedRouter::in_enclaves(&platform, IndexKind::Poset, 3).unwrap();
        router.provision_keys(crypto.sk(), crypto.public_key());
        for i in 0..9u64 {
            router
                .register_plain(
                    SubscriptionId(i),
                    ClientId(i),
                    &SubscriptionSpec::new().eq("s", i as i64),
                )
                .unwrap();
        }
        assert!(router.unregister(SubscriptionId(4)));
        assert!(!router.unregister(SubscriptionId(4)));
        assert_eq!(router.len(), 8);
    }

    #[test]
    fn slices_split_the_footprint() {
        let platform = SgxPlatform::for_testing(4);
        let mut router = PartitionedRouter::in_enclaves(&platform, IndexKind::Poset, 4).unwrap();
        for i in 0..400u64 {
            router
                .register_plain(
                    SubscriptionId(i),
                    ClientId(i),
                    &SubscriptionSpec::new().eq("s", i as i64),
                )
                .unwrap();
        }
        for slice in router.slices() {
            let len = slice.engine().index().len();
            assert_eq!(len, 100, "round-robin balances slices");
        }
    }

    #[test]
    fn partitioning_avoids_the_epc_cliff() {
        // The conclusion's claim: a database that thrashes one enclave's
        // EPC fits comfortably when split across slices.
        let tiny_epc = EpcConfig { total_bytes: 2 << 20, usable_bytes: 1 << 20, page_size: 4096 };
        let platform = SgxPlatform::with_config(
            5,
            CacheConfig::default(),
            tiny_epc,
            CostModel::default(),
            512,
        );
        let n = 6_000u64; // ~2.5 MB of nodes vs 1 MB usable EPC per enclave
        let specs: Vec<SubscriptionSpec> = (0..n)
            .map(|i| {
                // 37 is coprime with 6000, so every (symbol, bound) pair is
                // distinct: no node sharing, a full-size index.
                SubscriptionSpec::new()
                    .eq("symbol", format!("S{}", i % 40).as_str())
                    .gt("price", (i * 37 % n) as f64 / 10.0)
            })
            .collect();

        let mut one = single(&platform, IndexKind::Poset).unwrap();
        let mut four = PartitionedRouter::in_enclaves(&platform, IndexKind::Poset, 4).unwrap();
        for (i, spec) in specs.iter().enumerate() {
            one.register_plain(SubscriptionId(i as u64), ClientId(i as u64), spec).unwrap();
            four.register_plain(SubscriptionId(i as u64), ClientId(i as u64), spec).unwrap();
        }
        assert!(one.total_epc_swaps() > 0, "single enclave pages");
        assert_eq!(four.total_epc_swaps(), 0, "partitioned index fits per-slice EPC");
        assert!(four.parallel_elapsed_ns() < one.total_elapsed_ns());
    }
}
