//! Horizontal scaling: a StreamHub-style partitioned router on real
//! worker threads.
//!
//! The paper's conclusion points out that the EPC limit "can be overcome
//! through horizontal scalability", and §3.4 advocates a StreamHub-like
//! architecture of specialised components over a broker overlay. This
//! module implements that extension: subscriptions are *partitioned*
//! across several enclave-hosted matcher slices, and publications are
//! fanned out to every slice, whose results are merged.
//!
//! Each slice holds `1/n`-th of the index, so a database that would
//! overflow one enclave's EPC (and fall off the Figure 8 cliff) stays
//! within budget on `n` slices.
//!
//! ## Execution model
//!
//! Every slice owns a dedicated OS worker thread fed by a job channel;
//! fan-out genuinely runs the slices concurrently and the dispatcher
//! merges replies as they arrive. Two clocks describe a fan-out:
//!
//! * [`PartitionedRouter::parallel_elapsed_ns`] — the *virtual* critical
//!   path: the slowest slice's simulated clock (deterministic, what the
//!   figures report);
//! * [`PartitionedRouter::fanout_wall_ns`] — accumulated *wall-clock*
//!   time from dispatch to merge, measured on the host. With N worker
//!   threads this drops below the single-slice wall time once per-slice
//!   matching work dominates dispatch overhead.
//!
//! Batches are the unit of work: [`PartitionedRouter::match_encrypted_batch`]
//! ships the whole batch to each slice, which matches it through a
//! **single enclave crossing** ([`RouterEngine::match_batch`]), so the
//! per-message transition cost scales as `slices / batch_size`.
//!
//! ## Placement and rebalancing
//!
//! Registrations are placed round-robin, which balances slice *occupancy*
//! without inspecting ciphertexts (the router must not learn which
//! subscriptions are related). Unregistrations can still skew slices over
//! time: round-robin never moves a live subscription, so a slice whose
//! tenants happen to unsubscribe ends up under-filled while the others
//! carry its share of the EPC budget. [`PartitionedRouter::slice_stats`]
//! and [`PartitionedRouter::occupancy_skew`] expose the imbalance
//! (subscriptions, index bytes, EPC swaps per slice) so an operator — or
//! the overlay's auto-rebalancer — can detect it. Through the telemetry
//! registry these surface as the `slice.<n>.subscriptions`,
//! `slice.<n>.index_bytes` and `slice.<n>.epc_swaps` metrics (one
//! [`SliceStats::snapshot`] absorbed per slice) — watch the spread of
//! `slice.*.subscriptions` (the skew ratio) and `slice.*.epc_swaps` (a
//! hot slice thrashing the EPC while its siblings idle) to decide when
//! to intervene. The correct remedy in this architecture is
//! *re-registration*: pick the fullest slice, unregister a batch of its
//! subscriptions and replay their stored registration envelopes on the
//! emptiest slice (the envelopes are producer-signed, so the move needs
//! no client involvement). That closed loop now ships inside the overlay
//! broker (`scbr-overlay`'s `partition` module): its skew-threshold
//! rebalancer watches exactly these metrics and migrates subscription
//! batches fullest → emptiest, make-before-break. This thread-based
//! router keeps the simpler contract — it detects, and an operator (or
//! the overlay's rebalancer, when the slices live inside a broker)
//! corrects. Skew is measured over *edge-client* load only:
//! link-interface registrations are pinned to whichever broker owns the
//! link, so counting them would make a high-degree broker read as
//! permanently skewed and trigger futile rebalancing.

use crate::engine::RouterEngine;
use crate::error::ScbrError;
use crate::ids::{ClientId, SubscriptionId};
use crate::index::IndexKind;
use crate::subscription::SubscriptionSpec;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use scbr_crypto::ctr::SymmetricKey;
use scbr_crypto::rsa::RsaPublicKey;
use sgx_sim::{MemStats, SgxPlatform};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A unit of work executed on a slice's worker thread.
type SliceJob = Box<dyn FnOnce(&mut RouterEngine) + Send + 'static>;

/// One enclave-hosted matcher slice and its worker thread.
#[derive(Debug)]
struct SliceWorker {
    /// Job queue feeding the worker thread (`None` once shut down).
    jobs: Option<Sender<SliceJob>>,
    /// The slice's engine. The worker thread holds the lock while running
    /// jobs; the dispatcher locks it only between fan-outs (inspection).
    engine: Arc<Mutex<RouterEngine>>,
    handle: Option<JoinHandle<()>>,
}

impl SliceWorker {
    fn spawn(engine: RouterEngine) -> Self {
        let engine = Arc::new(Mutex::new(engine));
        let (tx, rx) = unbounded::<SliceJob>();
        let thread_engine = engine.clone();
        let handle = std::thread::spawn(move || {
            while let Ok(job) = rx.recv() {
                let mut engine = thread_engine.lock();
                job(&mut engine);
            }
        });
        SliceWorker { jobs: Some(tx), engine, handle: Some(handle) }
    }

    fn send(&self, job: SliceJob) {
        let accepted = self.jobs.as_ref().expect("slice worker running").send(job).is_ok();
        assert!(accepted, "slice worker accepts jobs");
    }
}

/// Per-slice occupancy and memory counters (see the module docs'
/// rebalancing story).
#[derive(Debug, Clone, Copy)]
pub struct SliceStats {
    /// Slice position in the fan-out order.
    pub slice: usize,
    /// Live subscriptions placed on this slice (edge + interface copies).
    pub subscriptions: usize,
    /// Live subscriptions delivering to real edge clients — the
    /// occupancy figure skew detection and rebalancing read
    /// (link-interface copies are pinned, not movable load).
    pub edge_subscriptions: usize,
    /// Structural nodes in the slice's index.
    pub nodes: usize,
    /// Simulated index footprint in bytes (what presses on the EPC).
    pub index_bytes: u64,
    /// The slice memory's counters since the last reset (includes
    /// `ecalls`, `epc_swaps`, virtual `elapsed_ns`).
    pub mem: MemStats,
    /// Lifetime enclave crossings (not reset by
    /// [`PartitionedRouter::reset_counters`]), or `None` when the slice
    /// runs gateless (outside an enclave) — an absent counter, unlike a
    /// silent 0, lets telemetry tell a gateless slice from an idle
    /// enclave.
    pub lifetime_ecalls: Option<u64>,
}

impl SliceStats {
    /// Uniform counter export for the telemetry registry (absorbed under
    /// a `slice.<n>` prefix; the memory counters most relevant to the
    /// rebalancing decision are folded in alongside the occupancy).
    /// `gated` reports the gate mode (1 = enclave-hosted); the
    /// `lifetime_ecalls` counter is emitted only when a gate exists, so
    /// a gateless slice exports no crossing count at all instead of a
    /// misleading 0.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        let mut pairs = vec![
            ("subscriptions", self.subscriptions as u64),
            ("edge_subscriptions", self.edge_subscriptions as u64),
            ("nodes", self.nodes as u64),
            ("index_bytes", self.index_bytes),
            ("ecalls", self.mem.ecalls),
            ("epc_swaps", self.mem.epc_swaps),
            ("gated", u64::from(self.lifetime_ecalls.is_some())),
        ];
        if let Some(lifetime) = self.lifetime_ecalls {
            pairs.push(("lifetime_ecalls", lifetime));
        }
        pairs
    }
}

/// A router made of `n` enclave-hosted matcher slices, each on its own
/// worker thread.
#[derive(Debug)]
pub struct PartitionedRouter {
    workers: Vec<SliceWorker>,
    /// Which slice holds each subscription (for unregistration).
    placement: HashMap<SubscriptionId, usize>,
    next: usize,
    /// Wall-clock nanoseconds spent in fan-out/merge since the last reset.
    fanout_wall_ns: AtomicU64,
}

impl PartitionedRouter {
    /// Launches `n` matcher enclaves on `platform`, one worker thread
    /// each.
    ///
    /// # Errors
    ///
    /// Propagates enclave-launch failures.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn in_enclaves(
        platform: &SgxPlatform,
        kind: IndexKind,
        n: usize,
    ) -> Result<Self, ScbrError> {
        assert!(n > 0, "at least one slice required");
        let mut workers = Vec::with_capacity(n);
        for _ in 0..n {
            workers.push(SliceWorker::spawn(RouterEngine::in_enclave(platform, kind)?));
        }
        Ok(PartitionedRouter {
            workers,
            placement: HashMap::new(),
            next: 0,
            fanout_wall_ns: AtomicU64::new(0),
        })
    }

    /// Number of slices.
    pub fn slice_count(&self) -> usize {
        self.workers.len()
    }

    /// Runs `job` on one slice's worker thread and waits for its result.
    fn run_on<R: Send + 'static>(
        &self,
        slice: usize,
        job: impl FnOnce(&mut RouterEngine) -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = unbounded();
        self.workers[slice].send(Box::new(move |engine| {
            let _ = tx.send(job(engine));
        }));
        rx.recv().expect("slice worker replies")
    }

    /// Provisions every slice with the shared keys (each slice would run
    /// its own attestation in a real deployment; the producer-side key
    /// management "could be simply replicated", §3.4).
    pub fn provision_keys(&mut self, sk: &SymmetricKey, producer_key: &RsaPublicKey) {
        let (tx, rx) = unbounded();
        for worker in &self.workers {
            let (sk, pk, tx) = (sk.clone(), producer_key.clone(), tx.clone());
            worker.send(Box::new(move |engine| {
                engine.call(move |e| e.provision_keys(sk, pk));
                let _ = tx.send(());
            }));
        }
        drop(tx);
        for _ in &self.workers {
            rx.recv().expect("slice provisions");
        }
    }

    /// Registers an encrypted envelope on the next slice (round-robin
    /// placement keeps slices balanced without inspecting ciphertexts).
    ///
    /// # Errors
    ///
    /// Propagates the slice engine's verification/decryption failures.
    pub fn register_envelope(&mut self, envelope: &[u8]) -> Result<SubscriptionId, ScbrError> {
        let slice = self.next % self.workers.len();
        self.next += 1;
        let envelope = envelope.to_vec();
        let id =
            self.run_on(slice, move |engine| engine.call(|e| e.register_envelope(&envelope)))?;
        self.placement.insert(id, slice);
        Ok(id)
    }

    /// Registers a plaintext subscription (baseline path).
    ///
    /// # Errors
    ///
    /// Propagates compilation failures.
    pub fn register_plain(
        &mut self,
        id: SubscriptionId,
        client: ClientId,
        spec: &SubscriptionSpec,
    ) -> Result<(), ScbrError> {
        let slice = self.next % self.workers.len();
        self.next += 1;
        let spec = spec.clone();
        self.run_on(slice, move |engine| engine.call(|e| e.register_plain(id, client, &spec)))?;
        self.placement.insert(id, slice);
        Ok(())
    }

    /// Unregisters a subscription wherever it lives.
    pub fn unregister(&mut self, id: SubscriptionId) -> bool {
        match self.placement.remove(&id) {
            Some(slice) => self.run_on(slice, move |engine| engine.call(|e| e.unregister(id))),
            None => false,
        }
    }

    /// Matches one encrypted header against every slice and merges the
    /// client lists (sorted, deduplicated). Shorthand for a one-element
    /// [`PartitionedRouter::match_encrypted_batch`].
    ///
    /// # Errors
    ///
    /// Fails if any slice fails.
    pub fn match_encrypted(&mut self, header_ct: &[u8]) -> Result<Vec<ClientId>, ScbrError> {
        let mut results = self.match_encrypted_batch(std::slice::from_ref(&header_ct.to_vec()))?;
        Ok(results.pop().expect("one result per header"))
    }

    /// Fans a whole batch of encrypted headers out to every slice
    /// **concurrently** — each slice matches the batch through a single
    /// enclave crossing — and merges the per-publication client lists
    /// (sorted, deduplicated).
    ///
    /// Wall-clock time from dispatch to merge is accumulated in
    /// [`PartitionedRouter::fanout_wall_ns`].
    ///
    /// # Errors
    ///
    /// Fails if any slice fails on any header (all-or-nothing, matching
    /// [`RouterEngine::match_batch`]).
    pub fn match_encrypted_batch(
        &mut self,
        headers: &[Vec<u8>],
    ) -> Result<Vec<Vec<ClientId>>, ScbrError> {
        let n = self.workers.len();
        let shared: Arc<[Vec<u8>]> = headers.to_vec().into();
        // The fan-out runs on untrusted host worker threads; real wall
        // time is the *point* of `fanout_wall_ns` (per-slice virtual
        // clocks cannot observe cross-thread concurrency).
        // lint: allow(SL01, host-side dispatcher measuring thread fan-out wall time)
        let started = Instant::now();
        let (tx, rx) = unbounded();
        for (slice, worker) in self.workers.iter().enumerate() {
            let (shared, tx) = (shared.clone(), tx.clone());
            worker.send(Box::new(move |engine| {
                let _ = tx.send((slice, engine.match_batch(&shared)));
            }));
        }
        drop(tx);

        let mut merged: Vec<Vec<ClientId>> = vec![Vec::new(); headers.len()];
        let mut first_err = None;
        for _ in 0..n {
            let (_, result) = rx.recv().expect("slice worker replies");
            match result {
                Ok(per_publication) => {
                    for (i, clients) in per_publication.into_iter().enumerate() {
                        merged[i].extend(clients);
                    }
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        self.fanout_wall_ns.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if let Some(e) = first_err {
            return Err(e);
        }
        for clients in &mut merged {
            clients.sort_unstable_by_key(|c| c.0);
            clients.dedup();
        }
        Ok(merged)
    }

    /// Total subscriptions across slices.
    pub fn len(&self) -> usize {
        self.workers.iter().map(|w| w.engine.lock().engine().index().len()).sum()
    }

    /// True when no subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Virtual critical path of the fan-out deployment: slices run in
    /// parallel, so matching latency is the slowest slice's virtual time.
    pub fn parallel_elapsed_ns(&self) -> f64 {
        self.workers.iter().map(|w| w.engine.lock().elapsed_ns()).fold(0.0, f64::max)
    }

    /// Aggregate virtual time (total energy/work across slices).
    pub fn total_elapsed_ns(&self) -> f64 {
        self.workers.iter().map(|w| w.engine.lock().elapsed_ns()).sum()
    }

    /// Wall-clock nanoseconds spent in fan-out dispatch + merge since the
    /// last [`PartitionedRouter::reset_counters`] — host-measured truth,
    /// complementing the virtual clocks.
    pub fn fanout_wall_ns(&self) -> u64 {
        self.fanout_wall_ns.load(Ordering::Relaxed)
    }

    /// Total EPC page swaps across slices (the Figure 8 failure mode this
    /// architecture avoids).
    pub fn total_epc_swaps(&self) -> u64 {
        self.workers.iter().map(|w| w.engine.lock().stats().epc_swaps).sum()
    }

    /// Total enclave crossings across slices since the last reset.
    pub fn total_ecalls(&self) -> u64 {
        self.workers.iter().map(|w| w.engine.lock().stats().ecalls).sum()
    }

    /// Total OCALL round-trips across slices since the last reset.
    pub fn total_ocalls(&self) -> u64 {
        self.workers.iter().map(|w| w.engine.lock().stats().ocalls).sum()
    }

    /// Per-slice occupancy and memory counters, in fan-out order.
    pub fn slice_stats(&self) -> Vec<SliceStats> {
        self.workers
            .iter()
            .enumerate()
            .map(|(slice, w)| {
                let engine = w.engine.lock();
                let index = engine.engine().index();
                SliceStats {
                    slice,
                    subscriptions: index.len(),
                    edge_subscriptions: engine.engine().edge_subscriptions(),
                    nodes: index.node_count(),
                    index_bytes: index.logical_bytes(),
                    mem: engine.stats(),
                    lifetime_ecalls: engine.enclave().map(sgx_sim::Enclave::ecall_count),
                }
            })
            .collect()
    }

    /// Occupancy skew: the fullest slice's *edge-client* subscription
    /// count over the mean (1.0 = perfectly balanced; grows as
    /// unregistrations cluster). Link-interface copies are excluded —
    /// they are pinned to the broker that owns the link, so counting
    /// them would report permanent skew on high-degree brokers. Returns
    /// 1.0 for an empty router.
    pub fn occupancy_skew(&self) -> f64 {
        let counts: Vec<usize> =
            self.workers.iter().map(|w| w.engine.lock().engine().edge_subscriptions()).collect();
        let total: usize = counts.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / counts.len() as f64;
        counts.iter().copied().max().unwrap_or(0) as f64 / mean
    }

    /// Resets every slice's counters and the wall-clock accumulator
    /// (between measurement phases).
    pub fn reset_counters(&self) {
        for worker in &self.workers {
            worker.engine.lock().reset_counters();
        }
        self.fanout_wall_ns.store(0, Ordering::Relaxed);
    }

    /// Runs `f` with read access to one slice's engine (inspection; the
    /// lock excludes the worker thread while held).
    ///
    /// # Panics
    ///
    /// Panics if `slice` is out of bounds.
    pub fn with_slice<R>(&self, slice: usize, f: impl FnOnce(&RouterEngine) -> R) -> R {
        f(&self.workers[slice].engine.lock())
    }
}

impl Drop for PartitionedRouter {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            worker.jobs = None; // close the queue; the worker loop exits
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Convenience: a single-enclave router exposed through the same API, for
/// apples-to-apples comparisons in tests and benchmarks.
pub fn single(platform: &SgxPlatform, kind: IndexKind) -> Result<PartitionedRouter, ScbrError> {
    PartitionedRouter::in_enclaves(platform, kind, 1)
}

/// Re-exported for the module's tests and benches.
pub use crate::engine::Placement as SlicePlacement;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::keys::ProducerCrypto;
    use crate::publication::PublicationSpec;
    use scbr_crypto::rng::CryptoRng;
    use sgx_sim::{CacheConfig, CostModel, EpcConfig};

    fn producer() -> (ProducerCrypto, CryptoRng) {
        let mut rng = CryptoRng::from_seed(1);
        let crypto = ProducerCrypto::generate(512, &mut rng).unwrap();
        (crypto, rng)
    }

    #[test]
    fn partitioned_matches_like_single() {
        let platform = SgxPlatform::for_testing(2);
        let (crypto, mut rng) = producer();
        let mut one = single(&platform, IndexKind::Poset).unwrap();
        let mut four = PartitionedRouter::in_enclaves(&platform, IndexKind::Poset, 4).unwrap();
        one.provision_keys(crypto.sk(), crypto.public_key());
        four.provision_keys(crypto.sk(), crypto.public_key());

        for i in 0..40u64 {
            let spec = SubscriptionSpec::new().gt("price", (i % 10) as f64);
            let env =
                crypto.seal_registration(&spec, SubscriptionId(i), ClientId(i), &mut rng).unwrap();
            one.register_envelope(&env).unwrap();
            four.register_envelope(&env).unwrap();
        }
        assert_eq!(one.len(), 40);
        assert_eq!(four.len(), 40);

        for price in [0.5f64, 5.5, 9.5, 20.0] {
            let publication = PublicationSpec::new().attr("price", price);
            let ct = crypto.encrypt_header(&publication, &mut rng);
            assert_eq!(
                one.match_encrypted(&ct).unwrap(),
                four.match_encrypted(&ct).unwrap(),
                "price {price}"
            );
        }
    }

    #[test]
    fn batch_fanout_merges_like_per_message() {
        let platform = SgxPlatform::for_testing(7);
        let (crypto, mut rng) = producer();
        let mut router = PartitionedRouter::in_enclaves(&platform, IndexKind::Poset, 3).unwrap();
        router.provision_keys(crypto.sk(), crypto.public_key());
        for i in 0..30u64 {
            let spec = SubscriptionSpec::new().gt("price", (i % 10) as f64);
            let env =
                crypto.seal_registration(&spec, SubscriptionId(i), ClientId(i), &mut rng).unwrap();
            router.register_envelope(&env).unwrap();
        }
        let headers: Vec<Vec<u8>> = [0.5f64, 3.5, 7.5, 11.0]
            .iter()
            .map(|p| crypto.encrypt_header(&PublicationSpec::new().attr("price", *p), &mut rng))
            .collect();

        router.reset_counters();
        let batched = router.match_encrypted_batch(&headers).unwrap();
        // One crossing per slice for the whole batch.
        assert_eq!(router.total_ecalls(), 3);
        assert!(router.fanout_wall_ns() > 0, "wall clock measured");
        for (i, ct) in headers.iter().enumerate() {
            assert_eq!(batched[i], router.match_encrypted(ct).unwrap());
        }
        // A poisoned header fails the whole batch.
        let mut bad = headers.clone();
        bad[1].truncate(3);
        assert!(router.match_encrypted_batch(&bad).is_err());
    }

    #[test]
    fn unregister_routes_to_owning_slice() {
        let platform = SgxPlatform::for_testing(3);
        let (crypto, _rng) = producer();
        let mut router = PartitionedRouter::in_enclaves(&platform, IndexKind::Poset, 3).unwrap();
        router.provision_keys(crypto.sk(), crypto.public_key());
        for i in 0..9u64 {
            router
                .register_plain(
                    SubscriptionId(i),
                    ClientId(i),
                    &SubscriptionSpec::new().eq("s", i as i64),
                )
                .unwrap();
        }
        assert!(router.unregister(SubscriptionId(4)));
        assert!(!router.unregister(SubscriptionId(4)));
        assert_eq!(router.len(), 8);
    }

    #[test]
    fn slices_split_the_footprint_and_report_stats() {
        let platform = SgxPlatform::for_testing(4);
        let mut router = PartitionedRouter::in_enclaves(&platform, IndexKind::Poset, 4).unwrap();
        for i in 0..400u64 {
            router
                .register_plain(
                    SubscriptionId(i),
                    ClientId(i),
                    &SubscriptionSpec::new().eq("s", i as i64),
                )
                .unwrap();
        }
        let stats = router.slice_stats();
        assert_eq!(stats.len(), 4);
        for s in &stats {
            assert_eq!(s.subscriptions, 100, "round-robin balances slices");
            assert_eq!(s.edge_subscriptions, 100, "plain registrations are all edge load");
            assert!(s.index_bytes > 0);
            let lifetime = s.lifetime_ecalls.expect("enclave-hosted slices report a gate");
            assert!(lifetime >= 100, "one crossing per registration");
            let snap = s.snapshot();
            assert!(snap.contains(&("gated", 1)));
            assert!(snap.iter().any(|(name, _)| *name == "lifetime_ecalls"));
        }
        assert!((router.occupancy_skew() - 1.0).abs() < 1e-9);

        // Clustered unregistrations skew one slice; the stats expose it.
        for i in (0..400u64).filter(|i| i % 4 == 0).take(50) {
            router.unregister(SubscriptionId(i));
        }
        assert!(router.occupancy_skew() > 1.1, "skew detected after churn");
    }

    #[test]
    fn gateless_slice_omits_the_lifetime_counter() {
        // Regression: a gateless slice used to export `lifetime_ecalls: 0`
        // via `unwrap_or_default`, indistinguishable from an idle enclave.
        let stats = SliceStats {
            slice: 0,
            subscriptions: 3,
            edge_subscriptions: 3,
            nodes: 1,
            index_bytes: 64,
            mem: MemStats::default(),
            lifetime_ecalls: None,
        };
        let snap = stats.snapshot();
        assert!(snap.contains(&("gated", 0)));
        assert!(snap.iter().all(|(name, _)| *name != "lifetime_ecalls"));
    }

    #[test]
    fn partitioning_avoids_the_epc_cliff() {
        // The conclusion's claim: a database that thrashes one enclave's
        // EPC fits comfortably when split across slices.
        let tiny_epc = EpcConfig { total_bytes: 2 << 20, usable_bytes: 1 << 20, page_size: 4096 };
        let platform = SgxPlatform::with_config(
            5,
            CacheConfig::default(),
            tiny_epc,
            CostModel::default(),
            512,
        );
        let n = 6_000u64; // ~2.5 MB of nodes vs 1 MB usable EPC per enclave
        let specs: Vec<SubscriptionSpec> = (0..n)
            .map(|i| {
                // 37 is coprime with 6000, so every (symbol, bound) pair is
                // distinct: no node sharing, a full-size index.
                SubscriptionSpec::new()
                    .eq("symbol", format!("S{}", i % 40).as_str())
                    .gt("price", (i * 37 % n) as f64 / 10.0)
            })
            .collect();

        let mut one = single(&platform, IndexKind::Poset).unwrap();
        let mut four = PartitionedRouter::in_enclaves(&platform, IndexKind::Poset, 4).unwrap();
        for (i, spec) in specs.iter().enumerate() {
            one.register_plain(SubscriptionId(i as u64), ClientId(i as u64), spec).unwrap();
            four.register_plain(SubscriptionId(i as u64), ClientId(i as u64), spec).unwrap();
        }
        assert!(one.total_epc_swaps() > 0, "single enclave pages");
        assert_eq!(four.total_epc_swaps(), 0, "partitioned index fits per-slice EPC");
        assert!(four.parallel_elapsed_ns() < one.total_elapsed_ns());
    }
}
