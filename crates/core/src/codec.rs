//! Binary wire codec for SCBR data types.
//!
//! A small hand-rolled format (the paper wraps binary messages in Base64
//! text; that wrapping lives in [`scbr_net::envelope`]). All integers are
//! big-endian; strings and byte blobs are length-prefixed with `u32`.

use crate::error::ScbrError;
use crate::ids::{ClientId, KeyEpoch, SubscriptionId};
use crate::predicate::Op;
use crate::publication::PublicationSpec;
use crate::subscription::SubscriptionSpec;
use crate::value::Value;

/// Append-only binary writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Writes a big-endian u16.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes a big-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes a big-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes a big-endian i64.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes an f64 as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes a length-prefixed byte blob.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }
}

/// Cursor-based binary reader.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], ScbrError> {
        if self.buf.len() - self.pos < n {
            return Err(ScbrError::Codec { context });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ScbrError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, ScbrError> {
        Ok(u16::from_be_bytes(self.take(2, "u16")?.try_into().expect("2 bytes")))
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, ScbrError> {
        Ok(u32::from_be_bytes(self.take(4, "u32")?.try_into().expect("4 bytes")))
    }

    /// Reads a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, ScbrError> {
        Ok(u64::from_be_bytes(self.take(8, "u64")?.try_into().expect("8 bytes")))
    }

    /// Reads a big-endian i64.
    pub fn i64(&mut self) -> Result<i64, ScbrError> {
        Ok(i64::from_be_bytes(self.take(8, "i64")?.try_into().expect("8 bytes")))
    }

    /// Reads an f64 bit pattern.
    pub fn f64(&mut self) -> Result<f64, ScbrError> {
        Ok(f64::from_be_bytes(self.take(8, "f64")?.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed byte blob, borrowing from the input.
    pub fn bytes_ref(&mut self) -> Result<&'a [u8], ScbrError> {
        let len = self.u32()? as usize;
        self.take(len, "bytes body")
    }

    /// Reads a length-prefixed UTF-8 string, borrowing from the input.
    pub fn str_ref(&mut self) -> Result<&'a str, ScbrError> {
        std::str::from_utf8(self.bytes_ref()?)
            .map_err(|_| ScbrError::Codec { context: "utf-8 string" })
    }

    /// Reads a length-prefixed byte blob into an owned `Vec`.
    pub fn bytes(&mut self) -> Result<Vec<u8>, ScbrError> {
        Ok(self.bytes_ref()?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string into an owned `String`.
    pub fn str(&mut self) -> Result<String, ScbrError> {
        Ok(self.str_ref()?.to_owned())
    }
}

// Value encoding tags.
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;

/// Encodes a [`Value`].
pub fn write_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Int(i) => {
            w.u8(TAG_INT).i64(*i);
        }
        Value::Float(x) => {
            w.u8(TAG_FLOAT).f64(*x);
        }
        Value::Str(s) => {
            w.u8(TAG_STR).str(s);
        }
    }
}

/// Decodes a [`Value`].
///
/// # Errors
///
/// [`ScbrError::Codec`] on truncation or an unknown tag.
pub fn read_value(r: &mut Reader<'_>) -> Result<Value, ScbrError> {
    match r.u8()? {
        TAG_INT => Ok(Value::Int(r.i64()?)),
        TAG_FLOAT => Ok(Value::Float(r.f64()?)),
        TAG_STR => Ok(Value::Str(r.str()?)),
        _ => Err(ScbrError::Codec { context: "value tag" }),
    }
}

fn op_tag(op: Op) -> u8 {
    match op {
        Op::Eq => 1,
        Op::Lt => 2,
        Op::Le => 3,
        Op::Gt => 4,
        Op::Ge => 5,
    }
}

fn tag_op(tag: u8) -> Result<Op, ScbrError> {
    Ok(match tag {
        1 => Op::Eq,
        2 => Op::Lt,
        3 => Op::Le,
        4 => Op::Gt,
        5 => Op::Ge,
        _ => return Err(ScbrError::Codec { context: "op tag" }),
    })
}

/// Encodes a [`SubscriptionSpec`] to bytes.
pub fn encode_subscription(spec: &SubscriptionSpec) -> Vec<u8> {
    let mut w = Writer::new();
    w.u16(spec.predicates().len() as u16);
    for p in spec.predicates() {
        w.str(&p.attr).u8(op_tag(p.op));
        write_value(&mut w, &p.value);
    }
    w.into_bytes()
}

/// Decodes a [`SubscriptionSpec`].
///
/// # Errors
///
/// [`ScbrError::Codec`] on malformed input or trailing bytes.
pub fn decode_subscription(bytes: &[u8]) -> Result<SubscriptionSpec, ScbrError> {
    let mut r = Reader::new(bytes);
    let n = r.u16()? as usize;
    let mut spec = SubscriptionSpec::new();
    for _ in 0..n {
        let attr = r.str()?;
        let op = tag_op(r.u8()?)?;
        let value = read_value(&mut r)?;
        spec = spec.with(&attr, op, value);
    }
    if !r.is_exhausted() {
        return Err(ScbrError::Codec { context: "subscription trailing bytes" });
    }
    Ok(spec)
}

/// Encodes only the header of a publication (what SCBR encrypts under SK).
pub fn encode_header(spec: &PublicationSpec) -> Vec<u8> {
    let mut w = Writer::new();
    w.u16(spec.header().len() as u16);
    for (name, value) in spec.header() {
        w.str(name);
        write_value(&mut w, value);
    }
    w.into_bytes()
}

/// Decodes a header encoded by [`encode_header`] into a payload-less
/// [`PublicationSpec`].
///
/// # Errors
///
/// [`ScbrError::Codec`] on malformed input or trailing bytes.
pub fn decode_header(bytes: &[u8]) -> Result<PublicationSpec, ScbrError> {
    let mut r = Reader::new(bytes);
    let n = r.u16()? as usize;
    let mut spec = PublicationSpec::new();
    for _ in 0..n {
        let name = r.str()?;
        let value = read_value(&mut r)?;
        spec = spec.attr(&name, value);
    }
    if !r.is_exhausted() {
        return Err(ScbrError::Codec { context: "header trailing bytes" });
    }
    Ok(spec)
}

/// Decodes a wire header straight into a reusable [`CompiledHeader`]:
/// attribute names are interned against `schema` without building `String`s
/// and string values are FNV-hashed in place, so steady-state decoding of
/// headers whose attributes the schema has already seen performs no heap
/// allocation (beyond the entry buffer's one-time growth).
///
/// Semantically equivalent to [`decode_header`] followed by
/// [`PublicationSpec::compile_header`]: NaN values, duplicate attributes,
/// malformed bytes and trailing bytes are all rejected, and entries come
/// out sorted by attribute id. On error `header` is left empty.
///
/// # Errors
///
/// [`ScbrError::Codec`] on malformed input;
/// [`ScbrError::InvalidPublication`] on NaN or duplicate attributes.
pub fn decode_header_into(
    bytes: &[u8],
    schema: &crate::attr::AttrSchema,
    header: &mut crate::publication::CompiledHeader,
) -> Result<(), ScbrError> {
    let result = decode_header_entries(bytes, schema, header.entries_mut());
    if result.is_err() {
        header.entries_mut().clear();
    }
    result
}

fn decode_header_entries(
    bytes: &[u8],
    schema: &crate::attr::AttrSchema,
    entries: &mut Vec<(crate::attr::AttrId, crate::value::Scalar)>,
) -> Result<(), ScbrError> {
    use crate::value::{fnv1a, Scalar};
    entries.clear();
    let mut r = Reader::new(bytes);
    let n = r.u16()? as usize;
    for _ in 0..n {
        let id = schema.intern(r.str_ref()?);
        let scalar = match r.u8()? {
            TAG_INT => Scalar::Int(r.i64()?),
            TAG_FLOAT => {
                let f = r.f64()?;
                if f.is_nan() {
                    return Err(ScbrError::InvalidPublication { reason: "nan attribute value" });
                }
                Scalar::Float(f)
            }
            TAG_STR => Scalar::Str(fnv1a(r.str_ref()?.as_bytes())),
            _ => return Err(ScbrError::Codec { context: "value tag" }),
        };
        if entries.iter().any(|(a, _)| *a == id) {
            return Err(ScbrError::InvalidPublication { reason: "duplicate attribute" });
        }
        entries.push((id, scalar));
    }
    if !r.is_exhausted() {
        return Err(ScbrError::Codec { context: "header trailing bytes" });
    }
    entries.sort_unstable_by_key(|(a, _)| *a);
    Ok(())
}

/// Encodes the registration body a producer signs and forwards to routers:
/// subscription bytes plus routing metadata visible to the enclave.
pub fn encode_registration(
    sub: &SubscriptionSpec,
    id: SubscriptionId,
    client: ClientId,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(id.0).u64(client.0);
    w.bytes(&encode_subscription(sub));
    w.into_bytes()
}

/// Decodes a registration body.
///
/// # Errors
///
/// [`ScbrError::Codec`] on malformed input.
pub fn decode_registration(
    bytes: &[u8],
) -> Result<(SubscriptionSpec, SubscriptionId, ClientId), ScbrError> {
    let mut r = Reader::new(bytes);
    let id = SubscriptionId(r.u64()?);
    let client = ClientId(r.u64()?);
    let body = r.bytes()?;
    if !r.is_exhausted() {
        return Err(ScbrError::Codec { context: "registration trailing bytes" });
    }
    Ok((decode_subscription(&body)?, id, client))
}

/// Tag byte opening an unregistration body: keeps the two envelope body
/// formats (registration vs unregistration) from ever decoding as each
/// other, even though both travel `{body}SK` + producer signature.
const UNREGISTRATION_TAG: u8 = 0x55;

/// Encodes the unregistration body a producer signs and forwards to
/// routers: which subscription to retire, on behalf of which client.
pub fn encode_unregistration(id: SubscriptionId, client: ClientId) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(UNREGISTRATION_TAG).u64(id.0).u64(client.0);
    w.into_bytes()
}

/// Decodes an unregistration body.
///
/// # Errors
///
/// [`ScbrError::Codec`] on malformed input (including a registration body
/// passed by mistake — the tag byte differs).
pub fn decode_unregistration(bytes: &[u8]) -> Result<(SubscriptionId, ClientId), ScbrError> {
    let mut r = Reader::new(bytes);
    if r.u8()? != UNREGISTRATION_TAG {
        return Err(ScbrError::Codec { context: "unregistration tag" });
    }
    let id = SubscriptionId(r.u64()?);
    let client = ClientId(r.u64()?);
    if !r.is_exhausted() {
        return Err(ScbrError::Codec { context: "unregistration trailing bytes" });
    }
    Ok((id, client))
}

/// Encodes a published message: encrypted header, key epoch and payload
/// ciphertext.
pub fn encode_publish(header_ct: &[u8], epoch: KeyEpoch, payload_ct: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(header_ct).u64(epoch.0).bytes(payload_ct);
    w.into_bytes()
}

/// Decodes a published message.
///
/// # Errors
///
/// [`ScbrError::Codec`] on malformed input.
pub fn decode_publish(bytes: &[u8]) -> Result<(Vec<u8>, KeyEpoch, Vec<u8>), ScbrError> {
    let mut r = Reader::new(bytes);
    let header_ct = r.bytes()?;
    let epoch = KeyEpoch(r.u64()?);
    let payload_ct = r.bytes()?;
    if !r.is_exhausted() {
        return Err(ScbrError::Codec { context: "publish trailing bytes" });
    }
    Ok((header_ct, epoch, payload_ct))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        let mut w = Writer::new();
        w.u8(7).u16(300).u32(70_000).u64(1 << 40).i64(-5).f64(2.5).str("hé").bytes(&[1, 2]);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.i64().unwrap(), -5);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert_eq!(r.str().unwrap(), "hé");
        assert_eq!(r.bytes().unwrap(), vec![1, 2]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_fail() {
        let mut r = Reader::new(&[0, 0, 0, 5, 1, 2]); // claims 5 bytes, has 2
        assert!(r.bytes().is_err());
        let mut r2 = Reader::new(&[1]);
        assert!(r2.u32().is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Writer::new();
        w.bytes(&[0xff, 0xfe]);
        let buf = w.into_bytes();
        assert!(Reader::new(&buf).str().is_err());
    }

    #[test]
    fn value_round_trips() {
        for v in [Value::Int(-7), Value::Float(3.25), Value::Str("HAL".into())] {
            let mut w = Writer::new();
            write_value(&mut w, &v);
            let buf = w.into_bytes();
            assert_eq!(read_value(&mut Reader::new(&buf)).unwrap(), v);
        }
    }

    #[test]
    fn unknown_value_tag_rejected() {
        assert!(read_value(&mut Reader::new(&[9])).is_err());
    }

    #[test]
    fn subscription_round_trip() {
        let spec =
            SubscriptionSpec::new().eq("symbol", "HAL").lt("price", 50.0).ge("volume", 1000i64);
        let bytes = encode_subscription(&spec);
        assert_eq!(decode_subscription(&bytes).unwrap(), spec);
    }

    #[test]
    fn empty_subscription_round_trip() {
        let spec = SubscriptionSpec::new();
        assert_eq!(decode_subscription(&encode_subscription(&spec)).unwrap(), spec);
    }

    #[test]
    fn subscription_trailing_bytes_rejected() {
        let mut bytes = encode_subscription(&SubscriptionSpec::new().eq("a", 1i64));
        bytes.push(0);
        assert!(decode_subscription(&bytes).is_err());
    }

    #[test]
    fn header_round_trip() {
        let spec = PublicationSpec::new()
            .attr("symbol", "INTC")
            .attr("open", 35.2)
            .attr("volume", 1_000_000i64);
        let decoded = decode_header(&encode_header(&spec)).unwrap();
        assert_eq!(decoded.header(), spec.header());
        assert!(decoded.payload_bytes().is_empty(), "payload travels separately");
    }

    #[test]
    fn decode_header_into_matches_compile_path() {
        let schema = crate::attr::AttrSchema::new();
        let spec = PublicationSpec::new()
            .attr("symbol", "INTC")
            .attr("open", 35.2)
            .attr("volume", 1_000_000i64);
        let bytes = encode_header(&spec);
        let via_compile = decode_header(&bytes).unwrap().compile_header(&schema).unwrap();
        let mut reused = crate::publication::CompiledHeader::empty();
        decode_header_into(&bytes, &schema, &mut reused).unwrap();
        assert_eq!(reused, via_compile);
        // Reuse: a second decode fully replaces the first header's entries.
        let bytes2 = encode_header(&PublicationSpec::new().attr("open", 1i64));
        decode_header_into(&bytes2, &schema, &mut reused).unwrap();
        assert_eq!(reused.len(), 1);
    }

    #[test]
    fn decode_header_into_rejects_bad_input_and_clears() {
        let schema = crate::attr::AttrSchema::new();
        let mut header = crate::publication::CompiledHeader::empty();
        let nan = encode_header(&PublicationSpec::new().attr("x", f64::NAN));
        assert!(decode_header_into(&nan, &schema, &mut header).is_err());
        assert!(header.is_empty());
        let dup = encode_header(&PublicationSpec::new().attr("x", 1i64).attr("x", 2i64));
        assert!(decode_header_into(&dup, &schema, &mut header).is_err());
        assert!(header.is_empty());
        let mut trailing = encode_header(&PublicationSpec::new().attr("x", 1i64));
        trailing.push(0);
        assert!(decode_header_into(&trailing, &schema, &mut header).is_err());
        assert!(header.is_empty());
    }

    #[test]
    fn registration_round_trip() {
        let spec = SubscriptionSpec::new().eq("symbol", "HAL");
        let bytes = encode_registration(&spec, SubscriptionId(42), ClientId(7));
        let (back, id, client) = decode_registration(&bytes).unwrap();
        assert_eq!(back, spec);
        assert_eq!(id, SubscriptionId(42));
        assert_eq!(client, ClientId(7));
    }

    #[test]
    fn unregistration_round_trip() {
        let bytes = encode_unregistration(SubscriptionId(42), ClientId(7));
        assert_eq!(decode_unregistration(&bytes).unwrap(), (SubscriptionId(42), ClientId(7)));
    }

    #[test]
    fn unregistration_and_registration_bodies_never_cross_decode() {
        let reg = encode_registration(
            &SubscriptionSpec::new().eq("s", 1i64),
            SubscriptionId(1),
            ClientId(2),
        );
        assert!(decode_unregistration(&reg).is_err(), "registration body is not an unregistration");
        let unreg = encode_unregistration(SubscriptionId(1), ClientId(2));
        assert!(decode_registration(&unreg).is_err(), "unregistration body is not a registration");
        // Truncation and trailing bytes are rejected too.
        assert!(decode_unregistration(&unreg[..unreg.len() - 1]).is_err());
        let mut extended = unreg.clone();
        extended.push(0);
        assert!(decode_unregistration(&extended).is_err());
    }

    #[test]
    fn publish_round_trip() {
        let bytes = encode_publish(b"header-ct", KeyEpoch(3), b"payload-ct");
        let (h, e, p) = decode_publish(&bytes).unwrap();
        assert_eq!(h, b"header-ct");
        assert_eq!(e, KeyEpoch(3));
        assert_eq!(p, b"payload-ct");
    }

    #[test]
    fn publish_truncation_rejected() {
        let bytes = encode_publish(b"h", KeyEpoch(1), b"p");
        assert!(decode_publish(&bytes[..bytes.len() - 1]).is_err());
    }
}
