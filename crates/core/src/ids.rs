//! Identifier newtypes used across the SCBR protocol.

use std::fmt;

/// Identifies a client (subscriber) of the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u64);

impl ClientId {
    /// Top bit reserved for synthetic delivery identities that stand for
    /// an overlay link rather than an edge client. Real client ids never
    /// carry it; occupancy accounting uses it to tell edge load apart
    /// from link-interface copies.
    pub const INTERFACE_BIT: u64 = 1 << 63;

    /// True when this id is a synthetic link-interface identity rather
    /// than a real edge client.
    pub fn is_interface(self) -> bool {
        self.0 & Self::INTERFACE_BIT != 0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client#{}", self.0)
    }
}

/// Identifies a registered subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriptionId(pub u64);

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub#{}", self.0)
    }
}

/// Identifies a group-key epoch for payload encryption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KeyEpoch(pub u64);

impl KeyEpoch {
    /// The epoch after this one.
    #[must_use]
    pub fn next(self) -> KeyEpoch {
        KeyEpoch(self.0 + 1)
    }
}

impl fmt::Display for KeyEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ClientId(3).to_string(), "client#3");
        assert_eq!(SubscriptionId(9).to_string(), "sub#9");
        assert_eq!(KeyEpoch(2).to_string(), "epoch#2");
    }

    #[test]
    fn epoch_next() {
        assert_eq!(KeyEpoch::default().next(), KeyEpoch(1));
    }

    #[test]
    fn interface_bit_tags_link_identities() {
        assert!(!ClientId(3).is_interface());
        assert!(ClientId(ClientId::INTERFACE_BIT | 7).is_interface());
    }
}
