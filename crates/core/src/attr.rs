//! Attribute-name interning.
//!
//! Wire messages carry attribute *names*; each matching engine interns them
//! into dense [`AttrId`]s so compiled subscriptions and headers are
//! fixed-size and comparisons are integer comparisons.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Dense identifier of an interned attribute name (engine-local).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u16);

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attr#{}", self.0)
    }
}

#[derive(Debug, Default)]
struct SchemaInner {
    by_name: HashMap<String, AttrId>,
    names: Vec<String>,
}

/// A shared, thread-safe attribute interning table.
///
/// Cloning shares the underlying table.
///
/// ```
/// use scbr::attr::AttrSchema;
///
/// let schema = AttrSchema::new();
/// let price = schema.intern("price");
/// assert_eq!(schema.intern("price"), price); // stable
/// assert_eq!(schema.name(price).as_deref(), Some("price"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct AttrSchema {
    inner: Arc<RwLock<SchemaInner>>,
}

impl AttrSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        AttrSchema::default()
    }

    /// Interns `name`, returning its stable id.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` distinct attributes are interned
    /// (far beyond any realistic header).
    pub fn intern(&self, name: &str) -> AttrId {
        if let Some(&id) = self.inner.read().by_name.get(name) {
            return id;
        }
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_name.get(name) {
            return id; // raced with another writer
        }
        let id = AttrId(u16::try_from(inner.names.len()).expect("too many attributes"));
        inner.names.push(name.to_owned());
        inner.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<AttrId> {
        self.inner.read().by_name.get(name).copied()
    }

    /// The name behind an id, if valid.
    pub fn name(&self, id: AttrId) -> Option<String> {
        self.inner.read().names.get(id.0 as usize).cloned()
    }

    /// Number of interned attributes.
    pub fn len(&self) -> usize {
        self.inner.read().names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_dense() {
        let s = AttrSchema::new();
        let a = s.intern("alpha");
        let b = s.intern("beta");
        assert_eq!(a, AttrId(0));
        assert_eq!(b, AttrId(1));
        assert_eq!(s.intern("alpha"), a);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn lookup_and_name() {
        let s = AttrSchema::new();
        assert!(s.lookup("missing").is_none());
        let id = s.intern("price");
        assert_eq!(s.lookup("price"), Some(id));
        assert_eq!(s.name(id).as_deref(), Some("price"));
        assert!(s.name(AttrId(99)).is_none());
    }

    #[test]
    fn clones_share_state() {
        let s = AttrSchema::new();
        let s2 = s.clone();
        let id = s.intern("volume");
        assert_eq!(s2.lookup("volume"), Some(id));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let s = AttrSchema::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    (0..100).map(|i| s.intern(&format!("a{i}"))).collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<AttrId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        assert_eq!(s.len(), 100);
    }
}
