//! The SCBR protocol: key exchange, admission control and group keys.
//!
//! The paper's Figure 4 flow, implemented end to end:
//!
//! 1. A client encrypts its subscription under the producer's public key
//!    `PK` (hybrid RSA + AES, since subscriptions exceed one RSA block) and
//!    sends `{s}PK` to the producer — [`keys::hybrid_encrypt`].
//! 2. The producer decrypts, checks the client's standing
//!    ([`admission::ClientDirectory`]), re-encrypts under the symmetric key
//!    `SK` it shares with the routing enclave, and signs —
//!    [`keys::ProducerCrypto::seal_registration`].
//! 3. The routing enclave verifies and decrypts inside the enclave and
//!    inserts the subscription into its index (see
//!    [`crate::engine::MatchingEngine::register_envelope`]).
//! 4. Publications flow back (the paper's steps 4–6): headers encrypted
//!    under `SK`, payloads under a rotating *group key*
//!    ([`group::GroupKeyManager`]) so revoked clients lose access to new
//!    messages.
//!
//! `SK` itself reaches the enclave through remote attestation
//! ([`keys::provision_sk_via_attestation`]), so the infrastructure provider
//! never sees it.

pub mod admission;
pub mod group;
pub mod keys;
pub mod messages;
