//! Key material and the subscription key-exchange.
//!
//! The producer owns three long-lived secrets: its RSA key pair
//! (`PK`/`PK⁻¹`) that clients encrypt subscriptions to, the symmetric key
//! `SK` shared with routing enclaves, and an RSA signing identity routers
//! use to authenticate forwarded registrations (the same key pair serves
//! both roles here, as in the prototype).

use crate::codec::{self, Reader, Writer};
use crate::error::ScbrError;
use crate::ids::{ClientId, SubscriptionId};
use crate::publication::PublicationSpec;
use crate::subscription::SubscriptionSpec;
use scbr_crypto::ctr::{AesCtr, SymmetricKey};
use scbr_crypto::rng::CryptoRng;
use scbr_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use scbr_crypto::SealedBox;
use sgx_sim::attest::{provision, AttestationService, VerifierPolicy};
use sgx_sim::enclave::EnclaveContext;
use sgx_sim::SgxPlatform;

/// Hybrid public-key encryption: a fresh 128-bit content key is RSA-
/// encrypted, the body is sealed (AES-CTR + HMAC) under it.
///
/// # Errors
///
/// Propagates RSA failures (e.g. a key too small to wrap the content key).
pub fn hybrid_encrypt(
    pk: &RsaPublicKey,
    msg: &[u8],
    rng: &mut CryptoRng,
) -> Result<Vec<u8>, ScbrError> {
    let content_key = SymmetricKey::generate(rng);
    let wrapped = pk.encrypt(content_key.as_bytes(), rng)?;
    let sealed = SealedBox::new(&content_key).seal(msg, b"scbr-hybrid", rng);
    let mut w = Writer::new();
    w.bytes(&wrapped).bytes(&sealed);
    Ok(w.into_bytes())
}

/// Inverse of [`hybrid_encrypt`].
///
/// # Errors
///
/// [`ScbrError::Crypto`] on any unwrap or authentication failure.
pub fn hybrid_decrypt(pair: &RsaKeyPair, ciphertext: &[u8]) -> Result<Vec<u8>, ScbrError> {
    let mut r = Reader::new(ciphertext);
    let wrapped = r.bytes()?;
    let sealed = r.bytes()?;
    let content_key_bytes = pair.private().decrypt(&wrapped)?;
    let content_key = SymmetricKey::try_from_bytes(&content_key_bytes)?;
    Ok(SealedBox::new(&content_key).open(&sealed, b"scbr-hybrid")?)
}

/// The producer's cryptographic identity and the operations of protocol
/// steps 2 and 4.
#[derive(Debug, Clone)]
pub struct ProducerCrypto {
    rsa: RsaKeyPair,
    sk: SymmetricKey,
}

impl ProducerCrypto {
    /// Generates fresh producer keys (`bits`-bit RSA modulus plus a random
    /// 128-bit `SK`).
    ///
    /// # Errors
    ///
    /// Propagates RSA key-generation failures.
    pub fn generate(bits: usize, rng: &mut CryptoRng) -> Result<Self, ScbrError> {
        Ok(ProducerCrypto {
            rsa: RsaKeyPair::generate(bits, rng)?,
            sk: SymmetricKey::generate(rng),
        })
    }

    /// The public key `PK` clients encrypt subscriptions to (also the
    /// signature-verification key routers pin).
    pub fn public_key(&self) -> &RsaPublicKey {
        self.rsa.public()
    }

    /// The symmetric key `SK` shared with routing enclaves.
    pub fn sk(&self) -> &SymmetricKey {
        &self.sk
    }

    /// Decrypts a client's `{s}PK` submission (protocol step 2, first
    /// half).
    ///
    /// # Errors
    ///
    /// [`ScbrError::Crypto`] or [`ScbrError::Codec`] on malformed input.
    pub fn open_client_subscription(
        &self,
        ciphertext: &[u8],
    ) -> Result<SubscriptionSpec, ScbrError> {
        let plain = hybrid_decrypt(&self.rsa, ciphertext)?;
        codec::decode_subscription(&plain)
    }

    /// Re-encrypts a validated subscription under `SK` and signs it
    /// (protocol step 2, second half). The output is what routers accept in
    /// [`crate::engine::MatchingEngine::register_envelope`].
    ///
    /// # Errors
    ///
    /// Propagates signing failures.
    pub fn seal_registration(
        &self,
        spec: &SubscriptionSpec,
        id: SubscriptionId,
        client: ClientId,
        rng: &mut CryptoRng,
    ) -> Result<Vec<u8>, ScbrError> {
        let body = codec::encode_registration(spec, id, client);
        let body_ct = AesCtr::encrypt_with_nonce(&self.sk, rng, &body);
        let signature = self.rsa.private().sign(&body_ct)?;
        let mut w = Writer::new();
        w.bytes(&body_ct).bytes(&signature);
        Ok(w.into_bytes())
    }

    /// Seals an unregistration under `SK` and signs it — the removal
    /// counterpart of [`ProducerCrypto::seal_registration`]. Routers
    /// accept the output in
    /// [`crate::engine::MatchingEngine::unregister_envelope`], and overlay
    /// brokers forward it hop by hop (each enclave re-authenticates it
    /// independently).
    ///
    /// # Errors
    ///
    /// Propagates signing failures.
    pub fn seal_unregistration(
        &self,
        id: SubscriptionId,
        client: ClientId,
        rng: &mut CryptoRng,
    ) -> Result<Vec<u8>, ScbrError> {
        let body = codec::encode_unregistration(id, client);
        let body_ct = AesCtr::encrypt_with_nonce(&self.sk, rng, &body);
        let signature = self.rsa.private().sign(&body_ct)?;
        let mut w = Writer::new();
        w.bytes(&body_ct).bytes(&signature);
        Ok(w.into_bytes())
    }

    /// Encrypts a publication header under `SK` (protocol step 4).
    pub fn encrypt_header(&self, publication: &PublicationSpec, rng: &mut CryptoRng) -> Vec<u8> {
        let plain = codec::encode_header(publication);
        AesCtr::encrypt_with_nonce(&self.sk, rng, &plain)
    }
}

/// Client-side helper for protocol step 1: encrypt a subscription to the
/// producer.
///
/// # Errors
///
/// Propagates hybrid-encryption failures.
pub fn encrypt_subscription_for_producer(
    producer_pk: &RsaPublicKey,
    spec: &SubscriptionSpec,
    rng: &mut CryptoRng,
) -> Result<Vec<u8>, ScbrError> {
    hybrid_encrypt(producer_pk, &codec::encode_subscription(spec), rng)
}

/// The canonical bytes a client signs to prove an unsubscribe request:
/// a domain-separation label plus the client and subscription ids. Both
/// the client ([`crate::roles::ClientNode::unsubscribe`]) and the
/// producer's verification build exactly this buffer.
pub fn unsubscribe_signing_bytes(client: ClientId, id: SubscriptionId) -> Vec<u8> {
    let mut w = Writer::new();
    w.str("scbr-unsubscribe-v1").u64(client.0).u64(id.0);
    w.into_bytes()
}

/// Provisions `SK` (and the producer's verification key) into a routing
/// enclave via remote attestation:
///
/// 1. inside the enclave, generate a fresh response key pair and bind its
///    public half into a report;
/// 2. have the platform quote the report;
/// 3. as the producer, verify the quote against the attestation service
///    and a measurement policy, then release `SK` encrypted to the bound
///    key;
/// 4. back inside the enclave, unwrap `SK`.
///
/// Returns the unwrapped key material as seen inside the enclave, plus the
/// producer's public key bytes delivered alongside.
///
/// # Errors
///
/// Any attestation, policy or crypto failure aborts provisioning.
pub fn provision_sk_via_attestation(
    platform: &SgxPlatform,
    enclave: &sgx_sim::Enclave,
    service: &AttestationService,
    policy: &VerifierPolicy,
    producer: &ProducerCrypto,
    enclave_rng: &mut CryptoRng,
    producer_rng: &mut CryptoRng,
) -> Result<(SymmetricKey, RsaPublicKey), ScbrError> {
    // Step 1: inside the enclave.
    let (report, response_pair) = enclave.ecall(|ctx: &EnclaveContext<'_>| {
        let pair = RsaKeyPair::generate(512, enclave_rng)?;
        let report = sgx_sim::attest::create_report(ctx, provision::bind_key(pair.public()));
        Ok::<_, ScbrError>((report, pair))
    })?;
    // Step 2: quoting enclave.
    let quote = platform.quote(&report)?;
    let request =
        provision::ProvisioningRequest { quote, response_key: response_pair.public().clone() };
    // Step 3: producer side. SK and the verification key travel together.
    let mut secret = Writer::new();
    secret.bytes(producer.sk().as_bytes());
    let wrapped_secret =
        provision::release_secret(service, policy, &request, &secret.into_bytes(), producer_rng)?;
    let pk_bytes = producer.public_key().to_bytes();
    // Step 4: inside the enclave again.
    let sk = enclave.ecall(|_ctx| {
        let plain = response_pair.private().decrypt(&wrapped_secret)?;
        let mut r = Reader::new(&plain);
        let sk_bytes = r.bytes()?;
        Ok::<_, ScbrError>(SymmetricKey::try_from_bytes(&sk_bytes)?)
    })?;
    let pk = RsaPublicKey::from_bytes(&pk_bytes)?;
    Ok((sk, pk))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::enclave::EnclaveBuilder;

    fn rng(seed: u64) -> CryptoRng {
        CryptoRng::from_seed(seed)
    }

    #[test]
    fn hybrid_round_trip_large_message() {
        let mut r = rng(1);
        let pair = RsaKeyPair::generate(512, &mut r).unwrap();
        let msg = vec![0x7fu8; 10_000]; // far beyond one RSA block
        let ct = hybrid_encrypt(pair.public(), &msg, &mut r).unwrap();
        assert_eq!(hybrid_decrypt(&pair, &ct).unwrap(), msg);
    }

    #[test]
    fn hybrid_tamper_rejected() {
        let mut r = rng(2);
        let pair = RsaKeyPair::generate(512, &mut r).unwrap();
        let mut ct = hybrid_encrypt(pair.public(), b"secret", &mut r).unwrap();
        let n = ct.len();
        ct[n - 1] ^= 1;
        assert!(hybrid_decrypt(&pair, &ct).is_err());
    }

    #[test]
    fn hybrid_wrong_key_rejected() {
        let mut r = rng(3);
        let a = RsaKeyPair::generate(512, &mut r).unwrap();
        let b = RsaKeyPair::generate(512, &mut r).unwrap();
        let ct = hybrid_encrypt(a.public(), b"secret", &mut r).unwrap();
        assert!(hybrid_decrypt(&b, &ct).is_err());
    }

    #[test]
    fn client_submission_round_trip() {
        let mut r = rng(4);
        let producer = ProducerCrypto::generate(512, &mut r).unwrap();
        let spec = SubscriptionSpec::new().eq("symbol", "HAL").lt("price", 50.0);
        let ct = encrypt_subscription_for_producer(producer.public_key(), &spec, &mut r).unwrap();
        assert_eq!(producer.open_client_subscription(&ct).unwrap(), spec);
    }

    #[test]
    fn header_encryption_round_trip() {
        let mut r = rng(5);
        let producer = ProducerCrypto::generate(512, &mut r).unwrap();
        let publication = PublicationSpec::new().attr("symbol", "HAL").attr("price", 12.5);
        let ct = producer.encrypt_header(&publication, &mut r);
        let plain = AesCtr::decrypt_with_nonce(producer.sk(), &ct).unwrap();
        let decoded = codec::decode_header(&plain).unwrap();
        assert_eq!(decoded.header(), publication.header());
    }

    #[test]
    fn unregistration_sealing_round_trip() {
        use crate::ids::{ClientId, SubscriptionId};
        let mut r = rng(11);
        let producer = ProducerCrypto::generate(512, &mut r).unwrap();
        let envelope =
            producer.seal_unregistration(SubscriptionId(9), ClientId(4), &mut r).unwrap();
        // The envelope opens exactly like a registration: signature over the
        // ciphertext, body under SK.
        let mut reader = Reader::new(&envelope);
        let body_ct = reader.bytes().unwrap();
        let signature = reader.bytes().unwrap();
        producer.public_key().verify(&body_ct, &signature).unwrap();
        let body = AesCtr::decrypt_with_nonce(producer.sk(), &body_ct).unwrap();
        assert_eq!(codec::decode_unregistration(&body).unwrap(), (SubscriptionId(9), ClientId(4)));
    }

    #[test]
    fn unsubscribe_signing_bytes_are_canonical_and_distinct() {
        use crate::ids::{ClientId, SubscriptionId};
        let a = unsubscribe_signing_bytes(ClientId(1), SubscriptionId(2));
        assert_eq!(a, unsubscribe_signing_bytes(ClientId(1), SubscriptionId(2)));
        assert_ne!(a, unsubscribe_signing_bytes(ClientId(2), SubscriptionId(1)));
        assert_ne!(a, unsubscribe_signing_bytes(ClientId(1), SubscriptionId(3)));
    }

    #[test]
    fn attestation_provisioning_end_to_end() {
        let platform = SgxPlatform::for_testing(42);
        let enclave = platform
            .launch(EnclaveBuilder::new("scbr-router").add_page(b"engine").isv_prod_id(1))
            .unwrap();
        let mut service = AttestationService::new();
        service.trust_platform(platform.attestation_public_key().clone());
        let policy = VerifierPolicy::require_mr_enclave(enclave.identity().mr_enclave);
        let mut producer_rng = rng(6);
        let producer = ProducerCrypto::generate(512, &mut producer_rng).unwrap();
        let mut enclave_rng = rng(7);

        let (sk, pk) = provision_sk_via_attestation(
            &platform,
            &enclave,
            &service,
            &policy,
            &producer,
            &mut enclave_rng,
            &mut producer_rng,
        )
        .unwrap();
        assert_eq!(sk.as_bytes(), producer.sk().as_bytes());
        assert_eq!(&pk, producer.public_key());
    }

    #[test]
    fn attestation_provisioning_rejects_wrong_measurement() {
        let platform = SgxPlatform::for_testing(43);
        let enclave =
            platform.launch(EnclaveBuilder::new("evil-router").add_page(b"evil engine")).unwrap();
        let mut service = AttestationService::new();
        service.trust_platform(platform.attestation_public_key().clone());
        // Policy pins a different measurement.
        let policy = VerifierPolicy::require_mr_enclave([0xde; 32]);
        let mut producer_rng = rng(8);
        let producer = ProducerCrypto::generate(512, &mut producer_rng).unwrap();
        let mut enclave_rng = rng(9);
        let result = provision_sk_via_attestation(
            &platform,
            &enclave,
            &service,
            &policy,
            &producer,
            &mut enclave_rng,
            &mut producer_rng,
        );
        assert!(result.is_err(), "SK must not reach an unexpected enclave");
    }
}
