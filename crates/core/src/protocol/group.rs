//! Group-key management for payload encryption.
//!
//! Publication *payloads* are opaque to SCBR: they are encrypted under a
//! symmetric group key shared between the producer and its current
//! clients, never by the router (§3.4). Rotating the key on membership
//! change ("rekeying") cuts off clients that cancelled or were revoked —
//! they can still receive forwarded ciphertexts but cannot read them.
//!
//! Key distribution wraps each epoch key individually under every member's
//! RSA public key. (The paper scopes smarter group-key schemes out; this is
//! the straightforward realisation.)

use crate::error::ScbrError;
use crate::ids::{ClientId, KeyEpoch};
use crate::protocol::keys::{hybrid_decrypt, hybrid_encrypt};
use scbr_crypto::ctr::SymmetricKey;
use scbr_crypto::rng::CryptoRng;
use scbr_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use scbr_crypto::SealedBox;
use std::collections::HashMap;

/// Producer-side group-key state.
pub struct GroupKeyManager {
    epoch: KeyEpoch,
    current: SymmetricKey,
    members: HashMap<ClientId, RsaPublicKey>,
}

impl std::fmt::Debug for GroupKeyManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the current epoch key; epoch + membership suffice.
        f.debug_struct("GroupKeyManager")
            .field("epoch", &self.epoch)
            .field("members", &self.members.len())
            .finish()
    }
}

impl GroupKeyManager {
    /// Creates a manager at epoch 0 with a fresh key and no members.
    pub fn new(rng: &mut CryptoRng) -> Self {
        GroupKeyManager {
            epoch: KeyEpoch::default(),
            current: SymmetricKey::generate(rng),
            members: HashMap::new(),
        }
    }

    /// Current epoch.
    pub fn epoch(&self) -> KeyEpoch {
        self.epoch
    }

    /// Current members.
    pub fn members(&self) -> Vec<ClientId> {
        let mut ids: Vec<ClientId> = self.members.keys().copied().collect();
        ids.sort_unstable_by_key(|c| c.0);
        ids
    }

    /// Adds a member; call [`GroupKeyManager::rekey`] afterwards if forward
    /// secrecy against the new member is wanted for *past* messages (new
    /// members cannot read earlier epochs anyway unless handed old keys).
    pub fn add_member(&mut self, id: ClientId, key: RsaPublicKey) {
        self.members.insert(id, key);
    }

    /// Removes a member. Until the next [`GroupKeyManager::rekey`] the
    /// removed client can still read the *current* epoch.
    pub fn remove_member(&mut self, id: ClientId) -> bool {
        self.members.remove(&id).is_some()
    }

    /// Rotates to a fresh key and a new epoch.
    pub fn rekey(&mut self, rng: &mut CryptoRng) -> KeyEpoch {
        self.epoch = self.epoch.next();
        self.current = SymmetricKey::generate(rng);
        self.epoch
    }

    /// Encrypts a payload under the current epoch key. Returns the epoch to
    /// stamp on the publication.
    pub fn encrypt_payload(&self, payload: &[u8], rng: &mut CryptoRng) -> (KeyEpoch, Vec<u8>) {
        let sealed = SealedBox::new(&self.current).seal(payload, &self.epoch.0.to_be_bytes(), rng);
        (self.epoch, sealed)
    }

    /// Wraps the current epoch key for every member: `client -> wrapped`.
    ///
    /// # Errors
    ///
    /// Propagates RSA failures.
    pub fn key_updates(&self, rng: &mut CryptoRng) -> Result<Vec<(ClientId, Vec<u8>)>, ScbrError> {
        let mut out = Vec::with_capacity(self.members.len());
        let mut ids = self.members();
        ids.sort_unstable_by_key(|c| c.0);
        for id in ids {
            let key = &self.members[&id];
            let mut body = Vec::with_capacity(8 + self.current.as_bytes().len());
            body.extend_from_slice(&self.epoch.0.to_be_bytes());
            body.extend_from_slice(self.current.as_bytes());
            out.push((id, hybrid_encrypt(key, &body, rng)?));
        }
        Ok(out)
    }
}

/// Client-side store of received group keys.
#[derive(Default)]
pub struct GroupKeyStore {
    keys: HashMap<KeyEpoch, SymmetricKey>,
}

impl std::fmt::Debug for GroupKeyStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Print which epochs are held, never the key material.
        let mut epochs: Vec<_> = self.keys.keys().copied().collect();
        epochs.sort_unstable_by_key(|e| e.0);
        f.debug_struct("GroupKeyStore").field("epochs", &epochs).finish()
    }
}

impl GroupKeyStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        GroupKeyStore::default()
    }

    /// Ingests a wrapped key update addressed to this client.
    ///
    /// # Errors
    ///
    /// Crypto failures when the update is not for this client's key pair.
    pub fn ingest_update(
        &mut self,
        pair: &RsaKeyPair,
        wrapped: &[u8],
    ) -> Result<KeyEpoch, ScbrError> {
        let body = hybrid_decrypt(pair, wrapped)?;
        if body.len() < 8 {
            return Err(ScbrError::Codec { context: "key update" });
        }
        let epoch = KeyEpoch(u64::from_be_bytes(body[..8].try_into().expect("8 bytes")));
        let key = SymmetricKey::try_from_bytes(&body[8..])?;
        self.keys.insert(epoch, key);
        Ok(epoch)
    }

    /// Decrypts a payload stamped with `epoch`.
    ///
    /// # Errors
    ///
    /// [`ScbrError::MissingKeys`] when this client never received that
    /// epoch's key (e.g. it was revoked before the rekey), or crypto errors
    /// on tampering.
    pub fn open_payload(&self, epoch: KeyEpoch, sealed: &[u8]) -> Result<Vec<u8>, ScbrError> {
        let key =
            self.keys.get(&epoch).ok_or(ScbrError::MissingKeys { which: "group key epoch" })?;
        Ok(SealedBox::new(key).open(sealed, &epoch.0.to_be_bytes())?)
    }

    /// Number of epochs held.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no key has been received yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client_pair(seed: u64) -> RsaKeyPair {
        let mut rng = CryptoRng::from_seed(seed);
        RsaKeyPair::generate(512, &mut rng).unwrap()
    }

    #[test]
    fn member_receives_and_reads_payload() {
        let mut rng = CryptoRng::from_seed(1);
        let mut mgr = GroupKeyManager::new(&mut rng);
        let alice = client_pair(100);
        mgr.add_member(ClientId(1), alice.public().clone());

        let mut store = GroupKeyStore::new();
        for (id, wrapped) in mgr.key_updates(&mut rng).unwrap() {
            assert_eq!(id, ClientId(1));
            store.ingest_update(&alice, &wrapped).unwrap();
        }
        let (epoch, sealed) = mgr.encrypt_payload(b"quote body", &mut rng);
        assert_eq!(store.open_payload(epoch, &sealed).unwrap(), b"quote body");
    }

    #[test]
    fn revoked_member_loses_new_epochs() {
        let mut rng = CryptoRng::from_seed(2);
        let mut mgr = GroupKeyManager::new(&mut rng);
        let alice = client_pair(101);
        let bob = client_pair(102);
        mgr.add_member(ClientId(1), alice.public().clone());
        mgr.add_member(ClientId(2), bob.public().clone());

        let mut alice_store = GroupKeyStore::new();
        let mut bob_store = GroupKeyStore::new();
        for (id, wrapped) in mgr.key_updates(&mut rng).unwrap() {
            match id {
                ClientId(1) => alice_store.ingest_update(&alice, &wrapped).unwrap(),
                ClientId(2) => bob_store.ingest_update(&bob, &wrapped).unwrap(),
                _ => unreachable!(),
            };
        }
        // Bob cancels; producer rekeys and distributes to remaining members.
        mgr.remove_member(ClientId(2));
        mgr.rekey(&mut rng);
        for (id, wrapped) in mgr.key_updates(&mut rng).unwrap() {
            assert_eq!(id, ClientId(1), "bob receives nothing");
            alice_store.ingest_update(&alice, &wrapped).unwrap();
        }
        let (epoch, sealed) = mgr.encrypt_payload(b"fresh data", &mut rng);
        assert_eq!(alice_store.open_payload(epoch, &sealed).unwrap(), b"fresh data");
        assert!(matches!(
            bob_store.open_payload(epoch, &sealed),
            Err(ScbrError::MissingKeys { .. })
        ));
    }

    #[test]
    fn old_epoch_remains_readable_by_old_members() {
        let mut rng = CryptoRng::from_seed(3);
        let mut mgr = GroupKeyManager::new(&mut rng);
        let bob = client_pair(103);
        mgr.add_member(ClientId(2), bob.public().clone());
        let mut bob_store = GroupKeyStore::new();
        for (_, wrapped) in mgr.key_updates(&mut rng).unwrap() {
            bob_store.ingest_update(&bob, &wrapped).unwrap();
        }
        let (old_epoch, old_sealed) = mgr.encrypt_payload(b"old", &mut rng);
        mgr.remove_member(ClientId(2));
        mgr.rekey(&mut rng);
        // Bob keeps access to what he legitimately received.
        assert_eq!(bob_store.open_payload(old_epoch, &old_sealed).unwrap(), b"old");
    }

    #[test]
    fn wrong_client_cannot_ingest_update() {
        let mut rng = CryptoRng::from_seed(4);
        let mut mgr = GroupKeyManager::new(&mut rng);
        let alice = client_pair(104);
        let eve = client_pair(105);
        mgr.add_member(ClientId(1), alice.public().clone());
        let updates = mgr.key_updates(&mut rng).unwrap();
        let mut eve_store = GroupKeyStore::new();
        assert!(eve_store.ingest_update(&eve, &updates[0].1).is_err());
    }

    #[test]
    fn tampered_payload_rejected() {
        let mut rng = CryptoRng::from_seed(5);
        let mut mgr = GroupKeyManager::new(&mut rng);
        let alice = client_pair(106);
        mgr.add_member(ClientId(1), alice.public().clone());
        let mut store = GroupKeyStore::new();
        for (_, wrapped) in mgr.key_updates(&mut rng).unwrap() {
            store.ingest_update(&alice, &wrapped).unwrap();
        }
        let (epoch, mut sealed) = mgr.encrypt_payload(b"data", &mut rng);
        sealed[10] ^= 1;
        assert!(store.open_payload(epoch, &sealed).is_err());
    }

    #[test]
    fn epochs_are_isolated() {
        let mut rng = CryptoRng::from_seed(6);
        let mut mgr = GroupKeyManager::new(&mut rng);
        let alice = client_pair(107);
        mgr.add_member(ClientId(1), alice.public().clone());
        let mut store = GroupKeyStore::new();
        for (_, w) in mgr.key_updates(&mut rng).unwrap() {
            store.ingest_update(&alice, &w).unwrap();
        }
        let (e0, sealed0) = mgr.encrypt_payload(b"zero", &mut rng);
        mgr.rekey(&mut rng);
        for (_, w) in mgr.key_updates(&mut rng).unwrap() {
            store.ingest_update(&alice, &w).unwrap();
        }
        // A payload from epoch 1 cannot be opened claiming epoch 0.
        let (e1, sealed1) = mgr.encrypt_payload(b"one", &mut rng);
        assert_ne!(e0, e1);
        assert!(store.open_payload(e0, &sealed1).is_err());
        assert_eq!(store.open_payload(e0, &sealed0).unwrap(), b"zero");
        assert_eq!(store.open_payload(e1, &sealed1).unwrap(), b"one");
        assert_eq!(store.len(), 2);
    }
}
