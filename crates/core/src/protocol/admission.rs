//! Client admission control.
//!
//! SCBR's design gives producers the ability to "decide whether they accept
//! a subscription from a client, as well as to subsequently invalidate it"
//! (§3.3): clients pay for the service and can be suspended or excluded.
//! The producer consults this directory in protocol step 2 before
//! forwarding any subscription to a router.

use crate::error::ScbrError;
use crate::ids::{ClientId, SubscriptionId};
use scbr_crypto::rsa::RsaPublicKey;
use std::collections::HashMap;

/// A client's standing with the service provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientStatus {
    /// In good standing; subscriptions are accepted.
    Active,
    /// Temporarily barred (e.g. payment lapse); may be reactivated.
    Suspended,
    /// Permanently excluded; cannot be reactivated.
    Revoked,
}

/// Per-client record.
#[derive(Debug, Clone)]
pub struct ClientRecord {
    status: ClientStatus,
    /// The client's public key (used to wrap group keys for payload
    /// delivery).
    public_key: RsaPublicKey,
    subscriptions: Vec<SubscriptionId>,
}

impl ClientRecord {
    /// The client's standing.
    pub fn status(&self) -> ClientStatus {
        self.status
    }

    /// The client's public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public_key
    }

    /// Subscriptions registered on behalf of this client.
    pub fn subscriptions(&self) -> &[SubscriptionId] {
        &self.subscriptions
    }
}

/// The producer's directory of known clients.
#[derive(Debug, Default)]
pub struct ClientDirectory {
    clients: HashMap<ClientId, ClientRecord>,
    next_subscription: u64,
}

impl ClientDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        ClientDirectory::default()
    }

    /// Admits a new client with its public key.
    pub fn admit(&mut self, id: ClientId, public_key: RsaPublicKey) {
        self.clients.insert(
            id,
            ClientRecord { status: ClientStatus::Active, public_key, subscriptions: Vec::new() },
        );
    }

    /// Suspends an active client.
    ///
    /// # Errors
    ///
    /// [`ScbrError::NotFound`] for unknown clients.
    pub fn suspend(&mut self, id: ClientId) -> Result<(), ScbrError> {
        let record = self.clients.get_mut(&id).ok_or(ScbrError::NotFound { what: "client" })?;
        if record.status == ClientStatus::Active {
            record.status = ClientStatus::Suspended;
        }
        Ok(())
    }

    /// Reactivates a suspended client (revoked clients stay revoked).
    ///
    /// # Errors
    ///
    /// [`ScbrError::NotFound`] for unknown clients.
    pub fn reactivate(&mut self, id: ClientId) -> Result<(), ScbrError> {
        let record = self.clients.get_mut(&id).ok_or(ScbrError::NotFound { what: "client" })?;
        if record.status == ClientStatus::Suspended {
            record.status = ClientStatus::Active;
        }
        Ok(())
    }

    /// Permanently revokes a client.
    ///
    /// # Errors
    ///
    /// [`ScbrError::NotFound`] for unknown clients.
    pub fn revoke(&mut self, id: ClientId) -> Result<(), ScbrError> {
        let record = self.clients.get_mut(&id).ok_or(ScbrError::NotFound { what: "client" })?;
        record.status = ClientStatus::Revoked;
        Ok(())
    }

    /// Checks that `id` may register subscriptions right now.
    ///
    /// # Errors
    ///
    /// [`ScbrError::NotAdmitted`] naming the current status.
    pub fn check_admitted(&self, id: ClientId) -> Result<&ClientRecord, ScbrError> {
        match self.clients.get(&id) {
            None => Err(ScbrError::NotAdmitted { status: "unknown" }),
            Some(r) => match r.status {
                ClientStatus::Active => Ok(r),
                ClientStatus::Suspended => Err(ScbrError::NotAdmitted { status: "suspended" }),
                ClientStatus::Revoked => Err(ScbrError::NotAdmitted { status: "revoked" }),
            },
        }
    }

    /// Records a subscription issued to an admitted client, allocating its
    /// id.
    ///
    /// # Errors
    ///
    /// [`ScbrError::NotAdmitted`] if the client is not in good standing.
    pub fn issue_subscription(&mut self, id: ClientId) -> Result<SubscriptionId, ScbrError> {
        self.check_admitted(id)?;
        let sub = SubscriptionId(self.next_subscription);
        self.next_subscription += 1;
        self.clients.get_mut(&id).expect("checked above").subscriptions.push(sub);
        Ok(sub)
    }

    /// Retires a subscription previously issued to `id` — the bookkeeping
    /// half of an unsubscribe. Ownership is enforced: a client can only
    /// retire its own subscriptions.
    ///
    /// # Errors
    ///
    /// [`ScbrError::NotFound`] for unknown clients or for a subscription
    /// not (or no longer) owned by this client.
    pub fn retire_subscription(
        &mut self,
        id: ClientId,
        sub: SubscriptionId,
    ) -> Result<(), ScbrError> {
        let record = self.clients.get_mut(&id).ok_or(ScbrError::NotFound { what: "client" })?;
        let pos = record
            .subscriptions
            .iter()
            .position(|s| *s == sub)
            .ok_or(ScbrError::NotFound { what: "subscription" })?;
        record.subscriptions.remove(pos);
        Ok(())
    }

    /// Looks up a client record regardless of standing.
    pub fn get(&self, id: ClientId) -> Option<&ClientRecord> {
        self.clients.get(&id)
    }

    /// Ids of all clients currently in good standing.
    pub fn active_clients(&self) -> Vec<ClientId> {
        let mut ids: Vec<ClientId> = self
            .clients
            .iter()
            .filter(|(_, r)| r.status == ClientStatus::Active)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable_by_key(|c| c.0);
        ids
    }

    /// Number of known clients (any status).
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// True when no client is known.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scbr_crypto::{CryptoRng, RsaKeyPair};

    fn key(rng: &mut CryptoRng) -> RsaPublicKey {
        RsaKeyPair::generate(512, rng).unwrap().public().clone()
    }

    #[test]
    fn lifecycle() {
        let mut rng = CryptoRng::from_seed(1);
        let mut dir = ClientDirectory::new();
        let c = ClientId(1);
        assert!(dir.check_admitted(c).is_err());
        dir.admit(c, key(&mut rng));
        assert!(dir.check_admitted(c).is_ok());

        dir.suspend(c).unwrap();
        assert!(matches!(
            dir.check_admitted(c),
            Err(ScbrError::NotAdmitted { status: "suspended" })
        ));
        dir.reactivate(c).unwrap();
        assert!(dir.check_admitted(c).is_ok());

        dir.revoke(c).unwrap();
        assert!(matches!(dir.check_admitted(c), Err(ScbrError::NotAdmitted { status: "revoked" })));
        // Revocation is permanent.
        dir.reactivate(c).unwrap();
        assert!(dir.check_admitted(c).is_err());
    }

    #[test]
    fn unknown_client_operations_fail() {
        let mut dir = ClientDirectory::new();
        assert!(dir.suspend(ClientId(9)).is_err());
        assert!(dir.revoke(ClientId(9)).is_err());
        assert!(dir.issue_subscription(ClientId(9)).is_err());
    }

    #[test]
    fn subscription_issuance_tracks_ids() {
        let mut rng = CryptoRng::from_seed(2);
        let mut dir = ClientDirectory::new();
        dir.admit(ClientId(1), key(&mut rng));
        dir.admit(ClientId(2), key(&mut rng));
        let s1 = dir.issue_subscription(ClientId(1)).unwrap();
        let s2 = dir.issue_subscription(ClientId(2)).unwrap();
        let s3 = dir.issue_subscription(ClientId(1)).unwrap();
        assert_ne!(s1, s2);
        assert_ne!(s2, s3);
        assert_eq!(dir.get(ClientId(1)).unwrap().subscriptions(), &[s1, s3]);
    }

    #[test]
    fn retire_enforces_ownership_and_is_single_shot() {
        let mut rng = CryptoRng::from_seed(5);
        let mut dir = ClientDirectory::new();
        dir.admit(ClientId(1), key(&mut rng));
        dir.admit(ClientId(2), key(&mut rng));
        let s1 = dir.issue_subscription(ClientId(1)).unwrap();
        // The wrong client cannot retire someone else's subscription.
        assert!(dir.retire_subscription(ClientId(2), s1).is_err());
        assert_eq!(dir.get(ClientId(1)).unwrap().subscriptions(), &[s1]);
        // The owner can, exactly once.
        dir.retire_subscription(ClientId(1), s1).unwrap();
        assert!(dir.get(ClientId(1)).unwrap().subscriptions().is_empty());
        assert!(dir.retire_subscription(ClientId(1), s1).is_err(), "already retired");
        // Unknown clients are a clean error.
        assert!(dir.retire_subscription(ClientId(9), s1).is_err());
    }

    #[test]
    fn suspended_client_cannot_subscribe() {
        let mut rng = CryptoRng::from_seed(3);
        let mut dir = ClientDirectory::new();
        dir.admit(ClientId(1), key(&mut rng));
        dir.suspend(ClientId(1)).unwrap();
        assert!(dir.issue_subscription(ClientId(1)).is_err());
    }

    #[test]
    fn active_clients_lists_only_active() {
        let mut rng = CryptoRng::from_seed(4);
        let mut dir = ClientDirectory::new();
        for i in 0..4 {
            dir.admit(ClientId(i), key(&mut rng));
        }
        dir.suspend(ClientId(1)).unwrap();
        dir.revoke(ClientId(3)).unwrap();
        assert_eq!(dir.active_clients(), vec![ClientId(0), ClientId(2)]);
        assert_eq!(dir.len(), 4);
    }
}
