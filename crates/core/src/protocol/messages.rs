//! Wire messages exchanged by the SCBR roles.
//!
//! Every message travels as a [`scbr_net::Envelope`] whose kind tags the
//! variant and whose payload is the binary body. The enum covers the whole
//! Figure 4 flow plus delivery and key updates.

use crate::codec::{Reader, Writer};
use crate::error::ScbrError;
use crate::ids::{ClientId, KeyEpoch, SubscriptionId};
use scbr_net::{batch, Envelope};

/// One publication inside a [`Message::PublishBatch`]: the same triple a
/// [`Message::Publish`] carries.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishItem {
    /// `{header}SK`.
    pub header_ct: Vec<u8>,
    /// Group-key epoch of the payload.
    pub epoch: KeyEpoch,
    /// Payload ciphertext (opaque to the router).
    pub payload_ct: Vec<u8>,
}

impl PublishItem {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&self.header_ct).u64(self.epoch.0).bytes(&self.payload_ct);
        w.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<Self, ScbrError> {
        let mut r = Reader::new(bytes);
        let item = PublishItem {
            header_ct: r.bytes()?,
            epoch: KeyEpoch(r.u64()?),
            payload_ct: r.bytes()?,
        };
        if !r.is_exhausted() {
            return Err(ScbrError::Codec { context: "publish item trailing bytes" });
        }
        Ok(item)
    }
}

/// All SCBR protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → producer: `{s}PK` plus the client's identity (step 1).
    SubmitSubscription {
        /// Requesting client.
        client: ClientId,
        /// Hybrid-encrypted subscription bytes.
        encrypted_subscription: Vec<u8>,
    },
    /// Producer → client: subscription accepted under this id.
    SubscriptionAccepted {
        /// The id the producer allocated.
        id: SubscriptionId,
    },
    /// Producer → client: subscription refused.
    SubscriptionRejected {
        /// Human-readable reason (no sensitive detail).
        reason: String,
    },
    /// Producer → router: signed `{s}SK` registration envelope (step 2).
    Register {
        /// Envelope accepted by the routing enclave.
        envelope: Vec<u8>,
    },
    /// Router → producer: registration landed.
    RegisterAck {
        /// The registered subscription id.
        id: SubscriptionId,
    },
    /// Client → producer: retire one of this client's subscriptions. The
    /// signature (by the client's admission key, over
    /// [`crate::protocol::keys::unsubscribe_signing_bytes`]) proves the
    /// request really comes from the subscription's owner.
    Unsubscribe {
        /// The requesting client.
        client: ClientId,
        /// The subscription to retire.
        id: SubscriptionId,
        /// Client signature over the canonical unsubscribe bytes.
        signature: Vec<u8>,
    },
    /// Producer → client: the subscription was retired (idempotent — a
    /// second unsubscribe of the same id also lands here).
    Unsubscribed {
        /// The retired subscription id.
        id: SubscriptionId,
    },
    /// Producer → router: signed `{id, client}SK` unregistration envelope
    /// — the removal counterpart of [`Message::Register`], authenticated
    /// by the routing enclave the same way.
    Unregister {
        /// Envelope accepted by the routing enclave.
        envelope: Vec<u8>,
    },
    /// Router → producer: unregistration processed (idempotent).
    UnregisterAck {
        /// The retired subscription id.
        id: SubscriptionId,
    },
    /// Producer → router: encrypted header + payload (step 4).
    Publish {
        /// `{header}SK`.
        header_ct: Vec<u8>,
        /// Group-key epoch of the payload.
        epoch: KeyEpoch,
        /// Payload ciphertext (opaque to the router).
        payload_ct: Vec<u8>,
    },
    /// Producer → router: a whole batch of encrypted publications in one
    /// wire unit (the batch-first pipeline; the router matches the batch
    /// through a single enclave crossing).
    PublishBatch {
        /// The batched publications, in publish order.
        items: Vec<PublishItem>,
    },
    /// Router → client: matched publication payload (step 6).
    Deliver {
        /// Group-key epoch of the payload.
        epoch: KeyEpoch,
        /// Payload ciphertext.
        payload_ct: Vec<u8>,
    },
    /// Producer → client: a wrapped group key for an epoch.
    KeyUpdate {
        /// Hybrid-encrypted `epoch || key` bytes.
        wrapped: Vec<u8>,
    },
    /// Client → router: identify this connection as a client's delivery
    /// channel.
    Hello {
        /// The connecting client.
        client: ClientId,
    },
    /// Router → router: first overlay link-handshake message (a serialised
    /// `sgx_sim::link::LinkHello` — quote plus bound response key).
    LinkHello {
        /// Opaque handshake bytes (parsed by the overlay layer).
        payload: Vec<u8>,
    },
    /// Router → router: second link-handshake message (responder quote and
    /// wrapped secret; a serialised `sgx_sim::link::LinkAccept`).
    LinkAccept {
        /// Opaque handshake bytes.
        payload: Vec<u8>,
    },
    /// Router → router: final link-handshake message (a serialised
    /// `sgx_sim::link::LinkFinish`).
    LinkFinish {
        /// Opaque handshake bytes.
        payload: Vec<u8>,
    },
    /// Router → router: a registration envelope propagated through the
    /// overlay (covering-pruned at each hop). The envelope is the same
    /// producer-signed `{s}SK` unit a [`Message::Register`] carries, so
    /// the next hop's enclave can authenticate it independently.
    SubForward {
        /// The forwarded registration envelope.
        envelope: Vec<u8>,
    },
    /// Router → router: an unregistration envelope propagated through the
    /// overlay. Sent only on links the subscription was actually forwarded
    /// on (a covering-pruned removal generates no traffic); receiving it
    /// may *uncover* previously-pruned subscriptions, which the receiver
    /// then forwards upstream as fresh [`Message::SubForward`]s.
    SubRemove {
        /// The forwarded unregistration envelope.
        envelope: Vec<u8>,
    },
    /// Router → router: a rejoining broker asks a surviving neighbour to
    /// replay the live registration envelopes it had forwarded on this
    /// link. The neighbour answers with one [`Message::SubForward`] per
    /// live forwarded subscription, terminated by a
    /// [`Message::ReplayDone`].
    ReplayRequest,
    /// Router → router: terminates a replay; `count` is the number of
    /// [`Message::SubForward`]s that preceded it, so the rejoiner can
    /// cross-check completeness before reconciling its restored state.
    ReplayDone {
        /// Envelopes replayed on this link.
        count: u32,
    },
    /// Router → router: withdraw subscription `id` without a signed
    /// unregistration envelope. Only valid **down** the reverse path: the
    /// receiver accepts it solely for a subscription it learnt *from this
    /// link* (link authentication — the attested peer — stands in for the
    /// producer signature, which the peer may never have seen if the
    /// removal happened while this broker was crashed). Used during
    /// rejoin reconciliation to propagate removals that were lost while a
    /// broker was down.
    SubDrop {
        /// The withdrawn subscription.
        id: SubscriptionId,
    },
    /// Router → router: a liveness beacon. Carries no payload — on a
    /// sealed link the frame is AEAD-sealed and sequence-numbered like
    /// any data frame, so receiving one (or observing its sequence
    /// number skip ahead) is an authenticated signal that the peer is
    /// alive (or that frames were lost). Brokers emit one per link per
    /// heartbeat interval from their timer tick.
    Heartbeat,
    /// Generic failure notice.
    Error {
        /// What went wrong.
        message: String,
    },
    /// Orderly shutdown of a role's event loop.
    Shutdown,
}

impl Message {
    /// Envelope kind tag for this variant.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::SubmitSubscription { .. } => "submit",
            Message::SubscriptionAccepted { .. } => "accepted",
            Message::SubscriptionRejected { .. } => "rejected",
            Message::Register { .. } => "register",
            Message::RegisterAck { .. } => "register-ack",
            Message::Unsubscribe { .. } => "unsubscribe",
            Message::Unsubscribed { .. } => "unsubscribed",
            Message::Unregister { .. } => "unregister",
            Message::UnregisterAck { .. } => "unregister-ack",
            Message::Publish { .. } => "publish",
            Message::PublishBatch { .. } => "publish-batch",
            Message::Deliver { .. } => "deliver",
            Message::KeyUpdate { .. } => "key-update",
            Message::Hello { .. } => "hello",
            Message::LinkHello { .. } => "link-hello",
            Message::LinkAccept { .. } => "link-accept",
            Message::LinkFinish { .. } => "link-finish",
            Message::SubForward { .. } => "sub-forward",
            Message::SubRemove { .. } => "sub-remove",
            Message::ReplayRequest => "replay-request",
            Message::ReplayDone { .. } => "replay-done",
            Message::SubDrop { .. } => "sub-drop",
            Message::Heartbeat => "heartbeat",
            Message::Error { .. } => "error",
            Message::Shutdown => "shutdown",
        }
    }

    /// Serialises into an envelope.
    ///
    /// # Panics
    ///
    /// Panics if a [`Message::PublishBatch`] exceeds the net layer's
    /// frame limits (more than [`scbr_net::batch::MAX_BATCH_ITEMS`] items
    /// or a packed payload beyond `MAX_FRAME`). The producer role never
    /// builds such batches — it chunks outgoing traffic (see
    /// [`crate::roles::producer`]); direct API users assembling their own
    /// `PublishBatch` messages must do the same.
    pub fn to_envelope(&self) -> Envelope {
        let mut w = Writer::new();
        match self {
            Message::SubmitSubscription { client, encrypted_subscription } => {
                w.u64(client.0).bytes(encrypted_subscription);
            }
            Message::SubscriptionAccepted { id } => {
                w.u64(id.0);
            }
            Message::SubscriptionRejected { reason } => {
                w.str(reason);
            }
            Message::Register { envelope } => {
                w.bytes(envelope);
            }
            Message::RegisterAck { id } => {
                w.u64(id.0);
            }
            Message::Unsubscribe { client, id, signature } => {
                w.u64(client.0).u64(id.0).bytes(signature);
            }
            Message::Unsubscribed { id } | Message::UnregisterAck { id } => {
                w.u64(id.0);
            }
            Message::Unregister { envelope } => {
                w.bytes(envelope);
            }
            Message::Publish { header_ct, epoch, payload_ct } => {
                w.bytes(header_ct).u64(epoch.0).bytes(payload_ct);
            }
            Message::PublishBatch { items } => {
                // The payload *is* the net-layer batch frame: member i is
                // one encoded publish triple.
                let packed = batch::pack(items.iter().map(PublishItem::encode))
                    .expect("publish batch within frame limits");
                return Envelope::new(self.kind(), packed);
            }
            Message::Deliver { epoch, payload_ct } => {
                w.u64(epoch.0).bytes(payload_ct);
            }
            Message::KeyUpdate { wrapped } => {
                w.bytes(wrapped);
            }
            Message::Hello { client } => {
                w.u64(client.0);
            }
            Message::LinkHello { payload }
            | Message::LinkAccept { payload }
            | Message::LinkFinish { payload } => {
                w.bytes(payload);
            }
            Message::SubForward { envelope } | Message::SubRemove { envelope } => {
                w.bytes(envelope);
            }
            Message::ReplayRequest => {}
            Message::ReplayDone { count } => {
                w.u32(*count);
            }
            Message::SubDrop { id } => {
                w.u64(id.0);
            }
            Message::Heartbeat => {}
            Message::Error { message } => {
                w.str(message);
            }
            Message::Shutdown => {}
        }
        Envelope::new(self.kind(), w.into_bytes())
    }

    /// Parses from an envelope.
    ///
    /// # Errors
    ///
    /// [`ScbrError::Codec`] for unknown kinds or malformed bodies.
    pub fn from_envelope(env: &Envelope) -> Result<Self, ScbrError> {
        let mut r = Reader::new(&env.payload);
        let msg = match env.kind.as_str() {
            "submit" => Message::SubmitSubscription {
                client: ClientId(r.u64()?),
                encrypted_subscription: r.bytes()?,
            },
            "accepted" => Message::SubscriptionAccepted { id: SubscriptionId(r.u64()?) },
            "rejected" => Message::SubscriptionRejected { reason: r.str()? },
            "register" => Message::Register { envelope: r.bytes()? },
            "register-ack" => Message::RegisterAck { id: SubscriptionId(r.u64()?) },
            "unsubscribe" => Message::Unsubscribe {
                client: ClientId(r.u64()?),
                id: SubscriptionId(r.u64()?),
                signature: r.bytes()?,
            },
            "unsubscribed" => Message::Unsubscribed { id: SubscriptionId(r.u64()?) },
            "unregister" => Message::Unregister { envelope: r.bytes()? },
            "unregister-ack" => Message::UnregisterAck { id: SubscriptionId(r.u64()?) },
            "publish" => Message::Publish {
                header_ct: r.bytes()?,
                epoch: KeyEpoch(r.u64()?),
                payload_ct: r.bytes()?,
            },
            "publish-batch" => {
                let packed = batch::unpack(&env.payload)
                    .map_err(|_| ScbrError::Codec { context: "publish batch framing" })?;
                let items = packed
                    .iter()
                    .map(|bytes| PublishItem::decode(bytes))
                    .collect::<Result<Vec<_>, _>>()?;
                return Ok(Message::PublishBatch { items });
            }
            "deliver" => Message::Deliver { epoch: KeyEpoch(r.u64()?), payload_ct: r.bytes()? },
            "key-update" => Message::KeyUpdate { wrapped: r.bytes()? },
            "hello" => Message::Hello { client: ClientId(r.u64()?) },
            "link-hello" => Message::LinkHello { payload: r.bytes()? },
            "link-accept" => Message::LinkAccept { payload: r.bytes()? },
            "link-finish" => Message::LinkFinish { payload: r.bytes()? },
            "sub-forward" => Message::SubForward { envelope: r.bytes()? },
            "sub-remove" => Message::SubRemove { envelope: r.bytes()? },
            "replay-request" => Message::ReplayRequest,
            "replay-done" => Message::ReplayDone { count: r.u32()? },
            "sub-drop" => Message::SubDrop { id: SubscriptionId(r.u64()?) },
            "heartbeat" => Message::Heartbeat,
            "error" => Message::Error { message: r.str()? },
            "shutdown" => Message::Shutdown,
            _ => return Err(ScbrError::Codec { context: "message kind" }),
        };
        if !r.is_exhausted() {
            return Err(ScbrError::Codec { context: "message trailing bytes" });
        }
        Ok(msg)
    }

    /// Serialises straight to wire bytes (envelope text form).
    pub fn to_wire(&self) -> Vec<u8> {
        self.to_envelope().encode_bytes()
    }

    /// Parses from wire bytes.
    ///
    /// # Errors
    ///
    /// [`ScbrError::Codec`] (wrapping envelope errors) on malformed input.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, ScbrError> {
        let env = Envelope::decode_bytes(bytes)
            .map_err(|_| ScbrError::Codec { context: "message envelope" })?;
        Self::from_envelope(&env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let wire = msg.to_wire();
        assert_eq!(Message::from_wire(&wire).unwrap(), msg);
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(Message::SubmitSubscription {
            client: ClientId(7),
            encrypted_subscription: vec![1, 2, 3],
        });
        round_trip(Message::SubscriptionAccepted { id: SubscriptionId(9) });
        round_trip(Message::SubscriptionRejected { reason: "suspended".into() });
        round_trip(Message::Register { envelope: vec![4, 5] });
        round_trip(Message::RegisterAck { id: SubscriptionId(1) });
        round_trip(Message::Unsubscribe {
            client: ClientId(3),
            id: SubscriptionId(8),
            signature: vec![7; 64],
        });
        round_trip(Message::Unsubscribed { id: SubscriptionId(8) });
        round_trip(Message::Unregister { envelope: vec![6; 24] });
        round_trip(Message::UnregisterAck { id: SubscriptionId(8) });
        round_trip(Message::Publish {
            header_ct: vec![1],
            epoch: KeyEpoch(2),
            payload_ct: vec![3],
        });
        round_trip(Message::PublishBatch { items: vec![] });
        round_trip(Message::PublishBatch {
            items: vec![
                PublishItem { header_ct: vec![1, 2], epoch: KeyEpoch(3), payload_ct: vec![4] },
                PublishItem { header_ct: vec![], epoch: KeyEpoch(0), payload_ct: vec![5; 100] },
            ],
        });
        round_trip(Message::Deliver { epoch: KeyEpoch(0), payload_ct: vec![] });
        round_trip(Message::KeyUpdate { wrapped: vec![9; 40] });
        round_trip(Message::Hello { client: ClientId(1) });
        round_trip(Message::LinkHello { payload: vec![1, 2, 3] });
        round_trip(Message::LinkAccept { payload: vec![] });
        round_trip(Message::LinkFinish { payload: vec![9; 80] });
        round_trip(Message::SubForward { envelope: vec![4; 32] });
        round_trip(Message::SubRemove { envelope: vec![5; 32] });
        round_trip(Message::ReplayRequest);
        round_trip(Message::ReplayDone { count: 17 });
        round_trip(Message::SubDrop { id: SubscriptionId(42) });
        round_trip(Message::Heartbeat);
        round_trip(Message::Error { message: "boom".into() });
        round_trip(Message::Shutdown);
    }

    #[test]
    fn unknown_kind_rejected() {
        let env = Envelope::new("bogus", vec![]);
        assert!(Message::from_envelope(&env).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut env = Message::Shutdown.to_envelope();
        env.payload.push(0);
        assert!(Message::from_envelope(&env).is_err());
    }

    #[test]
    fn malformed_wire_rejected() {
        assert!(Message::from_wire(b"not an envelope").is_err());
    }

    #[test]
    fn corrupt_publish_batch_rejected() {
        let msg = Message::PublishBatch {
            items: vec![PublishItem {
                header_ct: vec![1],
                epoch: KeyEpoch(2),
                payload_ct: vec![3],
            }],
        };
        let mut env = msg.to_envelope();
        env.payload.truncate(env.payload.len() - 1);
        assert!(Message::from_envelope(&env).is_err());
        let mut env2 = msg.to_envelope();
        env2.payload.push(9);
        assert!(Message::from_envelope(&env2).is_err());
    }
}
