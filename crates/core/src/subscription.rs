//! Subscriptions: the wire-level specification and the compiled form the
//! matching engine stores.
//!
//! A [`SubscriptionSpec`] is what clients author and what travels (encrypted)
//! through the SCBR protocol: a list of named predicates such as
//! `symbol = "HAL" ∧ price < 50`. Inside the engine it is *compiled*
//! against the engine's [`crate::attr::AttrSchema`] into a
//! [`CompiledSubscription`]: per-attribute canonical constraints, sorted by
//! attribute id, with a bounded constraint count so index nodes have a
//! fixed footprint.

use crate::attr::{AttrId, AttrSchema};
use crate::error::ScbrError;
use crate::predicate::{Bound, ConstraintSet, Op};
use crate::value::{Value, ValueKind};
use std::fmt;

/// Maximum number of constrained attributes per subscription. Together with
/// the per-constraint layout this pins the index node footprint at the
/// ~432 bytes/subscription the paper's datasets exhibit (10 k subs ≈
/// 4.37 MB).
pub const MAX_CONSTRAINTS: usize = 16;

/// One named predicate as authored by a client.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateSpec {
    /// Attribute name.
    pub attr: String,
    /// Comparison operator.
    pub op: Op,
    /// Operand value.
    pub value: Value,
}

/// A wire-level subscription: a conjunction of named predicates.
///
/// ```
/// use scbr::subscription::SubscriptionSpec;
///
/// let spec = SubscriptionSpec::new()
///     .eq("symbol", "HAL")
///     .lt("price", 50.0);
/// assert_eq!(spec.predicates().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SubscriptionSpec {
    predicates: Vec<PredicateSpec>,
}

impl SubscriptionSpec {
    /// An empty conjunction (matches every publication).
    pub fn new() -> Self {
        SubscriptionSpec::default()
    }

    /// Adds an arbitrary predicate.
    #[must_use]
    pub fn with(mut self, attr: &str, op: Op, value: impl Into<Value>) -> Self {
        self.predicates.push(PredicateSpec { attr: attr.to_owned(), op, value: value.into() });
        self
    }

    /// Adds `attr = value`.
    #[must_use]
    pub fn eq(self, attr: &str, value: impl Into<Value>) -> Self {
        self.with(attr, Op::Eq, value)
    }

    /// Adds `attr < value`.
    #[must_use]
    pub fn lt(self, attr: &str, value: impl Into<Value>) -> Self {
        self.with(attr, Op::Lt, value)
    }

    /// Adds `attr <= value`.
    #[must_use]
    pub fn le(self, attr: &str, value: impl Into<Value>) -> Self {
        self.with(attr, Op::Le, value)
    }

    /// Adds `attr > value`.
    #[must_use]
    pub fn gt(self, attr: &str, value: impl Into<Value>) -> Self {
        self.with(attr, Op::Gt, value)
    }

    /// Adds `attr >= value`.
    #[must_use]
    pub fn ge(self, attr: &str, value: impl Into<Value>) -> Self {
        self.with(attr, Op::Ge, value)
    }

    /// Adds `lo <= attr <= hi`.
    #[must_use]
    pub fn between(self, attr: &str, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        self.ge(attr, lo).le(attr, hi)
    }

    /// The raw predicates.
    pub fn predicates(&self) -> &[PredicateSpec] {
        &self.predicates
    }

    /// Compiles against `schema`, canonicalising per-attribute constraints.
    ///
    /// # Errors
    ///
    /// * [`ScbrError::InvalidSubscription`] for NaN operands, ordered
    ///   comparisons on strings, contradictory conjunctions (e.g.
    ///   `price < 1 ∧ price > 2`), or too many distinct attributes.
    pub fn compile(&self, schema: &AttrSchema) -> Result<CompiledSubscription, ScbrError> {
        let mut constraints: Vec<(AttrId, ConstraintSet)> = Vec::new();
        for pred in &self.predicates {
            if pred.value.is_nan() {
                return Err(ScbrError::InvalidSubscription { reason: "nan operand" });
            }
            let scalar = pred.value.to_scalar();
            let set = match (pred.op, pred.value.kind()) {
                (Op::Eq, ValueKind::Str) => {
                    let crate::value::Scalar::Str(h) = scalar else { unreachable!() };
                    ConstraintSet::StrEq(h)
                }
                (_, ValueKind::Str) => {
                    return Err(ScbrError::InvalidSubscription {
                        reason: "ordered comparison on string attribute",
                    })
                }
                (Op::Eq, _) => ConstraintSet::point(scalar),
                (Op::Lt, _) => {
                    ConstraintSet::Range { lo: Bound::Unbounded, hi: Bound::Exclusive(scalar) }
                }
                (Op::Le, _) => {
                    ConstraintSet::Range { lo: Bound::Unbounded, hi: Bound::Inclusive(scalar) }
                }
                (Op::Gt, _) => {
                    ConstraintSet::Range { lo: Bound::Exclusive(scalar), hi: Bound::Unbounded }
                }
                (Op::Ge, _) => {
                    ConstraintSet::Range { lo: Bound::Inclusive(scalar), hi: Bound::Unbounded }
                }
            };
            let attr = schema.intern(&pred.attr);
            match constraints.iter_mut().find(|(a, _)| *a == attr) {
                Some((_, existing)) => {
                    *existing = existing.intersect(&set).ok_or(ScbrError::InvalidSubscription {
                        reason: "contradictory predicates",
                    })?;
                }
                None => constraints.push((attr, set)),
            }
        }
        if constraints.len() > MAX_CONSTRAINTS {
            return Err(ScbrError::InvalidSubscription { reason: "too many attributes" });
        }
        constraints.sort_by_key(|(a, _)| *a);
        Ok(CompiledSubscription { constraints })
    }
}

/// A compiled subscription: canonical constraints sorted by attribute id.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledSubscription {
    constraints: Vec<(AttrId, ConstraintSet)>,
}

impl CompiledSubscription {
    /// The canonical constraints, sorted by attribute id.
    pub fn constraints(&self) -> &[(AttrId, ConstraintSet)] {
        &self.constraints
    }

    /// Number of constrained attributes.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True when the subscription matches everything.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Does `header` satisfy every constraint?
    ///
    /// `header` must be sorted by attribute id (guaranteed by
    /// [`crate::publication::CompiledHeader`]).
    pub fn matches(&self, header: &crate::publication::CompiledHeader) -> bool {
        // Merge-join over the two sorted lists.
        let attrs = header.entries();
        let mut h = 0usize;
        for (attr, set) in &self.constraints {
            // Advance the header cursor to this attribute.
            while h < attrs.len() && attrs[h].0 < *attr {
                h += 1;
            }
            match attrs.get(h) {
                Some((a, scalar)) if a == attr => {
                    if !set.matches(scalar) {
                        return false;
                    }
                }
                _ => return false, // attribute absent: conjunction fails
            }
        }
        true
    }

    /// A stable 64-bit fingerprint of the canonical constraints (FNV-1a
    /// over attribute ids, kinds and bound bit patterns). Equal
    /// subscriptions have equal fingerprints; used by the index to
    /// diversify sibling sampling.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for (attr, set) in &self.constraints {
            mix(&attr.0.to_be_bytes());
            match set {
                crate::predicate::ConstraintSet::StrEq(v) => {
                    mix(&[1]);
                    mix(&v.to_be_bytes());
                }
                crate::predicate::ConstraintSet::Range { lo, hi } => {
                    mix(&[2]);
                    for bound in [lo, hi] {
                        match bound {
                            crate::predicate::Bound::Unbounded => mix(&[0]),
                            crate::predicate::Bound::Inclusive(s) => {
                                mix(&[1]);
                                mix(&scalar_bits(s).to_be_bytes());
                            }
                            crate::predicate::Bound::Exclusive(s) => {
                                mix(&[2]);
                                mix(&scalar_bits(s).to_be_bytes());
                            }
                        }
                    }
                }
            }
        }
        h
    }

    /// Containment: does `self` cover `other` (every event matching `other`
    /// also matches `self`)?
    ///
    /// Holds iff every constraint of `self` is implied by a tighter or equal
    /// constraint of `other` on the same attribute.
    pub fn covers(&self, other: &CompiledSubscription) -> bool {
        let theirs = &other.constraints;
        let mut t = 0usize;
        for (attr, mine) in &self.constraints {
            while t < theirs.len() && theirs[t].0 < *attr {
                t += 1;
            }
            match theirs.get(t) {
                Some((a, their_set)) if a == attr => {
                    if !mine.covers(their_set) {
                        return false;
                    }
                }
                _ => return false, // other leaves the attribute free
            }
        }
        true
    }
}

/// Bit pattern of a scalar for fingerprinting.
fn scalar_bits(s: &crate::value::Scalar) -> u64 {
    match s {
        crate::value::Scalar::Int(i) => *i as u64,
        crate::value::Scalar::Float(f) => f.to_bits(),
        crate::value::Scalar::Str(h) => *h,
    }
}

impl fmt::Display for SubscriptionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.predicates.is_empty() {
            return write!(f, "⊤");
        }
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{} {} {}", p.attr, p.op, p.value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publication::PublicationSpec;

    fn schema() -> AttrSchema {
        AttrSchema::new()
    }

    fn header(schema: &AttrSchema, attrs: &[(&str, Value)]) -> crate::publication::CompiledHeader {
        let mut spec = PublicationSpec::new();
        for (name, v) in attrs {
            spec = spec.attr(name, v.clone());
        }
        spec.compile_header(schema).unwrap()
    }

    #[test]
    fn paper_example_matches() {
        // The paper's running example: symbol = "HAL" ∧ price < 50.
        let s = schema();
        let sub = SubscriptionSpec::new().eq("symbol", "HAL").lt("price", 50.0);
        let compiled = sub.compile(&s).unwrap();
        let hit = header(&s, &[("symbol", "HAL".into()), ("price", 49.5.into())]);
        let miss_price = header(&s, &[("symbol", "HAL".into()), ("price", 50.0.into())]);
        let miss_symbol = header(&s, &[("symbol", "IBM".into()), ("price", 10.0.into())]);
        assert!(compiled.matches(&hit));
        assert!(!compiled.matches(&miss_price));
        assert!(!compiled.matches(&miss_symbol));
    }

    #[test]
    fn missing_attribute_fails_conjunction() {
        let s = schema();
        let sub = SubscriptionSpec::new().gt("volume", 100i64).compile(&s).unwrap();
        let no_volume = header(&s, &[("price", 10.0.into())]);
        assert!(!sub.matches(&no_volume));
    }

    #[test]
    fn empty_subscription_matches_everything() {
        let s = schema();
        let sub = SubscriptionSpec::new().compile(&s).unwrap();
        assert!(sub.is_empty());
        assert!(sub.matches(&header(&s, &[("x", 1i64.into())])));
        assert!(sub.matches(&header(&s, &[])));
    }

    #[test]
    fn repeated_attribute_intersects() {
        let s = schema();
        let sub = SubscriptionSpec::new().ge("price", 10.0).le("price", 20.0).compile(&s).unwrap();
        assert_eq!(sub.len(), 1, "two predicates fold into one constraint");
        assert!(sub.matches(&header(&s, &[("price", 15.0.into())])));
        assert!(!sub.matches(&header(&s, &[("price", 25.0.into())])));
        assert!(!sub.matches(&header(&s, &[("price", 5.0.into())])));
    }

    #[test]
    fn between_helper() {
        let s = schema();
        let sub = SubscriptionSpec::new().between("price", 1.0, 2.0).compile(&s).unwrap();
        assert!(sub.matches(&header(&s, &[("price", 1.0.into())])));
        assert!(sub.matches(&header(&s, &[("price", 2.0.into())])));
        assert!(!sub.matches(&header(&s, &[("price", 2.5.into())])));
    }

    #[test]
    fn contradiction_rejected() {
        let s = schema();
        let err = SubscriptionSpec::new().lt("price", 1.0).gt("price", 2.0).compile(&s);
        assert!(matches!(err, Err(ScbrError::InvalidSubscription { .. })));
        // Mixing kinds on one attribute is also contradictory.
        let err2 = SubscriptionSpec::new().eq("price", 5i64).lt("price", 10.0).compile(&s);
        assert!(err2.is_err());
    }

    #[test]
    fn string_ordering_rejected() {
        let s = schema();
        let err = SubscriptionSpec::new().lt("symbol", "HAL").compile(&s);
        assert!(matches!(err, Err(ScbrError::InvalidSubscription { .. })));
    }

    #[test]
    fn nan_rejected() {
        let s = schema();
        assert!(SubscriptionSpec::new().lt("p", f64::NAN).compile(&s).is_err());
    }

    #[test]
    fn too_many_attributes_rejected() {
        let s = schema();
        let mut spec = SubscriptionSpec::new();
        for i in 0..=MAX_CONSTRAINTS {
            spec = spec.eq(&format!("a{i}"), i as i64);
        }
        assert!(spec.compile(&s).is_err());
    }

    #[test]
    fn covers_general_vs_specific() {
        let s = schema();
        // "x > 0" covers "x = 1" and covers "x > 0 ∧ y = 1" (paper §3.2).
        let general = SubscriptionSpec::new().gt("x", 0.0).compile(&s).unwrap();
        let point = SubscriptionSpec::new().eq("x", 1.0).compile(&s).unwrap();
        let extra = SubscriptionSpec::new().gt("x", 0.0).eq("y", 1.0).compile(&s).unwrap();
        assert!(general.covers(&point));
        assert!(general.covers(&extra));
        assert!(!point.covers(&general));
        assert!(!extra.covers(&general));
    }

    #[test]
    fn covers_is_reflexive_and_antisymmetric_on_distinct() {
        let s = schema();
        let a = SubscriptionSpec::new().eq("sym", "A").lt("p", 5.0).compile(&s).unwrap();
        let b = SubscriptionSpec::new().eq("sym", "A").lt("p", 4.0).compile(&s).unwrap();
        assert!(a.covers(&a));
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
    }

    #[test]
    fn covers_unconstrained_attribute() {
        let s = schema();
        let loose = SubscriptionSpec::new().eq("sym", "A").compile(&s).unwrap();
        let tight = SubscriptionSpec::new().eq("sym", "A").eq("p", 1.0).compile(&s).unwrap();
        assert!(loose.covers(&tight), "fewer constraints is more general");
        assert!(!tight.covers(&loose));
    }

    #[test]
    fn display_spec() {
        let spec = SubscriptionSpec::new().eq("symbol", "HAL").lt("price", 50.0);
        assert_eq!(spec.to_string(), "symbol = \"HAL\" ∧ price < 50");
        assert_eq!(SubscriptionSpec::new().to_string(), "⊤");
    }
}
