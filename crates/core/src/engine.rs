//! The SCBR matching engine and its enclave placement.
//!
//! [`MatchingEngine`] is the trusted core: it holds the symmetric key `SK`,
//! decrypts registrations and publication headers, and matches them against
//! a [`SubscriptionIndex`]. [`RouterEngine`] wraps it in a *placement*:
//! inside a simulated SGX enclave (every operation crosses the call gate
//! and the index lives in EPC-backed memory) or outside (native memory) —
//! the two configurations the paper's Figures 5 and 7 compare, optionally
//! with encryption disabled for the plaintext baselines.

use crate::attr::AttrSchema;
use crate::codec;
use crate::error::ScbrError;
use crate::ids::{ClientId, SubscriptionId};
use crate::index::{new_index, IndexKind, MatchScratch, SubscriptionIndex};
use crate::publication::{CompiledHeader, PublicationSpec};
use crate::subscription::SubscriptionSpec;
use parking_lot::Mutex;
use scbr_crypto::ctr::{AesCtr, SymmetricKey};
use scbr_crypto::rsa::RsaPublicKey;
use scbr_telemetry::{Stage, StageHistograms, StageSummary};
use sgx_sim::enclave::EnclaveBuilder;
use sgx_sim::{Enclave, MemStats, MemorySim, SgxPlatform};
use std::collections::HashMap;

/// Per-engine reusable buffers for the hot matching path. All match entry
/// points are `&self`, so the scratch sits behind a mutex; matching is
/// serialised per engine anyway (the enclave model admits one ecall at a
/// time) and an uncontended `parking_lot` lock never allocates.
#[derive(Debug, Default)]
struct EngineScratch {
    /// Index traversal state (DFS stack, counting epochs).
    index: MatchScratch,
    /// Decrypted header plaintext, reused across publications.
    plain: Vec<u8>,
    /// Compiled header, decoded in place without `String`/`Value` churn.
    header: CompiledHeader,
    /// CTR cipher with the session key's schedule already expanded, keyed
    /// by the `SymmetricKey` it was built from so re-provisioning cannot
    /// serve a stale schedule. `AesCtr::new` allocates per call; at one
    /// key for millions of headers that is pure hot-path churn.
    cipher: Option<(SymmetricKey, AesCtr)>,
    /// Per-stage latency histograms (decrypt, index match) — fixed-size
    /// arrays with epoch-stamped clears, so recording a sample in the hot
    /// path never allocates. Populated only when telemetry is enabled.
    stages: StageHistograms,
}

/// Flat result of a batch match: one shared client buffer plus per-header
/// spans, so a steady-state batch produces **zero** per-publication heap
/// allocation (no `Vec<Vec<ClientId>>` churn). Reuse one instance across
/// batches via [`MatchingEngine::match_encrypted_batch_into`].
#[derive(Debug, Default)]
pub struct BatchMatches {
    clients: Vec<ClientId>,
    spans: Vec<Result<(u32, u32), ScbrError>>,
}

impl BatchMatches {
    /// An empty result buffer; capacity grows on first use and is reused.
    pub fn new() -> Self {
        BatchMatches::default()
    }

    /// Drops all results, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.clients.clear();
        self.spans.clear();
    }

    /// Number of headers in the last batch.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no batch has been recorded (or the batch was empty).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The outcome for header `i`: its sorted, deduplicated client span,
    /// or the error that sank it.
    pub fn get(&self, i: usize) -> Result<&[ClientId], &ScbrError> {
        match &self.spans[i] {
            Ok((start, end)) => Ok(&self.clients[*start as usize..*end as usize]),
            Err(e) => Err(e),
        }
    }

    /// Iterates the per-header outcomes in batch order.
    pub fn iter(&self) -> impl Iterator<Item = Result<&[ClientId], &ScbrError>> {
        (0..self.spans.len()).map(|i| self.get(i))
    }

    /// Total clients matched across the batch (duplicates across headers
    /// counted separately).
    pub fn total_clients(&self) -> usize {
        self.clients.len()
    }

    /// Commits one header's merged client span: `clients` is sorted and
    /// deduplicated in place, appended to the shared buffer, and recorded
    /// as the next header's outcome. This is how a partitioned matcher
    /// folds several slices' results for one header into the same flat
    /// shape a single engine produces.
    pub fn push_span(&mut self, clients: &mut Vec<ClientId>) {
        clients.sort_unstable_by_key(|c| c.0);
        clients.dedup();
        let start = self.clients.len() as u32;
        self.clients.extend_from_slice(clients);
        self.spans.push(Ok((start, self.clients.len() as u32)));
    }

    /// Records the next header's outcome as a failure (no clients).
    pub fn push_error(&mut self, error: ScbrError) {
        self.spans.push(Err(error));
    }
}

/// The trusted matching core (runs inside the enclave when placed there).
pub struct MatchingEngine {
    schema: AttrSchema,
    index: Box<dyn SubscriptionIndex>,
    mem: MemorySim,
    sk: Option<SymmetricKey>,
    producer_key: Option<RsaPublicKey>,
    /// Raw registration bodies keyed by subscription id, retained for
    /// sealing snapshots alongside their *delivery identity* override
    /// (`None` = the envelope's embedded edge client; `Some` = a link
    /// interface assigned by the overlay). Unregistration purges the
    /// matching body so a restore never resurrects removed interest.
    registered: Vec<(SubscriptionId, Option<ClientId>, Vec<u8>)>,
    /// Position of each live id in `registered` — keeps registration
    /// churn O(1) instead of a linear scan per (un)register at 1M subs.
    registered_pos: HashMap<SubscriptionId, usize>,
    /// Reusable hot-path buffers (see [`EngineScratch`]).
    scratch: Mutex<EngineScratch>,
    /// When true, the hot path records per-stage latencies into the
    /// scratch-resident histograms. Timing reads the virtual clock
    /// (which charges nothing), so enabling telemetry cannot change
    /// matching results, costs, or allocation behaviour.
    telemetry: bool,
}

impl std::fmt::Debug for MatchingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatchingEngine")
            .field("index_kind", &self.index.kind())
            .field("subscriptions", &self.index.len())
            .field("provisioned", &self.is_provisioned())
            .finish()
    }
}

impl MatchingEngine {
    /// Creates an engine whose index lives in `mem`.
    pub fn new(mem: &MemorySim, kind: IndexKind) -> Self {
        MatchingEngine {
            schema: AttrSchema::new(),
            index: new_index(kind, mem),
            mem: mem.clone(),
            sk: None,
            producer_key: None,
            registered: Vec::new(),
            registered_pos: HashMap::new(),
            scratch: Mutex::new(EngineScratch::default()),
            telemetry: false,
        }
    }

    /// Enables or disables per-stage latency instrumentation. Off by
    /// default; switching it on must never change matching behaviour
    /// (the `instrumented ≡ uninstrumented` proptest holds it to that).
    pub fn set_telemetry(&mut self, on: bool) {
        self.telemetry = on;
    }

    /// True when per-stage latency instrumentation is recording.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry
    }

    /// Copies out the per-stage latency histograms (decrypt, index
    /// match). All-inline arrays: cheap, lock-held only for the memcpy.
    pub fn stage_histograms(&self) -> StageHistograms {
        self.scratch.lock().stages.clone()
    }

    /// Summaries of every stage that recorded at least one sample.
    pub fn stage_summaries(&self) -> Vec<StageSummary> {
        self.scratch.lock().stages.summaries()
    }

    /// Forgets all recorded stage latencies in O(stages), without
    /// touching buffer capacity (between measurement phases).
    pub fn clear_stage_histograms(&self) {
        self.scratch.lock().stages.clear();
    }

    /// Installs the symmetric key `SK` and the producer's signature key
    /// (normally delivered via remote attestation; see
    /// [`crate::protocol::keys`]).
    pub fn provision_keys(&mut self, sk: SymmetricKey, producer_key: RsaPublicKey) {
        self.sk = Some(sk);
        self.producer_key = Some(producer_key);
    }

    /// True once keys have been provisioned.
    pub fn is_provisioned(&self) -> bool {
        self.sk.is_some()
    }

    /// Registers a plaintext subscription (baseline path and tests).
    ///
    /// # Errors
    ///
    /// Propagates compilation failures.
    pub fn register_plain(
        &mut self,
        id: SubscriptionId,
        client: ClientId,
        spec: &SubscriptionSpec,
    ) -> Result<(), ScbrError> {
        self.mem.charge_message_parse();
        let compiled = spec.compile(&self.schema)?;
        self.retain_body(id, None, codec::encode_registration(spec, id, client));
        self.index.insert(id, client, compiled);
        Ok(())
    }

    /// Retains a registration body (and its delivery-identity override)
    /// for snapshots, displacing any previous registration under the same
    /// id (re-registration replaces, so the index never accumulates
    /// duplicate rows for one id).
    fn retain_body(&mut self, id: SubscriptionId, deliver_to: Option<ClientId>, body: Vec<u8>) {
        if let Some(&pos) = self.registered_pos.get(&id) {
            // Re-registration: displace the old index row and overwrite the
            // retained body in place.
            self.index.remove(id);
            self.registered[pos] = (id, deliver_to, body);
        } else {
            self.registered_pos.insert(id, self.registered.len());
            self.registered.push((id, deliver_to, body));
        }
    }

    /// Registers an encrypted, signed registration envelope
    /// (`{s}SK` + producer signature), the paper's step 3.
    ///
    /// # Errors
    ///
    /// Signature or decryption failures, malformed bodies, or missing keys.
    pub fn register_envelope(&mut self, envelope: &[u8]) -> Result<SubscriptionId, ScbrError> {
        self.register_envelope_as(envelope, None).map(|(id, _)| id)
    }

    /// Registers an envelope, optionally overriding the delivery identity
    /// recorded in the index — the overlay's re-registration path: a
    /// router that learnt a subscription from a neighbour link indexes it
    /// under the *link's* interface id rather than the edge client, so a
    /// matched publication is forwarded down that link instead of
    /// delivered locally. Returns the compiled form alongside the id so
    /// in-enclave callers can maintain covering-pruned forwarding tables
    /// without re-deriving it. The compiled subscription is plaintext:
    /// it must not leave the trust boundary.
    ///
    /// Snapshots record the override alongside the body, so a restored
    /// engine re-registers link interfaces as *interfaces*, not edge
    /// clients (the overlay's sealed-recovery path depends on this).
    ///
    /// # Errors
    ///
    /// Signature or decryption failures, malformed bodies, or missing keys.
    pub fn register_envelope_as(
        &mut self,
        envelope: &[u8],
        deliver_to: Option<ClientId>,
    ) -> Result<(SubscriptionId, crate::subscription::CompiledSubscription), ScbrError> {
        let body = self.open_envelope(envelope)?;
        let (spec, id, client) = codec::decode_registration(&body)?;
        let compiled = spec.compile(&self.schema)?;
        self.retain_body(id, deliver_to, body);
        self.index.insert(id, deliver_to.unwrap_or(client), compiled.clone());
        Ok((id, compiled))
    }

    /// Unregisters a subscription (and drops its retained snapshot body).
    pub fn unregister(&mut self, id: SubscriptionId) -> bool {
        if let Some(pos) = self.registered_pos.remove(&id) {
            self.registered.swap_remove(pos);
            if let Some((moved, _, _)) = self.registered.get(pos) {
                self.registered_pos.insert(*moved, pos);
            }
        }
        self.index.remove(id)
    }

    /// Processes a signed, encrypted unregistration envelope
    /// (`{id, client}SK` + producer signature, built by
    /// [`crate::protocol::keys::ProducerCrypto::seal_unregistration`]).
    /// Removal is **idempotent**: retiring an id that is not (or no
    /// longer) in the index authenticates and decrypts normally but
    /// reports `existed = false` — the caller decides whether that is an
    /// error.
    ///
    /// # Errors
    ///
    /// Signature or decryption failures, malformed bodies, or missing
    /// keys. An unknown id is *not* an error (see above).
    pub fn unregister_envelope(
        &mut self,
        envelope: &[u8],
    ) -> Result<(SubscriptionId, ClientId, bool), ScbrError> {
        let body = self.open_envelope(envelope)?;
        let (id, client) = codec::decode_unregistration(&body)?;
        let existed = self.unregister(id);
        Ok((id, client, existed))
    }

    /// Verifies, decrypts and decodes a registration envelope *without*
    /// registering anything, returning the subscription id and the edge
    /// client embedded in it. A partitioned matcher must learn the id
    /// before it can pick (or look up) the owning slice; the owning
    /// slice's engine then does the real registration.
    ///
    /// # Errors
    ///
    /// Signature or decryption failures, malformed bodies, or missing keys.
    pub fn peek_registration(
        &self,
        envelope: &[u8],
    ) -> Result<(SubscriptionId, ClientId), ScbrError> {
        let body = self.open_envelope(envelope)?;
        let (_, id, client) = codec::decode_registration(&body)?;
        Ok((id, client))
    }

    /// Verifies, decrypts and decodes an unregistration envelope without
    /// removing anything — the placement lookup of a partitioned matcher
    /// (see [`MatchingEngine::peek_registration`]).
    ///
    /// # Errors
    ///
    /// Signature or decryption failures, malformed bodies, or missing keys.
    pub fn peek_unregistration(
        &self,
        envelope: &[u8],
    ) -> Result<(SubscriptionId, ClientId), ScbrError> {
        let body = self.open_envelope(envelope)?;
        let (id, client) = codec::decode_unregistration(&body)?;
        Ok((id, client))
    }

    /// Shared envelope authentication: verify the producer signature,
    /// charge the parse/crypto work, and decrypt the body.
    fn open_envelope(&self, envelope: &[u8]) -> Result<Vec<u8>, ScbrError> {
        let sk = self.sk.as_ref().ok_or(ScbrError::MissingKeys { which: "SK" })?;
        let producer = self
            .producer_key
            .as_ref()
            .ok_or(ScbrError::MissingKeys { which: "producer signature key" })?;
        let mut r = codec::Reader::new(envelope);
        let body_ct = r.bytes()?;
        let signature = r.bytes()?;
        producer.verify(&body_ct, &signature)?;
        self.mem.charge_message_parse();
        self.mem.charge_crypto_op(body_ct.len() as u64);
        Ok(AesCtr::decrypt_with_nonce(sk, &body_ct)?)
    }

    /// Matches a batch of encrypted headers in one call — the paper's
    /// future-work optimisation ("message batching … to reduce the
    /// frequency of enclave enters/exits"): wrap this in a *single*
    /// [`RouterEngine::call`] (or use [`RouterEngine::match_batch`], which
    /// does exactly that) and the EENTER/EEXIT pair is amortised over the
    /// whole batch.
    ///
    /// # Errors
    ///
    /// Fails on the first undecryptable header. Use
    /// [`MatchingEngine::match_encrypted_batch_each`] when one poisoned
    /// header must not sink its batch-mates.
    pub fn match_encrypted_batch(
        &self,
        headers: &[Vec<u8>],
    ) -> Result<Vec<Vec<ClientId>>, ScbrError> {
        headers.iter().map(|ct| self.match_encrypted(ct)).collect()
    }

    /// Matches a batch of encrypted headers, reporting each outcome
    /// independently — the fault-isolating variant the router event loop
    /// uses, since a batch drained off the wire may mix traffic from
    /// several producers.
    pub fn match_encrypted_batch_each(
        &self,
        headers: &[Vec<u8>],
    ) -> Vec<Result<Vec<ClientId>, ScbrError>> {
        headers.iter().map(|ct| self.match_encrypted(ct)).collect()
    }

    /// Matches a batch of plaintext headers (baseline path for the
    /// batching ablation).
    ///
    /// # Errors
    ///
    /// Fails on the first header that does not compile.
    pub fn match_plain_batch(
        &self,
        publications: &[PublicationSpec],
    ) -> Result<Vec<Vec<ClientId>>, ScbrError> {
        publications.iter().map(|p| self.match_plain(p)).collect()
    }

    /// Serialises the registered subscriptions (raw registration bodies
    /// plus their delivery identities) for sealing: the enclave can
    /// persist this via [`sgx_sim::seal::VersionedSeal`] and re-register
    /// after a restart without a new remote attestation (the paper's §2
    /// restart flow). A subscription registered under a link-interface
    /// identity keeps that identity through the round trip — a restored
    /// broker must not collapse its neighbours' interest into edge
    /// clients.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = codec::Writer::new();
        w.u32(self.registered.len() as u32);
        for (_, deliver_to, body) in &self.registered {
            match deliver_to {
                Some(client) => w.u8(1).u64(client.0),
                None => w.u8(0),
            };
            w.bytes(body);
        }
        w.into_bytes()
    }

    /// Restores a snapshot produced by [`MatchingEngine::snapshot`],
    /// re-registering every subscription under its recorded delivery
    /// identity.
    ///
    /// # Errors
    ///
    /// Malformed snapshots or invalid subscriptions abort the restore.
    pub fn restore(&mut self, snapshot: &[u8]) -> Result<usize, ScbrError> {
        let mut r = codec::Reader::new(snapshot);
        let n = r.u32()? as usize;
        let mut restored = 0;
        for _ in 0..n {
            let deliver_to = match r.u8()? {
                0 => None,
                1 => Some(ClientId(r.u64()?)),
                _ => return Err(ScbrError::Codec { context: "snapshot delivery tag" }),
            };
            let body = r.bytes()?;
            let (spec, id, client) = codec::decode_registration(&body)?;
            let compiled = spec.compile(&self.schema)?;
            self.index.insert(id, deliver_to.unwrap_or(client), compiled);
            self.registered_pos.insert(id, self.registered.len());
            self.registered.push((id, deliver_to, body));
            restored += 1;
        }
        if !r.is_exhausted() {
            return Err(ScbrError::Codec { context: "snapshot trailing bytes" });
        }
        Ok(restored)
    }

    /// Recompiles the retained registration body of `id` (if live),
    /// returning the delivery identity it is indexed under and the
    /// compiled form. Used by the overlay's sealed-recovery path to
    /// rebuild in-enclave covering tables after [`MatchingEngine::restore`]
    /// without re-decrypting envelopes (the retained bodies are already
    /// plaintext inside the enclave).
    ///
    /// # Errors
    ///
    /// Malformed retained bodies (impossible for bodies that registered
    /// successfully) or compilation failures.
    pub fn compiled_of(
        &self,
        id: SubscriptionId,
    ) -> Result<Option<(ClientId, crate::subscription::CompiledSubscription)>, ScbrError> {
        let Some((_, deliver_to, body)) =
            self.registered_pos.get(&id).map(|&pos| &self.registered[pos])
        else {
            return Ok(None);
        };
        let (spec, _, client) = codec::decode_registration(body)?;
        let compiled = spec.compile(&self.schema)?;
        Ok(Some((deliver_to.unwrap_or(client), compiled)))
    }

    /// Matches a plaintext publication header (baseline path), returning
    /// the sorted, deduplicated client list.
    ///
    /// # Errors
    ///
    /// Propagates header-compilation failures.
    pub fn match_plain(&self, publication: &PublicationSpec) -> Result<Vec<ClientId>, ScbrError> {
        self.mem.charge_message_parse();
        let header = publication.compile_header(&self.schema)?;
        let mut out = Vec::new();
        let mut scratch = self.scratch.lock();
        self.index.match_into(&header, &mut scratch.index, &mut out);
        drop(scratch);
        out.sort_unstable_by_key(|c| c.0);
        out.dedup();
        Ok(out)
    }

    /// Decrypt-decode-match one header, appending its sorted, deduplicated
    /// clients to `out` — the shared allocation-free core of every
    /// encrypted match path. Errors occur strictly before anything is
    /// appended.
    fn match_decrypt_append(
        &self,
        header_ct: &[u8],
        scratch: &mut EngineScratch,
        out: &mut Vec<ClientId>,
    ) -> Result<(), ScbrError> {
        let sk = self.sk.as_ref().ok_or(ScbrError::MissingKeys { which: "SK" })?;
        // Stage timings read the virtual clock without charging it, so
        // the instrumented path is behaviourally identical to the
        // uninstrumented one (and recording into the fixed-array
        // histograms allocates nothing).
        let t_start = if self.telemetry { self.mem.elapsed_ns() } else { 0.0 };
        self.mem.charge_crypto_op(header_ct.len() as u64);
        let EngineScratch { plain, cipher, .. } = scratch;
        if !matches!(cipher, Some((key, _)) if key == sk) {
            *cipher = Some((sk.clone(), AesCtr::new(sk, [0u8; scbr_crypto::ctr::NONCE_LEN])));
        }
        let (_, ctr) = cipher.as_mut().expect("just populated");
        ctr.decrypt_into(header_ct, plain)?;
        let t_decrypted = if self.telemetry { self.mem.elapsed_ns() } else { 0.0 };
        self.mem.charge_message_parse();
        codec::decode_header_into(&scratch.plain, &self.schema, &mut scratch.header)?;
        let start = out.len();
        self.index.match_into(&scratch.header, &mut scratch.index, out);
        out[start..].sort_unstable_by_key(|c| c.0);
        // Dedup within the freshly appended span (Vec::dedup would also
        // touch earlier spans).
        let mut keep = start;
        for i in start..out.len() {
            if keep == start || out[keep - 1] != out[i] {
                out[keep] = out[i];
                keep += 1;
            }
        }
        out.truncate(keep);
        if self.telemetry {
            let t_matched = self.mem.elapsed_ns();
            scratch.stages.record(Stage::Decrypt, (t_decrypted - t_start).max(0.0) as u64);
            scratch.stages.record(Stage::IndexMatch, (t_matched - t_decrypted).max(0.0) as u64);
        }
        Ok(())
    }

    /// Decrypts `{header}SK` and matches it (the paper's step 5).
    ///
    /// # Errors
    ///
    /// Decryption or decoding failures, or missing keys.
    pub fn match_encrypted(&self, header_ct: &[u8]) -> Result<Vec<ClientId>, ScbrError> {
        let mut out = Vec::new();
        self.match_encrypted_into(header_ct, &mut out)?;
        Ok(out)
    }

    /// Like [`MatchingEngine::match_encrypted`], but clears and fills a
    /// caller-owned buffer: a warmed-up caller reusing one buffer sees no
    /// heap allocation per publication.
    ///
    /// # Errors
    ///
    /// Decryption or decoding failures, or missing keys; `out` is left
    /// empty on error.
    pub fn match_encrypted_into(
        &self,
        header_ct: &[u8],
        out: &mut Vec<ClientId>,
    ) -> Result<(), ScbrError> {
        out.clear();
        let mut scratch = self.scratch.lock();
        self.match_decrypt_append(header_ct, &mut scratch, out)
    }

    /// Like [`MatchingEngine::match_encrypted_into`], but *appends* the
    /// header's sorted, deduplicated clients without clearing `out` — the
    /// fan-out primitive of a partitioned matcher: every slice appends its
    /// matches for one header into a shared buffer and the caller merges
    /// the combined span. Nothing is appended on error.
    ///
    /// # Errors
    ///
    /// Decryption or decoding failures, or missing keys.
    pub fn match_encrypted_append(
        &self,
        header_ct: &[u8],
        out: &mut Vec<ClientId>,
    ) -> Result<(), ScbrError> {
        let mut scratch = self.scratch.lock();
        self.match_decrypt_append(header_ct, &mut scratch, out)
    }

    /// Matches a batch of encrypted headers into a reusable flat
    /// [`BatchMatches`] — the zero-allocation spine of
    /// [`RouterEngine::match_batch_into`]. Each header's outcome is
    /// independent (a poisoned header records its error and the batch
    /// continues), and in steady state — buffers at their high-water mark,
    /// schema warm — the call performs no heap allocation at all.
    pub fn match_encrypted_batch_into(&self, headers: &[Vec<u8>], out: &mut BatchMatches) {
        out.clear();
        let mut guard = self.scratch.lock();
        let scratch = &mut *guard;
        for ct in headers {
            let start = out.clients.len() as u32;
            let span = self
                .match_decrypt_append(ct, scratch, &mut out.clients)
                .map(|()| (start, out.clients.len() as u32));
            out.spans.push(span);
        }
    }

    /// Live subscriptions whose delivery identity is a real edge client —
    /// link-interface copies ([`ClientId::is_interface`]) excluded. This
    /// is the occupancy figure load balancing must read: interface copies
    /// are pinned to whichever broker owns the link, so counting them
    /// makes a high-degree broker look permanently skewed.
    pub fn edge_subscriptions(&self) -> usize {
        self.registered
            .iter()
            .filter(|(_, deliver_to, _)| deliver_to.is_none_or(|c| !c.is_interface()))
            .count()
    }

    /// The delivery identity subscription `id` is currently indexed
    /// under, if live (the envelope's embedded edge client unless an
    /// override was recorded at registration).
    pub fn delivery_identity(&self, id: SubscriptionId) -> Option<ClientId> {
        let &pos = self.registered_pos.get(&id)?;
        let (_, deliver_to, body) = &self.registered[pos];
        match deliver_to {
            Some(client) => Some(*client),
            None => codec::decode_registration(body).ok().map(|(_, _, client)| client),
        }
    }

    /// The engine's interning schema.
    pub fn schema(&self) -> &AttrSchema {
        &self.schema
    }

    /// The underlying index.
    pub fn index(&self) -> &dyn SubscriptionIndex {
        self.index.as_ref()
    }

    /// The memory simulator backing the index.
    pub fn memory(&self) -> &MemorySim {
        &self.mem
    }
}

/// Where the engine runs relative to the enclave boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Inside an SGX enclave: EPC-backed memory, MEE costs, call gates.
    InEnclave,
    /// Outside any enclave: native memory (the insecure baseline).
    Outside,
}

/// A matching engine bound to a placement — the unit the benchmarks drive.
#[derive(Debug)]
pub struct RouterEngine {
    placement: Placement,
    enclave: Option<Enclave>,
    engine: MatchingEngine,
}

impl RouterEngine {
    /// Builds an engine hosted inside a new enclave on `platform`.
    ///
    /// # Errors
    ///
    /// Propagates enclave-launch failures.
    pub fn in_enclave(platform: &SgxPlatform, kind: IndexKind) -> Result<Self, ScbrError> {
        let enclave = platform.launch(
            EnclaveBuilder::new("scbr-router").add_page(b"scbr matching engine v1").isv_prod_id(1),
        )?;
        let engine = MatchingEngine::new(enclave.memory(), kind);
        Ok(RouterEngine { placement: Placement::InEnclave, enclave: Some(enclave), engine })
    }

    /// Builds an engine in native memory shaped by `platform`'s cache and
    /// cost model (the outside-enclave baseline on the same machine).
    pub fn outside(platform: &SgxPlatform, kind: IndexKind) -> Self {
        let mem = MemorySim::native(*platform.cache_config(), platform.cost_model().clone());
        RouterEngine {
            placement: Placement::Outside,
            enclave: None,
            engine: MatchingEngine::new(&mem, kind),
        }
    }

    /// The placement.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// The enclave, when placed inside one.
    pub fn enclave(&self) -> Option<&Enclave> {
        self.enclave.as_ref()
    }

    /// Runs `f` on the engine, crossing the call gate when in an enclave.
    pub fn call<R>(&mut self, f: impl FnOnce(&mut MatchingEngine) -> R) -> R {
        let engine = &mut self.engine;
        match &self.enclave {
            Some(enclave) => enclave.ecall(|_ctx| f(engine)),
            None => f(engine),
        }
    }

    /// Matches a batch of encrypted headers in a **single enclave
    /// crossing**: the EENTER/EEXIT pair (and its [`MemStats::ecalls`]
    /// tick) is paid once for the whole slice of headers, so per-message
    /// transition cost scales as `1/batch_size`.
    ///
    /// # Errors
    ///
    /// Fails on the first undecryptable header (all-or-nothing; see
    /// [`RouterEngine::match_batch_each`] for per-item outcomes).
    pub fn match_batch(&mut self, headers: &[Vec<u8>]) -> Result<Vec<Vec<ClientId>>, ScbrError> {
        self.call(|e| e.match_encrypted_batch(headers))
    }

    /// Matches a batch of encrypted headers in a single enclave crossing,
    /// reporting each header's outcome independently (the router event
    /// loop's drain path: one corrupt publication must not void the rest
    /// of the batch).
    pub fn match_batch_each(
        &mut self,
        headers: &[Vec<u8>],
    ) -> Vec<Result<Vec<ClientId>, ScbrError>> {
        self.call(|e| e.match_encrypted_batch_each(headers))
    }

    /// Matches a batch in a single enclave crossing into a reusable flat
    /// result buffer: one ecall, per-header fault isolation, and zero
    /// steady-state heap allocation (see
    /// [`MatchingEngine::match_encrypted_batch_into`]).
    pub fn match_batch_into(&mut self, headers: &[Vec<u8>], out: &mut BatchMatches) {
        self.call(|e| e.match_encrypted_batch_into(headers, out))
    }

    /// Read-only access without crossing the gate (setup/inspection).
    pub fn engine(&self) -> &MatchingEngine {
        &self.engine
    }

    /// Virtual nanoseconds elapsed on the engine's memory.
    pub fn elapsed_ns(&self) -> f64 {
        self.engine.memory().elapsed_ns()
    }

    /// Memory counters of the engine's memory.
    pub fn stats(&self) -> MemStats {
        self.engine.memory().stats()
    }

    /// Resets time and counters (between measurement phases).
    pub fn reset_counters(&self) {
        self.engine.memory().reset_counters()
    }

    /// Enables or disables the inner engine's per-stage latency
    /// instrumentation (no enclave crossing: a configuration flip, not
    /// trusted work).
    pub fn set_telemetry(&mut self, on: bool) {
        self.engine.set_telemetry(on);
    }

    /// Per-stage latency summaries recorded by the inner engine.
    pub fn stage_summaries(&self) -> Vec<StageSummary> {
        self.engine.stage_summaries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::keys::ProducerCrypto;
    use scbr_crypto::CryptoRng;

    fn producer(rng: &mut CryptoRng) -> ProducerCrypto {
        ProducerCrypto::generate(512, rng).unwrap()
    }

    #[test]
    fn plain_register_and_match() {
        let mem = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
        engine
            .register_plain(
                SubscriptionId(1),
                ClientId(10),
                &SubscriptionSpec::new().eq("symbol", "HAL").lt("price", 50.0),
            )
            .unwrap();
        let matching = PublicationSpec::new().attr("symbol", "HAL").attr("price", 49.0);
        let not_matching = PublicationSpec::new().attr("symbol", "HAL").attr("price", 51.0);
        assert_eq!(engine.match_plain(&matching).unwrap(), vec![ClientId(10)]);
        assert!(engine.match_plain(&not_matching).unwrap().is_empty());
    }

    #[test]
    fn telemetry_records_stages_without_changing_results_or_cost() {
        let mut rng = CryptoRng::from_seed(77);
        let producer = producer(&mut rng);
        let spec = SubscriptionSpec::new().eq("symbol", "HAL");
        let envelope =
            producer.seal_registration(&spec, SubscriptionId(1), ClientId(2), &mut rng).unwrap();
        let publication = PublicationSpec::new().attr("symbol", "HAL").attr("price", 3.0);
        let header_ct = producer.encrypt_header(&publication, &mut rng);

        let run = |telemetry: bool| {
            // A real cost model so the virtual clock actually advances.
            let mem =
                MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::default());
            let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
            engine.provision_keys(producer.sk().clone(), producer.public_key().clone());
            engine.set_telemetry(telemetry);
            engine.register_envelope(&envelope).unwrap();
            let clients = engine.match_encrypted(&header_ct).unwrap();
            (clients, mem.elapsed_ns(), engine.stage_summaries())
        };

        let (plain_clients, plain_ns, plain_stages) = run(false);
        let (instr_clients, instr_ns, instr_stages) = run(true);
        assert_eq!(plain_clients, instr_clients, "telemetry must not change matches");
        assert_eq!(plain_ns, instr_ns, "reading the clock must not charge it");
        assert!(plain_stages.is_empty(), "disabled telemetry records nothing");
        let stages: Vec<_> = instr_stages.iter().map(|s| s.stage).collect();
        assert_eq!(stages, vec![Stage::Decrypt, Stage::IndexMatch]);
        assert!(instr_stages.iter().all(|s| s.count == 1 && s.p50_ns > 0));
    }

    #[test]
    fn encrypted_round_trip() {
        let mut rng = CryptoRng::from_seed(1);
        let producer = producer(&mut rng);
        let mem = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
        engine.provision_keys(producer.sk().clone(), producer.public_key().clone());

        let spec = SubscriptionSpec::new().eq("symbol", "INTC");
        let envelope =
            producer.seal_registration(&spec, SubscriptionId(7), ClientId(3), &mut rng).unwrap();
        assert_eq!(engine.register_envelope(&envelope).unwrap(), SubscriptionId(7));

        let publication = PublicationSpec::new().attr("symbol", "INTC").attr("price", 1.0);
        let header_ct = producer.encrypt_header(&publication, &mut rng);
        assert_eq!(engine.match_encrypted(&header_ct).unwrap(), vec![ClientId(3)]);
    }

    #[test]
    fn register_envelope_as_overrides_delivery_identity() {
        let mut rng = CryptoRng::from_seed(31);
        let producer = producer(&mut rng);
        let mem = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
        engine.provision_keys(producer.sk().clone(), producer.public_key().clone());
        let spec = SubscriptionSpec::new().eq("symbol", "HAL");
        let envelope =
            producer.seal_registration(&spec, SubscriptionId(4), ClientId(9), &mut rng).unwrap();
        // Registered under a link interface, not the edge client.
        let link = ClientId((1 << 63) | 2);
        let (id, compiled) = engine.register_envelope_as(&envelope, Some(link)).unwrap();
        assert_eq!(id, SubscriptionId(4));
        assert_eq!(compiled, spec.compile(engine.schema()).unwrap());
        let publication = PublicationSpec::new().attr("symbol", "HAL");
        assert_eq!(engine.match_plain(&publication).unwrap(), vec![link]);
    }

    #[test]
    fn unregister_envelope_removes_and_is_idempotent() {
        let mut rng = CryptoRng::from_seed(41);
        let producer = producer(&mut rng);
        let mem = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
        engine.provision_keys(producer.sk().clone(), producer.public_key().clone());
        let spec = SubscriptionSpec::new().eq("symbol", "HAL");
        let envelope =
            producer.seal_registration(&spec, SubscriptionId(3), ClientId(5), &mut rng).unwrap();
        engine.register_envelope(&envelope).unwrap();
        assert_eq!(engine.index().len(), 1);

        let unreg = producer.seal_unregistration(SubscriptionId(3), ClientId(5), &mut rng).unwrap();
        assert_eq!(
            engine.unregister_envelope(&unreg).unwrap(),
            (SubscriptionId(3), ClientId(5), true)
        );
        assert_eq!(engine.index().len(), 0);
        let publication = PublicationSpec::new().attr("symbol", "HAL");
        assert!(engine.match_plain(&publication).unwrap().is_empty());
        // Second removal authenticates but reports "did not exist".
        let unreg2 =
            producer.seal_unregistration(SubscriptionId(3), ClientId(5), &mut rng).unwrap();
        assert_eq!(
            engine.unregister_envelope(&unreg2).unwrap(),
            (SubscriptionId(3), ClientId(5), false)
        );
    }

    #[test]
    fn forged_unregistration_rejected_and_changes_nothing() {
        let mut rng = CryptoRng::from_seed(42);
        let producer = producer(&mut rng);
        let rogue = ProducerCrypto::generate(512, &mut rng).unwrap();
        let mem = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
        engine.provision_keys(producer.sk().clone(), producer.public_key().clone());
        let envelope = producer
            .seal_registration(
                &SubscriptionSpec::new().eq("s", 1i64),
                SubscriptionId(1),
                ClientId(1),
                &mut rng,
            )
            .unwrap();
        engine.register_envelope(&envelope).unwrap();
        // Signed by the wrong key: refused, index untouched.
        let forged = rogue.seal_unregistration(SubscriptionId(1), ClientId(1), &mut rng).unwrap();
        assert!(engine.unregister_envelope(&forged).is_err());
        // Tampered ciphertext: refused too.
        let mut bent =
            producer.seal_unregistration(SubscriptionId(1), ClientId(1), &mut rng).unwrap();
        bent[6] ^= 1;
        assert!(engine.unregister_envelope(&bent).is_err());
        // A registration envelope fed to the unregister path is a codec
        // error, not a removal.
        assert!(engine.unregister_envelope(&envelope).is_err());
        assert_eq!(engine.index().len(), 1, "nothing was removed");
    }

    #[test]
    fn unregistered_subscriptions_never_survive_a_snapshot() {
        let mut rng = CryptoRng::from_seed(43);
        let producer = producer(&mut rng);
        let mem = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
        engine.provision_keys(producer.sk().clone(), producer.public_key().clone());
        engine
            .register_plain(SubscriptionId(1), ClientId(1), &SubscriptionSpec::new().eq("s", "A"))
            .unwrap();
        engine
            .register_plain(SubscriptionId(2), ClientId(2), &SubscriptionSpec::new().eq("s", "B"))
            .unwrap();
        assert!(engine.unregister(SubscriptionId(1)));
        let snapshot = engine.snapshot();
        let mem2 = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut restored = MatchingEngine::new(&mem2, IndexKind::Poset);
        assert_eq!(restored.restore(&snapshot).unwrap(), 1, "only the live subscription");
        assert!(restored.match_plain(&PublicationSpec::new().attr("s", "A")).unwrap().is_empty());
        assert_eq!(
            restored.match_plain(&PublicationSpec::new().attr("s", "B")).unwrap(),
            vec![ClientId(2)]
        );
    }

    #[test]
    fn re_registration_replaces_instead_of_duplicating() {
        let mut rng = CryptoRng::from_seed(44);
        let producer = producer(&mut rng);
        let mem = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
        engine.provision_keys(producer.sk().clone(), producer.public_key().clone());
        let envelope = producer
            .seal_registration(
                &SubscriptionSpec::new().eq("s", "X"),
                SubscriptionId(7),
                ClientId(1),
                &mut rng,
            )
            .unwrap();
        engine.register_envelope(&envelope).unwrap();
        engine.register_envelope(&envelope).unwrap();
        assert_eq!(engine.index().len(), 1, "same id registered twice keeps one row");
        // One removal fully clears it.
        assert!(engine.unregister(SubscriptionId(7)));
        assert_eq!(engine.index().len(), 0);
        assert_eq!(engine.snapshot(), MatchingEngine::new(&mem, IndexKind::Poset).snapshot());
    }

    #[test]
    fn register_envelope_requires_keys() {
        let mem = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
        assert!(matches!(
            engine.register_envelope(b"whatever"),
            Err(ScbrError::MissingKeys { .. })
        ));
    }

    #[test]
    fn tampered_envelope_rejected() {
        let mut rng = CryptoRng::from_seed(2);
        let producer = producer(&mut rng);
        let mem = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
        engine.provision_keys(producer.sk().clone(), producer.public_key().clone());
        let mut envelope = producer
            .seal_registration(
                &SubscriptionSpec::new().eq("s", 1i64),
                SubscriptionId(1),
                ClientId(1),
                &mut rng,
            )
            .unwrap();
        envelope[6] ^= 1;
        assert!(engine.register_envelope(&envelope).is_err());
        assert_eq!(engine.index().len(), 0, "nothing was inserted");
    }

    #[test]
    fn unsigned_registration_rejected() {
        // A malicious infrastructure (or client bypassing the producer)
        // cannot register subscriptions: it lacks the signature key.
        let mut rng = CryptoRng::from_seed(3);
        let producer = producer(&mut rng);
        let rogue = ProducerCrypto::generate(512, &mut rng).unwrap();
        let mem = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
        engine.provision_keys(producer.sk().clone(), producer.public_key().clone());
        let envelope = rogue
            .seal_registration(
                &SubscriptionSpec::new().eq("s", 1i64),
                SubscriptionId(1),
                ClientId(1),
                &mut rng,
            )
            .unwrap();
        assert!(engine.register_envelope(&envelope).is_err());
    }

    #[test]
    fn match_encrypted_with_wrong_key_fails_or_mismatches() {
        let mut rng = CryptoRng::from_seed(4);
        let producer_a = producer(&mut rng);
        let producer_b = producer(&mut rng);
        let mem = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
        engine.provision_keys(producer_a.sk().clone(), producer_a.public_key().clone());
        engine
            .register_plain(SubscriptionId(1), ClientId(1), &SubscriptionSpec::new().eq("s", "X"))
            .unwrap();
        // Header encrypted under the wrong SK decrypts to garbage: the codec
        // rejects it (or it simply never matches).
        let publication = PublicationSpec::new().attr("s", "X");
        let ct = producer_b.encrypt_header(&publication, &mut rng);
        match engine.match_encrypted(&ct) {
            Err(_) => {}
            Ok(clients) => assert!(clients.is_empty()),
        }
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut rng = CryptoRng::from_seed(21);
        let producer = producer(&mut rng);
        let mem = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
        engine.provision_keys(producer.sk().clone(), producer.public_key().clone());
        // Mix of plaintext and envelope registrations.
        engine
            .register_plain(SubscriptionId(1), ClientId(1), &SubscriptionSpec::new().eq("s", "A"))
            .unwrap();
        let env = producer
            .seal_registration(
                &SubscriptionSpec::new().gt("p", 5.0),
                SubscriptionId(2),
                ClientId(2),
                &mut rng,
            )
            .unwrap();
        engine.register_envelope(&env).unwrap();

        let snapshot = engine.snapshot();
        // A fresh engine (fresh schema!) restores and matches identically.
        let mem2 = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut restored = MatchingEngine::new(&mem2, IndexKind::Poset);
        assert_eq!(restored.restore(&snapshot).unwrap(), 2);
        let publication = PublicationSpec::new().attr("s", "A").attr("p", 9.0);
        assert_eq!(
            restored.match_plain(&publication).unwrap(),
            engine.match_plain(&publication).unwrap()
        );
        assert_eq!(restored.index().len(), 2);
        // Corrupt snapshots are rejected.
        assert!(restored.restore(&snapshot[..snapshot.len() - 2]).is_err());
    }

    #[test]
    fn snapshot_survives_sealing_through_enclave_restart() {
        // The full §2 restart story: seal the snapshot with a monotonic
        // counter, restart the enclave, unseal and restore.
        use sgx_sim::seal::{SealPolicy, VersionedSeal};
        let platform = SgxPlatform::for_testing(22);
        let mut rng = CryptoRng::from_seed(23);
        let counter = platform.create_counter();

        let build = || {
            platform
                .launch(sgx_sim::enclave::EnclaveBuilder::new("scbr-router").add_page(b"engine v1"))
                .unwrap()
        };
        let enclave = build();
        let mut engine = MatchingEngine::new(enclave.memory(), IndexKind::Poset);
        engine
            .register_plain(SubscriptionId(1), ClientId(7), &SubscriptionSpec::new().eq("x", 1i64))
            .unwrap();
        let sealed = enclave
            .ecall(|ctx| {
                VersionedSeal::seal(
                    ctx,
                    SealPolicy::MrEnclave,
                    &platform,
                    counter,
                    &engine.snapshot(),
                    &mut rng,
                )
            })
            .unwrap();

        // "Reboot": a new enclave with the same measurement restores.
        let restarted = build();
        let mut engine2 = MatchingEngine::new(restarted.memory(), IndexKind::Poset);
        let snapshot = restarted
            .ecall(|ctx| {
                VersionedSeal::unseal(ctx, SealPolicy::MrEnclave, &platform, counter, &sealed)
            })
            .unwrap();
        assert_eq!(engine2.restore(&snapshot).unwrap(), 1);
        let publication = PublicationSpec::new().attr("x", 1i64);
        assert_eq!(engine2.match_plain(&publication).unwrap(), vec![ClientId(7)]);
    }

    #[test]
    fn snapshot_preserves_link_interface_semantics() {
        // Regression: snapshots used to keep only the envelope's embedded
        // client identity, so a restored broker re-registered everything
        // with *edge* semantics — a link interface silently became a
        // local client and multi-hop forwarding broke after recovery.
        let mut rng = CryptoRng::from_seed(45);
        let producer = producer(&mut rng);
        let mem = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
        engine.provision_keys(producer.sk().clone(), producer.public_key().clone());
        let edge = producer
            .seal_registration(
                &SubscriptionSpec::new().eq("s", "E"),
                SubscriptionId(1),
                ClientId(7),
                &mut rng,
            )
            .unwrap();
        let learnt = producer
            .seal_registration(
                &SubscriptionSpec::new().eq("s", "L"),
                SubscriptionId(2),
                ClientId(8),
                &mut rng,
            )
            .unwrap();
        let interface = ClientId((1 << 63) | 3);
        engine.register_envelope(&edge).unwrap();
        engine.register_envelope_as(&learnt, Some(interface)).unwrap();

        let mem2 = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut restored = MatchingEngine::new(&mem2, IndexKind::Poset);
        assert_eq!(restored.restore(&engine.snapshot()).unwrap(), 2);
        // The edge client stays an edge client …
        assert_eq!(
            restored.match_plain(&PublicationSpec::new().attr("s", "E")).unwrap(),
            vec![ClientId(7)]
        );
        // … and the link interface stays an interface, not ClientId(8).
        assert_eq!(
            restored.match_plain(&PublicationSpec::new().attr("s", "L")).unwrap(),
            vec![interface]
        );
        // `compiled_of` reports the same identity and the compiled form.
        let (identity, compiled) = restored.compiled_of(SubscriptionId(2)).unwrap().unwrap();
        assert_eq!(identity, interface);
        assert_eq!(
            compiled,
            SubscriptionSpec::new().eq("s", "L").compile(engine.schema()).unwrap()
        );
        assert!(restored.compiled_of(SubscriptionId(99)).unwrap().is_none());
    }

    #[test]
    fn batch_matching_equals_sequential() {
        let mut rng = CryptoRng::from_seed(24);
        let producer = producer(&mut rng);
        let mem = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
        engine.provision_keys(producer.sk().clone(), producer.public_key().clone());
        for i in 0..10u64 {
            engine
                .register_plain(
                    SubscriptionId(i),
                    ClientId(i),
                    &SubscriptionSpec::new().gt("p", i as f64),
                )
                .unwrap();
        }
        let headers: Vec<Vec<u8>> = (0..5)
            .map(|i| {
                let publication = PublicationSpec::new().attr("p", 3.5 + i as f64);
                producer.encrypt_header(&publication, &mut rng)
            })
            .collect();
        let batched = engine.match_encrypted_batch(&headers).unwrap();
        for (i, ct) in headers.iter().enumerate() {
            assert_eq!(batched[i], engine.match_encrypted(ct).unwrap());
        }
        // A corrupt header in the batch fails the whole call.
        let mut bad = headers.clone();
        bad[2].truncate(3);
        assert!(engine.match_encrypted_batch(&bad).is_err());
    }

    #[test]
    fn match_batch_into_agrees_with_vec_batch_and_isolates_errors() {
        let mut rng = CryptoRng::from_seed(26);
        let producer = producer(&mut rng);
        let mem = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
        engine.provision_keys(producer.sk().clone(), producer.public_key().clone());
        for i in 0..10u64 {
            engine
                .register_plain(
                    SubscriptionId(i),
                    ClientId(i),
                    &SubscriptionSpec::new().gt("p", i as f64),
                )
                .unwrap();
        }
        let headers: Vec<Vec<u8>> = (0..6)
            .map(|i| {
                let publication = PublicationSpec::new().attr("p", 2.5 + i as f64);
                producer.encrypt_header(&publication, &mut rng)
            })
            .collect();
        let mut out = BatchMatches::new();
        engine.match_encrypted_batch_into(&headers, &mut out);
        assert_eq!(out.len(), headers.len());
        assert!(!out.is_empty());
        for (i, ct) in headers.iter().enumerate() {
            assert_eq!(out.get(i).unwrap(), engine.match_encrypted(ct).unwrap().as_slice());
        }
        assert_eq!(out.total_clients(), out.iter().map(|r| r.unwrap().len()).sum::<usize>());

        // A poisoned header records its error without sinking batch-mates,
        // and the reused buffer fully forgets the previous batch.
        let mut mixed = headers.clone();
        mixed[2].truncate(3);
        engine.match_encrypted_batch_into(&mixed, &mut out);
        assert!(out.get(2).is_err());
        for (i, ct) in headers.iter().enumerate() {
            if i != 2 {
                assert_eq!(out.get(i).unwrap(), engine.match_encrypted(ct).unwrap().as_slice());
            }
        }
    }

    #[test]
    fn peeks_authenticate_without_mutating() {
        let mut rng = CryptoRng::from_seed(46);
        let producer = producer(&mut rng);
        let rogue = ProducerCrypto::generate(512, &mut rng).unwrap();
        let mem = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
        engine.provision_keys(producer.sk().clone(), producer.public_key().clone());
        let spec = SubscriptionSpec::new().eq("s", "X");
        let envelope =
            producer.seal_registration(&spec, SubscriptionId(5), ClientId(6), &mut rng).unwrap();
        assert_eq!(engine.peek_registration(&envelope).unwrap(), (SubscriptionId(5), ClientId(6)));
        assert_eq!(engine.index().len(), 0, "a peek registers nothing");
        let unreg = producer.seal_unregistration(SubscriptionId(5), ClientId(6), &mut rng).unwrap();
        assert_eq!(engine.peek_unregistration(&unreg).unwrap(), (SubscriptionId(5), ClientId(6)));
        // The peeks enforce the same authentication as registration.
        let forged = rogue.seal_registration(&spec, SubscriptionId(5), ClientId(6), &mut rng);
        assert!(engine.peek_registration(&forged.unwrap()).is_err());
        // Envelope kinds are not interchangeable.
        assert!(engine.peek_registration(&unreg).is_err());
        assert!(engine.peek_unregistration(&envelope).is_err());
    }

    #[test]
    fn edge_subscriptions_excludes_interface_copies() {
        let mut rng = CryptoRng::from_seed(47);
        let producer = producer(&mut rng);
        let mem = MemorySim::native(sgx_sim::CacheConfig::default(), sgx_sim::CostModel::free());
        let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
        engine.provision_keys(producer.sk().clone(), producer.public_key().clone());
        let edge = producer
            .seal_registration(
                &SubscriptionSpec::new().eq("s", "E"),
                SubscriptionId(1),
                ClientId(7),
                &mut rng,
            )
            .unwrap();
        let learnt = producer
            .seal_registration(
                &SubscriptionSpec::new().eq("s", "L"),
                SubscriptionId(2),
                ClientId(8),
                &mut rng,
            )
            .unwrap();
        let interface = ClientId(ClientId::INTERFACE_BIT | 3);
        engine.register_envelope(&edge).unwrap();
        engine.register_envelope_as(&learnt, Some(interface)).unwrap();
        assert_eq!(engine.index().len(), 2);
        assert_eq!(engine.edge_subscriptions(), 1, "the interface copy is not edge load");
        assert_eq!(engine.delivery_identity(SubscriptionId(1)), Some(ClientId(7)));
        assert_eq!(engine.delivery_identity(SubscriptionId(2)), Some(interface));
        assert_eq!(engine.delivery_identity(SubscriptionId(9)), None);
    }

    #[test]
    fn push_span_merges_like_a_single_engine() {
        let mut out = BatchMatches::new();
        let mut merged = vec![ClientId(4), ClientId(1), ClientId(4), ClientId(2)];
        out.push_span(&mut merged);
        out.push_error(ScbrError::NotFound { what: "header" });
        let mut empty = Vec::new();
        out.push_span(&mut empty);
        assert_eq!(out.len(), 3);
        assert_eq!(out.get(0).unwrap(), &[ClientId(1), ClientId(2), ClientId(4)]);
        assert!(out.get(1).is_err());
        assert!(out.get(2).unwrap().is_empty());
        assert_eq!(out.total_clients(), 3);
    }

    #[test]
    fn match_batch_is_one_enclave_crossing() {
        let platform = SgxPlatform::for_testing(8);
        let mut rng = CryptoRng::from_seed(25);
        let producer = producer(&mut rng);
        let mut engine = RouterEngine::in_enclave(&platform, IndexKind::Poset).unwrap();
        engine.call(|e| e.provision_keys(producer.sk().clone(), producer.public_key().clone()));
        for i in 0..8u64 {
            let spec = SubscriptionSpec::new().gt("p", i as f64);
            engine.call(|e| e.register_plain(SubscriptionId(i), ClientId(i), &spec)).unwrap();
        }
        let headers: Vec<Vec<u8>> = (0..16)
            .map(|i| {
                producer.encrypt_header(&PublicationSpec::new().attr("p", i as f64 + 0.5), &mut rng)
            })
            .collect();

        engine.reset_counters();
        let sequential: Vec<_> =
            headers.iter().map(|ct| engine.call(|e| e.match_encrypted(ct)).unwrap()).collect();
        let seq_stats = engine.stats();
        assert_eq!(seq_stats.ecalls, headers.len() as u64);

        engine.reset_counters();
        let batched = engine.match_batch(&headers).unwrap();
        let batch_stats = engine.stats();
        assert_eq!(batch_stats.ecalls, 1, "whole batch crosses the gate once");
        assert_eq!(batched, sequential, "batching never changes the match set");
        assert!(
            batch_stats.elapsed_ns < seq_stats.elapsed_ns,
            "amortised transitions are cheaper: {} vs {}",
            batch_stats.elapsed_ns,
            seq_stats.elapsed_ns
        );

        // The per-item variant isolates a poisoned header.
        let mut mixed = headers.clone();
        mixed[3].truncate(2);
        let outcomes = engine.match_batch_each(&mixed);
        assert!(outcomes[3].is_err());
        for (i, outcome) in outcomes.iter().enumerate() {
            if i != 3 {
                assert_eq!(outcome.as_ref().unwrap(), &sequential[i]);
            }
        }
    }

    #[test]
    fn enclave_placement_charges_transitions() {
        let platform = SgxPlatform::for_testing(5);
        let mut inside = RouterEngine::in_enclave(&platform, IndexKind::Poset).unwrap();
        let mut outside = RouterEngine::outside(&platform, IndexKind::Poset);
        assert_eq!(inside.placement(), Placement::InEnclave);
        assert_eq!(outside.placement(), Placement::Outside);

        let spec = SubscriptionSpec::new().eq("s", "X");
        inside.call(|e| e.register_plain(SubscriptionId(1), ClientId(1), &spec)).unwrap();
        outside.call(|e| e.register_plain(SubscriptionId(1), ClientId(1), &spec)).unwrap();
        assert_eq!(inside.enclave().unwrap().ecall_count(), 1);
        assert!(
            inside.elapsed_ns() > outside.elapsed_ns(),
            "enclave pays call-gate and EPC admission costs"
        );
    }

    #[test]
    fn inside_and_outside_agree_on_results() {
        let platform = SgxPlatform::for_testing(6);
        let mut rng = CryptoRng::from_seed(7);
        let producer = producer(&mut rng);
        let mut inside = RouterEngine::in_enclave(&platform, IndexKind::Poset).unwrap();
        let mut outside = RouterEngine::outside(&platform, IndexKind::Poset);
        for engine in [&mut inside, &mut outside] {
            engine.call(|e| e.provision_keys(producer.sk().clone(), producer.public_key().clone()));
        }
        for i in 0..20u64 {
            let spec = SubscriptionSpec::new().gt("price", i as f64);
            let env = producer
                .seal_registration(&spec, SubscriptionId(i), ClientId(i), &mut rng)
                .unwrap();
            inside.call(|e| e.register_envelope(&env)).unwrap();
            outside.call(|e| e.register_envelope(&env)).unwrap();
        }
        let publication = PublicationSpec::new().attr("price", 10.5);
        let ct = producer.encrypt_header(&publication, &mut rng);
        let a = inside.call(|e| e.match_encrypted(&ct)).unwrap();
        let b = outside.call(|e| e.match_encrypted(&ct)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 11); // price > 0 .. price > 10
    }
}
