//! Property: batch matching is **match-set-equivalent** to sequential
//! per-message matching, for every index implementation.
//!
//! The batch-first pipeline (PR 2) must be a pure amortisation: moving N
//! publications through one enclave crossing may change *cost*, never
//! *results*. These properties drive random subscription databases and
//! header batches through all three index kinds (poset, counting, naive)
//! and through the enclave-hosted [`RouterEngine::match_batch`] gate, and
//! require bit-identical client lists against the one-message-at-a-time
//! path.

use proptest::prelude::*;
use scbr::engine::{MatchingEngine, RouterEngine};
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::IndexKind;
use scbr::publication::PublicationSpec;
use scbr::subscription::SubscriptionSpec;
use scbr_crypto::ctr::{AesCtr, SymmetricKey};
use scbr_crypto::rng::CryptoRng;
use scbr_crypto::rsa::RsaPublicKey;
use sgx_sim::{CacheConfig, CostModel, MemorySim, SgxPlatform};

const SYMBOLS: [&str; 3] = ["HAL", "IBM", "AMD"];
const NUMERIC: [&str; 3] = ["price", "volume", "change"];

/// A generated subscription: optional symbol equality plus numeric bounds.
#[derive(Debug, Clone)]
struct RawSub {
    symbol: Option<usize>,
    bounds: Vec<(usize, u8, f64)>,
}

fn sub_strategy() -> impl Strategy<Value = RawSub> {
    (
        proptest::option::of(0usize..SYMBOLS.len()),
        proptest::collection::vec((0usize..NUMERIC.len(), 0u8..4, -20.0f64..120.0), 0..3),
    )
        .prop_map(|(symbol, bounds)| RawSub { symbol, bounds })
}

fn build_sub(raw: &RawSub) -> SubscriptionSpec {
    let mut spec = SubscriptionSpec::new();
    if let Some(s) = raw.symbol {
        spec = spec.eq("symbol", SYMBOLS[s]);
    }
    let mut used = std::collections::HashSet::new();
    for (attr, op, bound) in &raw.bounds {
        if !used.insert(*attr) {
            continue; // one predicate per attribute avoids contradictions
        }
        let name = NUMERIC[*attr];
        spec = match op {
            0 => spec.lt(name, *bound),
            1 => spec.le(name, *bound),
            2 => spec.gt(name, *bound),
            _ => spec.ge(name, *bound),
        };
    }
    spec
}

/// A generated publication header: a symbol and all numeric attributes.
#[derive(Debug, Clone)]
struct RawPub {
    symbol: usize,
    values: Vec<f64>,
}

fn pub_strategy() -> impl Strategy<Value = RawPub> {
    (0usize..SYMBOLS.len(), proptest::collection::vec(-30.0f64..130.0, NUMERIC.len()))
        .prop_map(|(symbol, values)| RawPub { symbol, values })
}

fn build_pub(raw: &RawPub) -> PublicationSpec {
    let mut spec = PublicationSpec::new().attr("symbol", SYMBOLS[raw.symbol]);
    for (i, v) in raw.values.iter().enumerate() {
        spec = spec.attr(NUMERIC[i], *v);
    }
    spec
}

fn test_key() -> (SymmetricKey, RsaPublicKey) {
    (
        SymmetricKey::from_bytes([0x42; 16]),
        RsaPublicKey::from_parts(
            scbr_crypto::BigUint::from_u64(3233),
            scbr_crypto::BigUint::from_u64(17),
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For each index kind: `match_encrypted_batch` equals the sequential
    /// per-message path item by item, and all kinds agree with each other.
    #[test]
    fn batch_equals_sequential_for_all_index_kinds(
        subs in proptest::collection::vec(sub_strategy(), 0..24),
        pubs in proptest::collection::vec(pub_strategy(), 1..10),
        seed in 0u64..1_000,
    ) {
        let (sk, pk) = test_key();
        let mut rng = CryptoRng::from_seed(seed);
        let headers: Vec<Vec<u8>> = pubs
            .iter()
            .map(|p| {
                let plain = scbr::codec::encode_header(&build_pub(p));
                AesCtr::encrypt_with_nonce(&sk, &mut rng, &plain)
            })
            .collect();

        let mut reference: Option<Vec<Vec<ClientId>>> = None;
        for kind in [IndexKind::Poset, IndexKind::Counting, IndexKind::Naive] {
            let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
            let mut engine = MatchingEngine::new(&mem, kind);
            engine.provision_keys(sk.clone(), pk.clone());
            for (i, raw) in subs.iter().enumerate() {
                engine
                    .register_plain(
                        SubscriptionId(i as u64),
                        ClientId(i as u64 % 7), // collide clients: dedup paths
                        &build_sub(raw),
                    )
                    .expect("generated subscriptions compile");
            }

            let batched = engine.match_encrypted_batch(&headers).expect("batch matches");
            prop_assert_eq!(batched.len(), headers.len());
            for (i, ct) in headers.iter().enumerate() {
                let sequential = engine.match_encrypted(ct).expect("sequential matches");
                prop_assert_eq!(
                    &batched[i], &sequential,
                    "kind {:?}, publication {}", kind, i
                );
            }
            // The per-item variant agrees too.
            for (i, outcome) in engine.match_encrypted_batch_each(&headers).iter().enumerate() {
                prop_assert_eq!(outcome.as_ref().expect("valid headers"), &batched[i]);
            }
            match &reference {
                None => reference = Some(batched),
                Some(r) => prop_assert_eq!(r, &batched, "index kinds agree ({:?})", kind),
            }
        }
    }

    /// The enclave-gated batch API returns the same match sets as the
    /// ungated engine, for any batch split.
    #[test]
    fn enclave_match_batch_equals_outside(
        subs in proptest::collection::vec(sub_strategy(), 0..16),
        pubs in proptest::collection::vec(pub_strategy(), 1..8),
        split in 1usize..8,
    ) {
        let (sk, pk) = test_key();
        let mut rng = CryptoRng::from_seed(9);
        let platform = SgxPlatform::for_testing(1);
        let mut inside = RouterEngine::in_enclave(&platform, IndexKind::Poset).expect("launch");
        let mut outside = RouterEngine::outside(&platform, IndexKind::Poset);
        for engine in [&mut inside, &mut outside] {
            let (sk, pk) = (sk.clone(), pk.clone());
            engine.call(move |e| e.provision_keys(sk, pk));
            for (i, raw) in subs.iter().enumerate() {
                engine
                    .call(|e| {
                        e.register_plain(SubscriptionId(i as u64), ClientId(i as u64), &build_sub(raw))
                    })
                    .expect("register");
            }
        }
        let headers: Vec<Vec<u8>> = pubs
            .iter()
            .map(|p| {
                let plain = scbr::codec::encode_header(&build_pub(p));
                AesCtr::encrypt_with_nonce(&sk, &mut rng, &plain)
            })
            .collect();

        let ecalls_before = inside.stats().ecalls;
        let mut inside_results = Vec::new();
        for chunk in headers.chunks(split) {
            inside_results.extend(inside.match_batch(chunk).expect("inside batch"));
        }
        let crossings = inside.stats().ecalls - ecalls_before;
        prop_assert_eq!(crossings, headers.chunks(split).len() as u64, "one ECALL per chunk");

        let outside_results = outside.match_batch(&headers).expect("outside batch");
        prop_assert_eq!(inside_results, outside_results);
    }
}
