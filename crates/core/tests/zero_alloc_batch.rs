//! Steady-state `match_encrypted_batch_into` performs **zero heap
//! allocations** — measured, not asserted by inspection.
//!
//! This binary installs a counting global allocator and drives warmed
//! batches through the flat pipeline: decrypt into a reused plaintext
//! buffer, decode into a reused `CompiledHeader`, match through the
//! per-engine `MatchScratch`, append into a reused `BatchMatches`. After
//! the warm-up batch has sized every buffer, repeated batches must not
//! touch the allocator at all. (Isolated in its own test binary so other
//! tests' allocations cannot interfere with the counters.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use scbr::engine::{BatchMatches, MatchingEngine};
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::IndexKind;
use scbr::publication::PublicationSpec;
use scbr::subscription::SubscriptionSpec;
use scbr_crypto::ctr::{AesCtr, SymmetricKey};
use scbr_crypto::rng::CryptoRng;
use scbr_crypto::rsa::RsaPublicKey;
use sgx_sim::{CacheConfig, CostModel, MemorySim};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter updates are
// lock-free atomics, so the allocator never recurses or blocks.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn drive_warmed_batches(telemetry: bool) {
    let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
    let mut engine = MatchingEngine::new(&mem, IndexKind::Poset);
    engine.set_telemetry(telemetry);
    let sk = SymmetricKey::from_bytes([0x5c; 16]);
    let pk = RsaPublicKey::from_parts(
        scbr_crypto::BigUint::from_u64(3233),
        scbr_crypto::BigUint::from_u64(17),
    );
    engine.provision_keys(sk.clone(), pk);

    // A containment-heavy database: per topic, nested priority floors
    // share poset chains; distinct topics spread the root directory.
    for i in 0..400u64 {
        let spec = SubscriptionSpec::new()
            .eq("topic", format!("t{}", i % 20).as_str())
            .ge("priority", (i % 5) as i64);
        engine.register_plain(SubscriptionId(i), ClientId(i % 64), &spec).expect("register");
    }

    let mut rng = CryptoRng::from_seed(11);
    let headers: Vec<Vec<u8>> = (0..32)
        .map(|i| {
            let publication = PublicationSpec::new()
                .attr("topic", format!("t{}", i % 20).as_str())
                .attr("priority", (i % 5) as i64)
                .attr("sender", i as i64);
            AesCtr::encrypt_with_nonce(&sk, &mut rng, &scbr::codec::encode_header(&publication))
        })
        .collect();

    let mut out = BatchMatches::new();
    // Warm up: the first batches size the decrypt buffer, the decoded
    // header, the match scratch, and the output spans; the schema has
    // interned every attribute name.
    for _ in 0..3 {
        engine.match_encrypted_batch_into(&headers, &mut out);
    }
    assert!(out.total_clients() > 0, "workload must actually match");
    let expected: usize = out.total_clients();

    let before = allocations();
    for _ in 0..10 {
        engine.match_encrypted_batch_into(&headers, &mut out);
    }
    let after = allocations();
    assert_eq!(out.total_clients(), expected, "steady-state results stay identical");
    assert_eq!(after - before, 0, "steady-state match_encrypted_batch_into must not allocate");
}

#[test]
fn warmed_batch_matching_never_allocates() {
    drive_warmed_batches(false);
}

/// The telemetry histograms are fixed arrays with epoch-stamped clears,
/// so the *instrumented* steady-state batch path must be just as
/// allocation-free as the bare one.
#[test]
fn warmed_instrumented_batch_matching_never_allocates() {
    drive_warmed_batches(true);
}
