//! Property: every index implementation computes the **same match sets**
//! under arbitrary interleavings of inserts, removals, and matches.
//!
//! The arena poset (this PR) must be behaviourally indistinguishable from
//! the frozen pre-arena poset (`IndexKind::PosetLegacy`), the counting
//! index, and the naive scan — only cost may differ. These properties
//! replay one random op stream against all four kinds simultaneously and
//! compare outputs after every step, so structural divergence (a dropped
//! edge during detach, a stale directory bucket, a missed root promotion)
//! surfaces as a minimal counterexample.

use proptest::prelude::*;
use scbr::attr::AttrSchema;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::index::{new_index, IndexKind, MatchScratch, SubscriptionIndex};
use scbr::publication::PublicationSpec;
use scbr::subscription::SubscriptionSpec;
use sgx_sim::{CacheConfig, CostModel, MemorySim};

const KINDS: [IndexKind; 4] =
    [IndexKind::Poset, IndexKind::PosetLegacy, IndexKind::Counting, IndexKind::Naive];

const TOPICS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// A generated subscription: optional topic equality plus numeric bounds
/// over a small attribute pool, so covering chains and shared nodes are
/// common rather than rare.
#[derive(Debug, Clone)]
struct RawSub {
    topic: Option<usize>,
    bounds: Vec<(u8, u8, i8)>,
}

/// One step of the interleaving.
#[derive(Debug, Clone)]
enum RawOp {
    /// Insert the next subscription from the generated pool.
    Insert,
    /// Remove the i-th live subscription (modulo live count).
    Remove(usize),
    /// Match a header and compare all kinds.
    Match { topic: usize, values: Vec<i8> },
}

fn sub_strategy() -> impl Strategy<Value = RawSub> {
    (
        proptest::option::of(0usize..TOPICS.len()),
        proptest::collection::vec((0u8..3, 0u8..4, -20i8..20), 0..3),
    )
        .prop_map(|(topic, bounds)| RawSub { topic, bounds })
}

fn op_strategy() -> impl Strategy<Value = RawOp> {
    (0u8..8, 0usize..64, 0usize..TOPICS.len(), proptest::collection::vec(-25i8..25, 3)).prop_map(
        |(roll, pick, topic, values)| match roll {
            0..=3 => RawOp::Insert,
            4..=5 => RawOp::Remove(pick),
            _ => RawOp::Match { topic, values },
        },
    )
}

fn build_sub(raw: &RawSub) -> SubscriptionSpec {
    let mut spec = SubscriptionSpec::new();
    if let Some(t) = raw.topic {
        spec = spec.eq("topic", TOPICS[t]);
    }
    let mut used = std::collections::HashSet::new();
    for (attr, op, bound) in &raw.bounds {
        if !used.insert(*attr) {
            continue; // one predicate per attribute avoids contradictions
        }
        let name = ["x", "y", "z"][*attr as usize];
        let b = *bound as i64;
        spec = match op {
            0 => spec.lt(name, b),
            1 => spec.le(name, b),
            2 => spec.gt(name, b),
            _ => spec.ge(name, b),
        };
    }
    spec
}

fn matches_of(
    index: &dyn SubscriptionIndex,
    header: &scbr::publication::CompiledHeader,
    scratch: &mut MatchScratch,
) -> Vec<u64> {
    let mut out = Vec::new();
    index.match_into(header, scratch, &mut out);
    let mut ids: Vec<u64> = out.into_iter().map(|c| c.0).collect();
    // Indexes report raw hits; ordering and multiplicity across shared
    // nodes is the engine's job, so compare as sorted sets.
    ids.sort_unstable();
    ids.dedup();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All four kinds agree after every step of a random interleaving.
    #[test]
    fn all_index_kinds_agree_under_churn(
        pool in proptest::collection::vec(sub_strategy(), 1..24),
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let schema = AttrSchema::new();
        let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
        let mut indexes: Vec<Box<dyn SubscriptionIndex>> =
            KINDS.iter().map(|k| new_index(*k, &mem)).collect();
        let mut scratches: Vec<MatchScratch> = KINDS.iter().map(|_| MatchScratch::default()).collect();

        let mut next_id = 0u64;
        let mut next_sub = 0usize;
        let mut live: Vec<SubscriptionId> = Vec::new();
        for op in &ops {
            match op {
                RawOp::Insert => {
                    let raw = &pool[next_sub % pool.len()];
                    next_sub += 1;
                    let compiled = build_sub(raw).compile(&schema).expect("generated subs compile");
                    let id = SubscriptionId(next_id);
                    next_id += 1;
                    live.push(id);
                    for index in &mut indexes {
                        index.insert(id, ClientId(id.0), compiled.clone());
                    }
                }
                RawOp::Remove(pick) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live.swap_remove(pick % live.len());
                    for (index, kind) in indexes.iter_mut().zip(&KINDS) {
                        prop_assert!(index.remove(id), "{kind:?} lost subscription {id:?}");
                    }
                }
                RawOp::Match { topic, values } => {
                    let header = PublicationSpec::new()
                        .attr("topic", TOPICS[*topic])
                        .attr("x", values[0] as i64)
                        .attr("y", values[1] as i64)
                        .attr("z", values[2] as i64)
                        .compile_header(&schema)
                        .expect("header compiles");
                    let reference = matches_of(indexes[0].as_ref(), &header, &mut scratches[0]);
                    for i in 1..indexes.len() {
                        let got = matches_of(indexes[i].as_ref(), &header, &mut scratches[i]);
                        prop_assert_eq!(
                            &reference, &got,
                            "{:?} disagrees with {:?} after {} inserts",
                            KINDS[i], KINDS[0], next_id
                        );
                    }
                }
            }
            for (index, kind) in indexes.iter().zip(&KINDS) {
                prop_assert_eq!(index.len(), live.len(), "{:?} live-count drift", kind);
            }
        }
    }

    /// Draining every subscription leaves every kind empty and matching
    /// nothing (no leaked arena slots or directory buckets).
    #[test]
    fn full_drain_leaves_all_kinds_empty(
        pool in proptest::collection::vec(sub_strategy(), 1..16),
        topic in 0usize..TOPICS.len(),
    ) {
        let schema = AttrSchema::new();
        let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
        let mut indexes: Vec<Box<dyn SubscriptionIndex>> =
            KINDS.iter().map(|k| new_index(*k, &mem)).collect();
        for (i, raw) in pool.iter().enumerate() {
            let compiled = build_sub(raw).compile(&schema).expect("compiles");
            for index in &mut indexes {
                index.insert(SubscriptionId(i as u64), ClientId(i as u64), compiled.clone());
            }
        }
        for i in 0..pool.len() {
            for index in &mut indexes {
                prop_assert!(index.remove(SubscriptionId(i as u64)));
            }
        }
        let header = PublicationSpec::new()
            .attr("topic", TOPICS[topic])
            .attr("x", 0i64)
            .compile_header(&schema)
            .expect("compiles");
        for (index, kind) in indexes.iter().zip(&KINDS) {
            prop_assert_eq!(index.len(), 0, "{:?} not empty", kind);
            let mut scratch = MatchScratch::default();
            let mut out = Vec::new();
            index.match_into(&header, &mut scratch, &mut out);
            prop_assert!(out.is_empty(), "{:?} matched after drain", kind);
        }
    }
}
