//! Property-based tests of the core matching semantics.
//!
//! The containment relation is the engine's load-bearing invariant: if
//! `covers` ever lied, the poset would silently drop matches. These
//! properties pin it down against randomly generated subscriptions and
//! headers.

use proptest::prelude::*;
use scbr::attr::AttrSchema;
use scbr::predicate::Op;
use scbr::publication::PublicationSpec;
use scbr::subscription::SubscriptionSpec;
use scbr::value::Value;

const ATTRS: [&str; 4] = ["price", "volume", "size", "symbol"];
const SYMBOLS: [&str; 3] = ["HAL", "IBM", "AMD"];

#[derive(Debug, Clone)]
struct RawPred {
    attr: usize,
    op: u8,
    num: f64,
    sym: usize,
}

fn pred_strategy() -> impl Strategy<Value = RawPred> {
    (0usize..ATTRS.len(), 0u8..5, -50.0f64..150.0, 0usize..SYMBOLS.len())
        .prop_map(|(attr, op, num, sym)| RawPred { attr, op, num, sym })
}

/// Builds a spec from raw predicates, skipping combinations the API
/// rejects (contradictions are filtered by retrying compile).
fn build_spec(preds: &[RawPred]) -> SubscriptionSpec {
    let mut spec = SubscriptionSpec::new();
    let mut used = std::collections::HashSet::new();
    for p in preds {
        let attr = ATTRS[p.attr];
        if !used.insert(attr) {
            continue; // one predicate per attribute: avoids contradictions
        }
        if attr == "symbol" {
            spec = spec.eq(attr, SYMBOLS[p.sym]);
        } else {
            let op = match p.op {
                0 => Op::Eq,
                1 => Op::Lt,
                2 => Op::Le,
                3 => Op::Gt,
                _ => Op::Ge,
            };
            spec = spec.with(attr, op, Value::Float(p.num));
        }
    }
    spec
}

fn build_header(
    schema: &AttrSchema,
    values: &[f64],
    sym: usize,
) -> scbr::publication::CompiledHeader {
    PublicationSpec::new()
        .attr("price", values[0])
        .attr("volume", values[1])
        .attr("size", values[2])
        .attr("symbol", SYMBOLS[sym])
        .compile_header(schema)
        .expect("header compiles")
}

proptest! {
    /// covers is reflexive on canonical forms.
    #[test]
    fn covers_is_reflexive(preds in proptest::collection::vec(pred_strategy(), 0..4)) {
        let schema = AttrSchema::new();
        if let Ok(c) = build_spec(&preds).compile(&schema) {
            prop_assert!(c.covers(&c));
        }
    }

    /// The semantic definition: a.covers(b) implies every header matching
    /// b also matches a.
    #[test]
    fn covers_implies_match_subset(
        a_preds in proptest::collection::vec(pred_strategy(), 0..4),
        b_preds in proptest::collection::vec(pred_strategy(), 0..4),
        headers in proptest::collection::vec((proptest::collection::vec(-60.0f64..160.0, 3), 0usize..3), 1..20),
    ) {
        let schema = AttrSchema::new();
        let (Ok(a), Ok(b)) = (build_spec(&a_preds).compile(&schema), build_spec(&b_preds).compile(&schema)) else {
            return Ok(());
        };
        if a.covers(&b) {
            for (values, sym) in &headers {
                let h = build_header(&schema, values, *sym);
                if b.matches(&h) {
                    prop_assert!(a.matches(&h), "b matched {values:?}/{sym} but a did not");
                }
            }
        }
    }

    /// covers is transitive.
    #[test]
    fn covers_is_transitive(
        a_preds in proptest::collection::vec(pred_strategy(), 0..3),
        b_preds in proptest::collection::vec(pred_strategy(), 0..3),
        c_preds in proptest::collection::vec(pred_strategy(), 0..3),
    ) {
        let schema = AttrSchema::new();
        let (Ok(a), Ok(b), Ok(c)) = (
            build_spec(&a_preds).compile(&schema),
            build_spec(&b_preds).compile(&schema),
            build_spec(&c_preds).compile(&schema),
        ) else {
            return Ok(());
        };
        if a.covers(&b) && b.covers(&c) {
            prop_assert!(a.covers(&c));
        }
    }

    /// Mutual covering means identical matching behaviour (canonical
    /// equality), and fingerprints agree.
    #[test]
    fn mutual_covering_is_equality(
        a_preds in proptest::collection::vec(pred_strategy(), 0..4),
        b_preds in proptest::collection::vec(pred_strategy(), 0..4),
    ) {
        let schema = AttrSchema::new();
        let (Ok(a), Ok(b)) = (build_spec(&a_preds).compile(&schema), build_spec(&b_preds).compile(&schema)) else {
            return Ok(());
        };
        if a.covers(&b) && b.covers(&a) {
            prop_assert_eq!(&a, &b, "mutual covering implies canonical equality");
            prop_assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }

    /// The empty subscription covers everything and matches everything.
    #[test]
    fn top_covers_all(preds in proptest::collection::vec(pred_strategy(), 0..4),
                      values in proptest::collection::vec(-60.0f64..160.0, 3),
                      sym in 0usize..3) {
        let schema = AttrSchema::new();
        let top = SubscriptionSpec::new().compile(&schema).expect("empty compiles");
        if let Ok(c) = build_spec(&preds).compile(&schema) {
            prop_assert!(top.covers(&c));
        }
        prop_assert!(top.matches(&build_header(&schema, &values, sym)));
    }

    /// Wire round-trip: any buildable spec encodes and decodes losslessly.
    #[test]
    fn codec_round_trip(preds in proptest::collection::vec(pred_strategy(), 0..6)) {
        let spec = build_spec(&preds);
        let bytes = scbr::codec::encode_subscription(&spec);
        prop_assert_eq!(scbr::codec::decode_subscription(&bytes).unwrap(), spec);
    }

    /// Decoding never panics on arbitrary bytes.
    #[test]
    fn codec_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = scbr::codec::decode_subscription(&bytes);
        let _ = scbr::codec::decode_header(&bytes);
        let _ = scbr::codec::decode_registration(&bytes);
        let _ = scbr::codec::decode_publish(&bytes);
        let _ = scbr::protocol::messages::Message::from_wire(&bytes);
    }
}
