//! Keyed Bloom filters for the equality prefilter (DEBS '12, "Thrifty
//! Privacy").
//!
//! Publications carry a Bloom filter over `(attribute, value)` pairs of
//! their equality-testable attributes, hashed with a key shared by
//! producer and subscribers (but not the router). The router can check
//! whether a subscription's equality constraints *might* be satisfied
//! without learning the values — false positives only cost an unnecessary
//! full ASPE evaluation, never a wrong result, because equality predicates
//! are also enforced by the ASPE forms or by construction of the filter.

use scbr_crypto::hmac::HmacSha256;

/// A fixed-size Bloom filter with `k` keyed hash functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: usize,
    k: u32,
}

impl BloomFilter {
    /// Creates an empty filter of `n_bits` bits with `k` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `n_bits` or `k` is zero.
    pub fn new(n_bits: usize, k: u32) -> Self {
        assert!(n_bits > 0 && k > 0, "bloom parameters must be positive");
        BloomFilter { bits: vec![0u64; n_bits.div_ceil(64)], n_bits, k }
    }

    /// Standard sizing for an expected `n` items at ~1% false positives.
    pub fn for_items(n: usize) -> Self {
        // m = n * 9.6 bits, k = 7 for p ≈ 0.01.
        BloomFilter::new((n.max(1) * 10).next_power_of_two(), 7)
    }

    /// Number of hash functions.
    pub fn hashes(&self) -> u32 {
        self.k
    }

    /// Filter size in bits.
    pub fn bit_len(&self) -> usize {
        self.n_bits
    }

    fn positions<'a>(&'a self, key: &'a [u8], item: &'a [u8]) -> impl Iterator<Item = usize> + 'a {
        // Two keyed 64-bit halves combined Kirsch-Mitzenmacher style.
        let digest = {
            let mut mac = HmacSha256::new(key);
            mac.update(item);
            mac.finalize()
        };
        let h1 = u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"));
        let h2 = u64::from_be_bytes(digest[8..16].try_into().expect("8 bytes"));
        let n_bits = self.n_bits as u64;
        (0..self.k as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % n_bits) as usize)
    }

    /// Inserts an item hashed under `key`.
    pub fn insert(&mut self, key: &[u8], item: &[u8]) {
        let positions: Vec<usize> = self.positions(key, item).collect();
        for pos in positions {
            self.bits[pos / 64] |= 1 << (pos % 64);
        }
    }

    /// Membership test (may report false positives, never false negatives).
    pub fn contains(&self, key: &[u8], item: &[u8]) -> bool {
        self.positions(key, item).all(|pos| self.bits[pos / 64] & (1 << (pos % 64)) != 0)
    }

    /// Reads one raw bit (routers test precomputed positions without the
    /// key).
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    pub fn bit(&self, position: usize) -> bool {
        assert!(position < self.n_bits, "bit out of range");
        self.bits[position / 64] & (1 << (position % 64)) != 0
    }

    /// Number of set bits (for diagnostics).
    pub fn popcount(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Serialised size in bytes (what the publication carries).
    pub fn byte_len(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_items_are_found() {
        let mut bf = BloomFilter::new(1024, 7);
        for i in 0..50u32 {
            bf.insert(b"key", &i.to_be_bytes());
        }
        for i in 0..50u32 {
            assert!(bf.contains(b"key", &i.to_be_bytes()));
        }
    }

    #[test]
    fn absent_items_mostly_not_found() {
        let mut bf = BloomFilter::for_items(100);
        for i in 0..100u32 {
            bf.insert(b"key", &i.to_be_bytes());
        }
        let false_positives =
            (1000..3000u32).filter(|i| bf.contains(b"key", &i.to_be_bytes())).count();
        assert!(
            false_positives < 60, // ~3% upper bound on a ~1% design point
            "false positive count {false_positives}"
        );
    }

    #[test]
    fn different_keys_do_not_match() {
        let mut bf = BloomFilter::new(4096, 5);
        bf.insert(b"producer-key", b"symbol=HAL");
        assert!(bf.contains(b"producer-key", b"symbol=HAL"));
        assert!(!bf.contains(b"other-key", b"symbol=HAL"));
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let bf = BloomFilter::new(256, 3);
        assert!(!bf.contains(b"k", b"anything"));
        assert_eq!(bf.popcount(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bits_panics() {
        BloomFilter::new(0, 3);
    }
}
