//! The ASPE pub/sub matcher: the paper's software-only baseline router.
//!
//! Split into a trusted [`AspeAuthority`] (producer side: owns the matrix
//! key and the Bloom key, encrypts publications and subscriptions) and an
//! untrusted [`AspeMatcher`] (router side: stores encrypted subscriptions
//! and matches encrypted publications with no key material at all).
//!
//! Matching cost is charged to a [`sgx_sim::MemorySim`] exactly like the
//! SCBR engine's, so Figure 7's "Out ASPE" curves come off the same
//! virtual clock: per subscription, a Bloom prefilter probe, then — for
//! candidates — one `D²` quadratic form per range predicate, with all the
//! memory traffic that implies.

use crate::bloom::BloomFilter;
use crate::error::AspeError;
use crate::matrix::Matrix;
use crate::scheme::{form_between, form_ge, form_le, AspeKey};
use scbr::ids::{ClientId, SubscriptionId};
use scbr::predicate::Op;
use scbr::publication::PublicationSpec;
use scbr::subscription::SubscriptionSpec;
use scbr::value::Value;
use scbr_crypto::rng::CryptoRng;
use scbr_telemetry::LatencyHistogram;
use sgx_sim::MemorySim;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Bloom-filter geometry carried by every publication (bits, hashes).
/// Sized so that realistic headers (≤ ~50 equality items) keep the false
/// positive rate negligible.
const BLOOM_BITS: usize = 16_384;
const BLOOM_HASHES: u32 = 7;

/// An encrypted publication: Bloom filter over equality items plus the
/// ASPE-encrypted attribute point.
#[derive(Debug, Clone)]
pub struct EncryptedPublication {
    /// Keyed Bloom filter of the publication's equality-attribute values.
    pub bloom: BloomFilter,
    /// `Mᵀ·(r·p̂)`.
    pub point: Vec<f64>,
}

/// One encrypted subscription: Bloom bit positions for its equality
/// constraints plus encrypted quadratic forms for its ranges.
#[derive(Debug, Clone)]
pub struct EncryptedSubscription {
    /// For each equality predicate, the `k` filter positions to test.
    pub eq_positions: Vec<Vec<usize>>,
    /// Encrypted range forms (`M⁻¹·W·M⁻ᵀ` each).
    pub forms: Vec<Matrix>,
}

impl EncryptedSubscription {
    /// Logical size in bytes (what the router must store and touch).
    pub fn logical_bytes(&self, dim: usize) -> u64 {
        let eq = self.eq_positions.iter().map(|p| p.len() * 4).sum::<usize>() as u64;
        let forms = (self.forms.len() * dim * dim * 8) as u64;
        48 + eq + forms
    }
}

/// The trusted side: key owner and encryptor.
#[derive(Debug, Clone)]
pub struct AspeAuthority {
    key: AspeKey,
    bloom_key: [u8; 32],
    /// Numeric attribute name -> point slot.
    slots: HashMap<String, usize>,
    /// Attributes whose equality constraints go through the Bloom filter.
    eq_attrs: Vec<String>,
    const_slot: usize,
    noise_slot: usize,
    dim: usize,
}

impl AspeAuthority {
    /// Creates an authority for a fixed schema: `numeric_attrs` are
    /// range-testable (one point slot each), `eq_attrs` are
    /// equality-testable through the Bloom filter.
    pub fn new(numeric_attrs: &[&str], eq_attrs: &[&str], rng: &mut CryptoRng) -> Self {
        let mut slots = HashMap::new();
        for (i, name) in numeric_attrs.iter().enumerate() {
            slots.insert((*name).to_owned(), i);
        }
        let const_slot = numeric_attrs.len();
        let noise_slot = const_slot + 1;
        let dim = noise_slot + 1;
        let mut bloom_key = [0u8; 32];
        rng.fill(&mut bloom_key);
        AspeAuthority {
            key: AspeKey::generate(dim, rng),
            bloom_key,
            slots,
            eq_attrs: eq_attrs.iter().map(|s| (*s).to_owned()).collect(),
            const_slot,
            noise_slot,
            dim,
        }
    }

    /// The embedding dimension `D` (numeric attributes + 2).
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn bloom_item(attr: &str, value: &Value) -> Vec<u8> {
        let mut item = Vec::with_capacity(attr.len() + 24);
        item.extend_from_slice(attr.as_bytes());
        item.push(0);
        match value {
            Value::Int(i) => item.extend_from_slice(&i.to_be_bytes()),
            Value::Float(f) => item.extend_from_slice(&f.to_be_bytes()),
            Value::Str(s) => item.extend_from_slice(s.as_bytes()),
        }
        item
    }

    /// Positions a value's Bloom item maps to (computed with the secret
    /// key; the router only ever sees the positions).
    fn positions_for(&self, attr: &str, value: &Value) -> Vec<usize> {
        probe_positions(&self.bloom_key, &Self::bloom_item(attr, value))
    }

    /// Encrypts a publication.
    ///
    /// # Errors
    ///
    /// [`AspeError::UnknownAttribute`] if a schema numeric attribute is
    /// missing from the header (ASPE requires a fixed schema).
    pub fn encrypt_publication(
        &self,
        publication: &PublicationSpec,
        rng: &mut CryptoRng,
    ) -> Result<EncryptedPublication, AspeError> {
        let mut point = vec![0.0f64; self.dim];
        let mut present = vec![false; self.dim];
        let mut bloom = BloomFilter::new(BLOOM_BITS, BLOOM_HASHES);
        for (name, value) in publication.header() {
            if let Some(&slot) = self.slots.get(name) {
                point[slot] = match value {
                    Value::Int(i) => *i as f64,
                    Value::Float(f) => *f,
                    Value::Str(_) => {
                        return Err(AspeError::Unsupported {
                            what: "string value in a numeric slot",
                        })
                    }
                };
                present[slot] = true;
            }
            if self.eq_attrs.iter().any(|a| a == name) {
                bloom.insert(&self.bloom_key, &Self::bloom_item(name, value));
            }
        }
        for (name, &slot) in &self.slots {
            if !present[slot] {
                return Err(AspeError::UnknownAttribute { name: name.clone() });
            }
        }
        point[self.const_slot] = 1.0;
        point[self.noise_slot] = rng.unit_f64();
        Ok(EncryptedPublication { bloom, point: self.key.encrypt_point(&point, rng)? })
    }

    /// Encrypts a subscription.
    ///
    /// # Errors
    ///
    /// [`AspeError::Unsupported`] for constructs ASPE cannot express,
    /// [`AspeError::UnknownAttribute`] for attributes outside the schema.
    pub fn encrypt_subscription(
        &self,
        spec: &SubscriptionSpec,
        _rng: &mut CryptoRng,
    ) -> Result<EncryptedSubscription, AspeError> {
        let mut eq_positions = Vec::new();
        let mut forms = Vec::new();
        for pred in spec.predicates() {
            let is_eq_attr = self.eq_attrs.contains(&pred.attr);
            match (pred.op, &pred.value) {
                (Op::Eq, value) if is_eq_attr => {
                    eq_positions.push(self.positions_for(&pred.attr, value));
                }
                (Op::Eq, Value::Str(_)) => {
                    return Err(AspeError::Unsupported {
                        what: "string equality outside the bloom schema",
                    })
                }
                (op, value) => {
                    let &slot = self
                        .slots
                        .get(&pred.attr)
                        .ok_or_else(|| AspeError::UnknownAttribute { name: pred.attr.clone() })?;
                    let v = match value {
                        Value::Int(i) => *i as f64,
                        Value::Float(f) => *f,
                        Value::Str(_) => {
                            return Err(AspeError::Unsupported {
                                what: "range over string attribute",
                            })
                        }
                    };
                    let w = match op {
                        Op::Eq => form_between(self.dim, slot, self.const_slot, v, v),
                        Op::Ge => form_ge(self.dim, slot, self.const_slot, v),
                        // Strict bounds collapse to their closed forms:
                        // quadratic-form signs cannot distinguish open from
                        // closed endpoints (a measure-zero difference the
                        // DEXA'10 scheme also ignores).
                        Op::Gt => form_ge(self.dim, slot, self.const_slot, v),
                        Op::Le => form_le(self.dim, slot, self.const_slot, v),
                        Op::Lt => form_le(self.dim, slot, self.const_slot, v),
                    };
                    forms.push(self.key.encrypt_form(&w)?);
                }
            }
        }
        Ok(EncryptedSubscription { eq_positions, forms })
    }
}

/// Recomputes the filter positions for an item (key holder only).
fn probe_positions(key: &[u8], item: &[u8]) -> Vec<usize> {
    // Mirror BloomFilter::positions: HMAC -> (h1, h2) -> k positions.
    let digest = {
        let mut mac = scbr_crypto::hmac::HmacSha256::new(key);
        mac.update(item);
        mac.finalize()
    };
    let h1 = u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"));
    let h2 = u64::from_be_bytes(digest[8..16].try_into().expect("8 bytes"));
    (0..BLOOM_HASHES as u64)
        .map(|i| (h1.wrapping_add(i.wrapping_mul(h2)) % BLOOM_BITS as u64) as usize)
        .collect()
}

struct StoredSub {
    id: SubscriptionId,
    client: ClientId,
    sub: EncryptedSubscription,
    addr: u64,
    bytes: u64,
    alive: bool,
}

/// Counters proving the Bloom gate's effect on the matching hot path:
/// every live subscription is `checked` against the publication's Bloom
/// filter, gate failures are `skipped` before any matrix work, and only
/// survivors contribute to `forms_evaluated` (one O(d²) quadratic form
/// each). A healthy selective workload shows `skipped / checked` close
/// to 1 and `forms_evaluated` far below `checked × forms-per-sub`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BloomGateStats {
    /// Subscriptions that entered the Bloom gate.
    pub bloom_checked: u64,
    /// Subscriptions the gate rejected before form evaluation.
    pub bloom_skipped: u64,
    /// Quadratic forms actually evaluated (gate survivors only).
    pub forms_evaluated: u64,
}

impl BloomGateStats {
    /// Fraction of gate entrants rejected before any O(d²) work.
    pub fn skip_rate(&self) -> f64 {
        if self.bloom_checked == 0 {
            0.0
        } else {
            self.bloom_skipped as f64 / self.bloom_checked as f64
        }
    }

    /// Uniform counter export for the telemetry registry.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("bloom_checked", self.bloom_checked),
            ("bloom_skipped", self.bloom_skipped),
            ("forms_evaluated", self.forms_evaluated),
        ]
    }
}

/// The untrusted matcher: stores encrypted subscriptions and matches
/// encrypted publications, charging its work to a virtual clock.
pub struct AspeMatcher {
    mem: MemorySim,
    subs: Vec<StoredSub>,
    by_id: HashMap<SubscriptionId, usize>,
    dim: usize,
    live: usize,
    bloom_checked: AtomicU64,
    bloom_skipped: AtomicU64,
    forms_evaluated: AtomicU64,
    /// When set, each `match_publication_into` records its full
    /// gate-plus-forms duration into the latency histogram.
    telemetry: AtomicBool,
    /// Per-publication ASPE-gate latency (Bloom probes + surviving
    /// quadratic forms), virtual ns. Fixed-array histogram: recording
    /// never allocates.
    gate_hist: Mutex<LatencyHistogram>,
}

impl std::fmt::Debug for AspeMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AspeMatcher")
            .field("subscriptions", &self.live)
            .field("dim", &self.dim)
            .finish()
    }
}

impl AspeMatcher {
    /// Creates an empty matcher charging costs to `mem`.
    pub fn new(mem: &MemorySim) -> Self {
        AspeMatcher {
            mem: mem.clone(),
            subs: Vec::new(),
            by_id: HashMap::new(),
            dim: 0,
            live: 0,
            bloom_checked: AtomicU64::new(0),
            bloom_skipped: AtomicU64::new(0),
            forms_evaluated: AtomicU64::new(0),
            telemetry: AtomicBool::new(false),
            gate_hist: Mutex::new(LatencyHistogram::new()),
        }
    }

    /// Enables or disables per-publication gate latency recording.
    /// Timing reads the virtual clock without charging it, so matching
    /// results and simulated costs are unaffected.
    pub fn set_telemetry(&self, on: bool) {
        self.telemetry.store(on, Ordering::Relaxed);
    }

    /// Copies out the ASPE-gate latency histogram.
    pub fn gate_histogram(&self) -> LatencyHistogram {
        self.gate_hist.lock().expect("gate histogram lock").clone()
    }

    /// Stores an encrypted subscription.
    pub fn insert(&mut self, id: SubscriptionId, client: ClientId, sub: EncryptedSubscription) {
        self.dim = self.dim.max(sub.forms.first().map(|f| f.rows()).unwrap_or(0));
        let bytes = sub.logical_bytes(self.dim.max(1));
        let addr = self.mem.alloc(bytes);
        self.mem.touch_write(addr, bytes);
        self.by_id.insert(id, self.subs.len());
        self.subs.push(StoredSub { id, client, sub, addr, bytes, alive: true });
        self.live += 1;
    }

    /// Removes a subscription. Returns whether it existed.
    pub fn remove(&mut self, id: SubscriptionId) -> bool {
        match self.by_id.remove(&id) {
            Some(idx) => {
                debug_assert_eq!(self.subs[idx].id, id);
                self.subs[idx].alive = false;
                self.live -= 1;
                true
            }
            None => false,
        }
    }

    /// Number of live subscriptions.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no subscription is stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Simulated memory footprint in bytes.
    pub fn logical_bytes(&self) -> u64 {
        self.subs.iter().map(|s| s.bytes).sum()
    }

    /// Matches an encrypted publication, returning sorted, deduplicated
    /// clients. Allocating convenience wrapper around
    /// [`AspeMatcher::match_publication_into`].
    pub fn match_publication(&self, publication: &EncryptedPublication) -> Vec<ClientId> {
        let mut out = Vec::new();
        self.match_publication_into(publication, &mut out);
        out
    }

    /// Matches an encrypted publication into a caller-owned buffer
    /// (cleared first, then filled with sorted, deduplicated clients).
    ///
    /// The Bloom filter is a **mandatory gate**: every live subscription
    /// passes through it first, and the O(d²) quadratic forms only run on
    /// gate survivors. [`AspeMatcher::bloom_stats`] exposes counters
    /// proving the skip rate. With a warmed buffer the call performs no
    /// heap allocation.
    pub fn match_publication_into(
        &self,
        publication: &EncryptedPublication,
        out: &mut Vec<ClientId>,
    ) {
        out.clear();
        let t_start =
            if self.telemetry.load(Ordering::Relaxed) { Some(self.mem.elapsed_ns()) } else { None };
        let point_norm2: f64 = publication.point.iter().map(|v| v * v).sum();
        for stored in &self.subs {
            if !stored.alive {
                continue;
            }
            // Bloom gate: touch the subscription header + eq positions and
            // probe the publication's filter. Nothing below this block runs
            // unless every equality constraint survives.
            self.bloom_checked.fetch_add(1, Ordering::Relaxed);
            let eq_bytes =
                48 + stored.sub.eq_positions.iter().map(|p| p.len() as u64 * 4).sum::<u64>();
            self.mem.touch_read(stored.addr, eq_bytes.min(stored.bytes));
            let mut candidate = true;
            for positions in &stored.sub.eq_positions {
                // One hash-position probe per bit.
                self.mem.charge_predicate_evals(positions.len() as u64);
                if !positions.iter().all(|&b| bloom_bit(&publication.bloom, b)) {
                    candidate = false;
                    break;
                }
            }
            if !candidate {
                self.bloom_skipped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // Full evaluation: one quadratic form per range predicate.
            // Boundary values sit at exactly zero in plaintext; after the
            // matrix transform they accumulate rounding error, so accept
            // within a tolerance scaled by the operand magnitudes
            // (inclusive-endpoint semantics).
            let mut matched = true;
            for form in &stored.sub.forms {
                self.forms_evaluated.fetch_add(1, Ordering::Relaxed);
                let d = form.rows() as u64;
                self.mem.touch_read(stored.addr, (d * d * 8).min(stored.bytes));
                self.mem.charge_flops(d * d + d);
                let value = form
                    .quadratic_form(&publication.point)
                    .expect("authority produced consistent dimensions");
                let tolerance = 1e-10 * form.max_abs() * point_norm2.max(1.0);
                if value < -tolerance {
                    matched = false;
                    break;
                }
            }
            if matched {
                out.push(stored.client);
            }
        }
        out.sort_unstable_by_key(|c| c.0);
        out.dedup();
        if let Some(t_start) = t_start {
            let elapsed = (self.mem.elapsed_ns() - t_start).max(0.0) as u64;
            self.gate_hist.lock().expect("gate histogram lock").record(elapsed);
        }
    }

    /// Bloom-gate counters accumulated since creation (or the last
    /// [`AspeMatcher::reset_bloom_stats`]).
    pub fn bloom_stats(&self) -> BloomGateStats {
        BloomGateStats {
            bloom_checked: self.bloom_checked.load(Ordering::Relaxed),
            bloom_skipped: self.bloom_skipped.load(Ordering::Relaxed),
            forms_evaluated: self.forms_evaluated.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the Bloom-gate counters (between measurement phases).
    pub fn reset_bloom_stats(&self) {
        self.bloom_checked.store(0, Ordering::Relaxed);
        self.bloom_skipped.store(0, Ordering::Relaxed);
        self.forms_evaluated.store(0, Ordering::Relaxed);
    }

    /// The memory simulator charged by this matcher.
    pub fn memory(&self) -> &MemorySim {
        &self.mem
    }
}

/// Reads one bit of a Bloom filter (router-side primitive).
fn bloom_bit(filter: &BloomFilter, position: usize) -> bool {
    // The filter only exposes keyed queries; routers check raw positions.
    // Reconstruct via the public bit API.
    filter.bit(position)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::{CacheConfig, CostModel};

    fn free_mem() -> MemorySim {
        MemorySim::native(CacheConfig::default(), CostModel::free())
    }

    fn authority(rng: &mut CryptoRng) -> AspeAuthority {
        AspeAuthority::new(&["price", "volume"], &["symbol", "day"], rng)
    }

    #[test]
    fn range_matching_agrees_with_plaintext() {
        let mut rng = CryptoRng::from_seed(1);
        let auth = authority(&mut rng);
        let mem = free_mem();
        let mut matcher = AspeMatcher::new(&mem);
        let sub = SubscriptionSpec::new().between("price", 10.0, 20.0).ge("volume", 100i64);
        matcher.insert(
            SubscriptionId(1),
            ClientId(1),
            auth.encrypt_subscription(&sub, &mut rng).unwrap(),
        );
        let cases = [
            (15.0, 150i64, true),
            (15.0, 50, false),
            (25.0, 150, false),
            (5.0, 150, false),
            (10.0, 100, true), // inclusive endpoints
        ];
        for (price, volume, expected) in cases {
            let publication = PublicationSpec::new()
                .attr("symbol", "HAL")
                .attr("price", price)
                .attr("volume", volume);
            let enc = auth.encrypt_publication(&publication, &mut rng).unwrap();
            let got = !matcher.match_publication(&enc).is_empty();
            assert_eq!(got, expected, "price {price} volume {volume}");
        }
    }

    #[test]
    fn equality_prefilter_blocks_wrong_symbol() {
        let mut rng = CryptoRng::from_seed(2);
        let auth = authority(&mut rng);
        let mem = free_mem();
        let mut matcher = AspeMatcher::new(&mem);
        let sub = SubscriptionSpec::new().eq("symbol", "HAL").ge("price", 0.0);
        matcher.insert(
            SubscriptionId(1),
            ClientId(1),
            auth.encrypt_subscription(&sub, &mut rng).unwrap(),
        );
        let hal =
            PublicationSpec::new().attr("symbol", "HAL").attr("price", 10.0).attr("volume", 5i64);
        let ibm =
            PublicationSpec::new().attr("symbol", "IBM").attr("price", 10.0).attr("volume", 5i64);
        let enc_hal = auth.encrypt_publication(&hal, &mut rng).unwrap();
        let enc_ibm = auth.encrypt_publication(&ibm, &mut rng).unwrap();
        assert_eq!(matcher.match_publication(&enc_hal), vec![ClientId(1)]);
        assert!(matcher.match_publication(&enc_ibm).is_empty());
    }

    #[test]
    fn bloom_gate_skips_form_evaluation_and_counts_it() {
        let mut rng = CryptoRng::from_seed(9);
        let auth = authority(&mut rng);
        let mem = free_mem();
        let mut matcher = AspeMatcher::new(&mem);
        for i in 0..8u64 {
            let sub = SubscriptionSpec::new().eq("symbol", "HAL").ge("price", i as f64);
            matcher.insert(
                SubscriptionId(i),
                ClientId(i),
                auth.encrypt_subscription(&sub, &mut rng).unwrap(),
            );
        }
        let ibm =
            PublicationSpec::new().attr("symbol", "IBM").attr("price", 99.0).attr("volume", 1i64);
        let enc_ibm = auth.encrypt_publication(&ibm, &mut rng).unwrap();
        let mut out = Vec::new();
        matcher.match_publication_into(&enc_ibm, &mut out);
        assert!(out.is_empty());
        let after_miss = matcher.bloom_stats();
        assert_eq!(after_miss.bloom_checked, 8);
        assert_eq!(after_miss.bloom_skipped, 8, "gate rejects every wrong-symbol sub");
        assert_eq!(after_miss.forms_evaluated, 0, "no O(d²) work behind a failed gate");
        assert!((after_miss.skip_rate() - 1.0).abs() < f64::EPSILON);

        matcher.reset_bloom_stats();
        let hal =
            PublicationSpec::new().attr("symbol", "HAL").attr("price", 99.0).attr("volume", 1i64);
        let enc_hal = auth.encrypt_publication(&hal, &mut rng).unwrap();
        matcher.match_publication_into(&enc_hal, &mut out);
        assert_eq!(out.len(), 8, "buffer reuse: previous results fully replaced");
        let after_hit = matcher.bloom_stats();
        assert_eq!(after_hit.bloom_checked, 8);
        assert_eq!(after_hit.bloom_skipped, 0);
        assert_eq!(after_hit.forms_evaluated, 8, "one range form per surviving sub");
    }

    #[test]
    fn gate_telemetry_records_latency_without_changing_matches() {
        let mut rng = CryptoRng::from_seed(12);
        let auth = authority(&mut rng);
        let publication =
            PublicationSpec::new().attr("symbol", "HAL").attr("price", 5.0).attr("volume", 1i64);
        let enc = auth.encrypt_publication(&publication, &mut rng).unwrap();
        let sub = SubscriptionSpec::new().eq("symbol", "HAL").ge("price", 0.0);
        let enc_sub = auth.encrypt_subscription(&sub, &mut rng).unwrap();

        let run = |telemetry: bool| {
            let mem = MemorySim::native(CacheConfig::default(), CostModel::default());
            let mut matcher = AspeMatcher::new(&mem);
            matcher.set_telemetry(telemetry);
            matcher.insert(SubscriptionId(1), ClientId(1), enc_sub.clone());
            let clients = matcher.match_publication(&enc);
            (clients, mem.elapsed_ns(), matcher.gate_histogram())
        };
        let (plain_clients, plain_ns, plain_hist) = run(false);
        let (instr_clients, instr_ns, instr_hist) = run(true);
        assert_eq!(plain_clients, instr_clients);
        assert_eq!(plain_ns, instr_ns, "reading the clock must not charge it");
        assert_eq!(plain_hist.total(), 0);
        assert_eq!(instr_hist.total(), 1);
        assert!(instr_hist.max_ns() > 0);
    }

    #[test]
    fn numeric_equality_is_exact() {
        let mut rng = CryptoRng::from_seed(3);
        let auth = authority(&mut rng);
        let mem = free_mem();
        let mut matcher = AspeMatcher::new(&mem);
        // Equality on a numeric attribute outside the bloom schema becomes
        // a degenerate interval [v, v].
        let sub = SubscriptionSpec::new().eq("price", 12.5);
        matcher.insert(
            SubscriptionId(1),
            ClientId(1),
            auth.encrypt_subscription(&sub, &mut rng).unwrap(),
        );
        let mut make = |p: f64| {
            let publication =
                PublicationSpec::new().attr("symbol", "X").attr("price", p).attr("volume", 1i64);
            auth.encrypt_publication(&publication, &mut rng).unwrap()
        };
        let hit = make(12.5);
        let miss = make(12.6);
        assert_eq!(matcher.match_publication(&hit).len(), 1);
        assert!(matcher.match_publication(&miss).is_empty());
    }

    #[test]
    fn missing_schema_attribute_rejected() {
        let mut rng = CryptoRng::from_seed(4);
        let auth = authority(&mut rng);
        let incomplete = PublicationSpec::new().attr("price", 1.0); // no volume
        assert!(matches!(
            auth.encrypt_publication(&incomplete, &mut rng),
            Err(AspeError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn unknown_subscription_attribute_rejected() {
        let mut rng = CryptoRng::from_seed(5);
        let auth = authority(&mut rng);
        let sub = SubscriptionSpec::new().ge("mystery", 1.0);
        assert!(auth.encrypt_subscription(&sub, &mut rng).is_err());
        let s2 = SubscriptionSpec::new().eq("mystery", "str-value");
        assert!(auth.encrypt_subscription(&s2, &mut rng).is_err());
    }

    #[test]
    fn removal_works() {
        let mut rng = CryptoRng::from_seed(6);
        let auth = authority(&mut rng);
        let mem = free_mem();
        let mut matcher = AspeMatcher::new(&mem);
        let sub = SubscriptionSpec::new().ge("price", 0.0);
        matcher.insert(
            SubscriptionId(1),
            ClientId(1),
            auth.encrypt_subscription(&sub, &mut rng).unwrap(),
        );
        assert!(matcher.remove(SubscriptionId(1)));
        assert!(!matcher.remove(SubscriptionId(1)));
        let publication =
            PublicationSpec::new().attr("symbol", "A").attr("price", 10.0).attr("volume", 1i64);
        let enc = auth.encrypt_publication(&publication, &mut rng).unwrap();
        assert!(matcher.match_publication(&enc).is_empty());
        assert!(matcher.is_empty());
    }

    #[test]
    fn matching_charges_time_and_memory() {
        let mut rng = CryptoRng::from_seed(7);
        let auth = authority(&mut rng);
        let mem = MemorySim::native(CacheConfig::default(), CostModel::default());
        let mut matcher = AspeMatcher::new(&mem);
        for i in 0..100u64 {
            let sub = SubscriptionSpec::new().between("price", i as f64, (i + 10) as f64);
            matcher.insert(
                SubscriptionId(i),
                ClientId(i),
                auth.encrypt_subscription(&sub, &mut rng).unwrap(),
            );
        }
        let t0 = mem.elapsed_ns();
        let publication =
            PublicationSpec::new().attr("symbol", "A").attr("price", 50.0).attr("volume", 1i64);
        let enc = auth.encrypt_publication(&publication, &mut rng).unwrap();
        let clients = matcher.match_publication(&enc);
        assert!(!clients.is_empty());
        assert!(mem.elapsed_ns() > t0, "matching costs virtual time");
        assert!(matcher.logical_bytes() > 0);
    }

    #[test]
    fn ciphertexts_leak_no_plaintext() {
        let mut rng = CryptoRng::from_seed(8);
        let auth = authority(&mut rng);
        let publication = PublicationSpec::new()
            .attr("symbol", "HAL")
            .attr("price", 123.0)
            .attr("volume", 456i64);
        let enc = auth.encrypt_publication(&publication, &mut rng).unwrap();
        assert!(enc.point.iter().all(|&v| (v - 123.0).abs() > 0.5 && (v - 456.0).abs() > 0.5));
    }
}
