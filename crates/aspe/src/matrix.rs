//! Dense matrices over `f64`: the linear algebra ASPE needs.
//!
//! Row-major storage; exactly the operations required — multiplication,
//! transpose, LU inversion with partial pivoting, quadratic forms.

use crate::error::AspeError;
use scbr_crypto::rng::CryptoRng;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds from rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged or empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0 && rows.iter().all(|r| r.len() == cols), "ragged rows");
        Matrix { rows: rows.len(), cols, data: rows.concat() }
    }

    /// A random well-conditioned invertible matrix (random entries plus a
    /// dominant diagonal).
    pub fn random_invertible(n: usize, rng: &mut CryptoRng) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, rng.unit_f64() * 2.0 - 1.0);
            }
            // Diagonal dominance guarantees invertibility and conditioning.
            let row_sum: f64 = (0..n).map(|j| m.get(i, j).abs()).sum();
            m.set(i, i, m.get(i, i) + row_sum + 1.0);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at (r, c).
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element (r, c).
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// [`AspeError::DimensionMismatch`] when inner dimensions differ.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, AspeError> {
        if self.cols != other.rows {
            return Err(AspeError::DimensionMismatch { expected: self.cols, got: other.rows });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product.
    ///
    /// # Errors
    ///
    /// [`AspeError::DimensionMismatch`] when sizes differ.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, AspeError> {
        if self.cols != v.len() {
            return Err(AspeError::DimensionMismatch { expected: self.cols, got: v.len() });
        }
        let mut out = vec![0.0; self.rows];
        for (i, out_i) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &vj) in v.iter().enumerate() {
                acc += self.get(i, j) * vj;
            }
            *out_i = acc;
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Inverse via LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// [`AspeError::SingularMatrix`] for singular or non-square input.
    pub fn inverse(&self) -> Result<Matrix, AspeError> {
        if self.rows != self.cols {
            return Err(AspeError::SingularMatrix);
        }
        let n = self.rows;
        // Augment with the identity and run Gauss-Jordan with pivoting.
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Pivot: largest magnitude in this column at or below `col`.
            let mut pivot = col;
            for r in col + 1..n {
                if a.get(r, col).abs() > a.get(pivot, col).abs() {
                    pivot = r;
                }
            }
            let pv = a.get(pivot, col);
            if pv.abs() < 1e-12 {
                return Err(AspeError::SingularMatrix);
            }
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalise the pivot row.
            let scale = 1.0 / a.get(col, col);
            for j in 0..n {
                a.set(col, j, a.get(col, j) * scale);
                inv.set(col, j, inv.get(col, j) * scale);
            }
            // Eliminate the column elsewhere.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor == 0.0 {
                    continue;
                }
                for j in 0..n {
                    a.set(r, j, a.get(r, j) - factor * a.get(col, j));
                    inv.set(r, j, inv.get(r, j) - factor * inv.get(col, j));
                }
            }
        }
        Ok(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// Largest absolute entry (for numerical tolerance scaling).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Quadratic form `vᵀ · self · v`.
    ///
    /// # Errors
    ///
    /// [`AspeError::DimensionMismatch`] when sizes differ.
    pub fn quadratic_form(&self, v: &[f64]) -> Result<f64, AspeError> {
        let mv = self.mul_vec(v)?;
        Ok(dot(&mv, v))
    }
}

/// Dot product of equal-length slices.
///
/// # Panics
///
/// Panics when lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot of unequal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn identity_is_neutral() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.mul(&i).unwrap(), m);
        assert_eq!(i.mul(&m).unwrap(), m);
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.mul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.mul(&b), Err(AspeError::DimensionMismatch { .. })));
        assert!(a.mul_vec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn transpose_involutive() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn inverse_of_known_matrix() {
        let m = Matrix::from_rows(&[vec![4.0, 7.0], vec![2.0, 6.0]]);
        let inv = m.inverse().unwrap();
        let product = m.mul(&inv).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!(close(product.get(i, j), if i == j { 1.0 } else { 0.0 }));
            }
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(m.inverse(), Err(AspeError::SingularMatrix));
        assert!(Matrix::zeros(2, 3).inverse().is_err());
    }

    #[test]
    fn random_invertible_inverts() {
        let mut rng = CryptoRng::from_seed(5);
        for n in [2usize, 5, 12, 30] {
            let m = Matrix::random_invertible(n, &mut rng);
            let inv = m.inverse().unwrap();
            let p = m.mul(&inv).unwrap();
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        close(p.get(i, j), if i == j { 1.0 } else { 0.0 }),
                        "n={n} at ({i},{j}): {}",
                        p.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn quadratic_form_known() {
        // v^T W v with W = [[2,0],[0,3]] and v = (1,2) is 2 + 12 = 14.
        let w = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 3.0]]);
        assert!(close(w.quadratic_form(&[1.0, 2.0]).unwrap(), 14.0));
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}
