//! The core ASPE transformation: scalar-product/quadratic-form preserving
//! encryption with a secret invertible matrix.
//!
//! * Points: `p' = Mᵀ·(r·p̂)`, `r > 0` fresh per encryption.
//! * Quadratic forms: `W' = M⁻¹·W·M⁻ᵀ`.
//! * Invariant: `p'ᵀ·W'·p' = r²·(p̂ᵀ·W·p̂)` — same *sign*, scrambled
//!   magnitude, and `p'` reveals nothing about `p̂` without `M`.

use crate::error::AspeError;
use crate::matrix::Matrix;
use scbr_crypto::rng::CryptoRng;

/// The ASPE secret key: an invertible matrix and its precomputed helpers.
#[derive(Clone)]
pub struct AspeKey {
    dim: usize,
    m_t: Matrix,
    m_inv: Matrix,
    m_inv_t: Matrix,
}

impl std::fmt::Debug for AspeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The matrices *are* the secret; print only the dimension.
        f.debug_struct("AspeKey").field("dim", &self.dim).finish()
    }
}

impl AspeKey {
    /// Generates a key for `dim`-dimensional embeddings.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn generate(dim: usize, rng: &mut CryptoRng) -> Self {
        assert!(dim > 0, "dimension must be positive");
        let m = Matrix::random_invertible(dim, rng);
        let m_inv = m.inverse().expect("random_invertible is invertible");
        AspeKey { dim, m_t: m.transpose(), m_inv_t: m_inv.transpose(), m_inv }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encrypts a point with a fresh positive random scale.
    ///
    /// # Errors
    ///
    /// [`AspeError::DimensionMismatch`] when `point` has the wrong length.
    pub fn encrypt_point(&self, point: &[f64], rng: &mut CryptoRng) -> Result<Vec<f64>, AspeError> {
        if point.len() != self.dim {
            return Err(AspeError::DimensionMismatch { expected: self.dim, got: point.len() });
        }
        let r = 0.5 + rng.unit_f64(); // r in [0.5, 1.5): positive, masks magnitude
        let scaled: Vec<f64> = point.iter().map(|v| v * r).collect();
        self.m_t.mul_vec(&scaled)
    }

    /// Encrypts a quadratic-form matrix.
    ///
    /// # Errors
    ///
    /// [`AspeError::DimensionMismatch`] for wrongly sized forms.
    pub fn encrypt_form(&self, w: &Matrix) -> Result<Matrix, AspeError> {
        if w.rows() != self.dim || w.cols() != self.dim {
            return Err(AspeError::DimensionMismatch { expected: self.dim, got: w.rows() });
        }
        self.m_inv.mul(w)?.mul(&self.m_inv_t)
    }

    /// Evaluates an encrypted form on an encrypted point. This is the
    /// *untrusted* operation: it needs no key material.
    ///
    /// # Errors
    ///
    /// [`AspeError::DimensionMismatch`] on size mismatch.
    pub fn evaluate(encrypted_form: &Matrix, encrypted_point: &[f64]) -> Result<f64, AspeError> {
        encrypted_form.quadratic_form(encrypted_point)
    }
}

/// Builds the quadratic form testing `lo ≤ x` at `attr_slot` with the
/// constant 1 in `const_slot`: `(x − lo) ≥ 0` as `p̂ᵀ·W·p̂`.
pub fn form_ge(dim: usize, attr_slot: usize, const_slot: usize, lo: f64) -> Matrix {
    let mut w = Matrix::zeros(dim, dim);
    // x·1 terms, split symmetrically; constant term −lo·1².
    w.set(attr_slot, const_slot, 0.5);
    w.set(const_slot, attr_slot, 0.5);
    w.set(const_slot, const_slot, -lo);
    w
}

/// Quadratic form for `x ≤ hi`: `(hi − x) ≥ 0`.
pub fn form_le(dim: usize, attr_slot: usize, const_slot: usize, hi: f64) -> Matrix {
    let mut w = Matrix::zeros(dim, dim);
    w.set(attr_slot, const_slot, -0.5);
    w.set(const_slot, attr_slot, -0.5);
    w.set(const_slot, const_slot, hi);
    w
}

/// Quadratic form for `lo ≤ x ≤ hi`: `(x − lo)(hi − x) ≥ 0`.
pub fn form_between(dim: usize, attr_slot: usize, const_slot: usize, lo: f64, hi: f64) -> Matrix {
    // (x − lo)(hi − x) = −x² + (lo + hi)·x − lo·hi
    let mut w = Matrix::zeros(dim, dim);
    w.set(attr_slot, attr_slot, -1.0);
    w.set(attr_slot, const_slot, (lo + hi) / 2.0);
    w.set(const_slot, attr_slot, (lo + hi) / 2.0);
    w.set(const_slot, const_slot, -lo * hi);
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the plain embedding (value at slot 0, constant at slot 1,
    /// noise at slot 2).
    fn embed(x: f64, noise: f64) -> Vec<f64> {
        vec![x, 1.0, noise]
    }

    #[test]
    fn plain_forms_encode_comparisons() {
        let ge = form_ge(3, 0, 1, 10.0);
        assert!(ge.quadratic_form(&embed(11.0, 0.3)).unwrap() > 0.0);
        assert!(ge.quadratic_form(&embed(9.0, 0.3)).unwrap() < 0.0);
        let le = form_le(3, 0, 1, 10.0);
        assert!(le.quadratic_form(&embed(9.0, 0.7)).unwrap() > 0.0);
        assert!(le.quadratic_form(&embed(11.0, 0.7)).unwrap() < 0.0);
        let between = form_between(3, 0, 1, 5.0, 10.0);
        assert!(between.quadratic_form(&embed(7.0, 0.1)).unwrap() > 0.0);
        assert!(between.quadratic_form(&embed(4.0, 0.1)).unwrap() < 0.0);
        assert!(between.quadratic_form(&embed(11.0, 0.1)).unwrap() < 0.0);
    }

    #[test]
    fn encryption_preserves_signs() {
        let mut rng = CryptoRng::from_seed(1);
        let key = AspeKey::generate(3, &mut rng);
        let w = form_between(3, 0, 1, 5.0, 10.0);
        let w_enc = key.encrypt_form(&w).unwrap();
        for (x, expected_inside) in
            [(7.0, true), (5.5, true), (9.9, true), (4.0, false), (12.0, false), (-3.0, false)]
        {
            let p_enc = key.encrypt_point(&embed(x, rng.unit_f64()), &mut rng).unwrap();
            let val = AspeKey::evaluate(&w_enc, &p_enc).unwrap();
            assert_eq!(val > 0.0, expected_inside, "x = {x}, got {val}");
        }
    }

    #[test]
    fn ciphertexts_are_randomised() {
        let mut rng = CryptoRng::from_seed(2);
        let key = AspeKey::generate(3, &mut rng);
        let a = key.encrypt_point(&embed(7.0, 0.5), &mut rng).unwrap();
        let b = key.encrypt_point(&embed(7.0, 0.5), &mut rng).unwrap();
        assert_ne!(a, b, "fresh scaling per encryption");
    }

    #[test]
    fn ciphertext_hides_plaintext_slots() {
        // The encrypted vector should not contain the plaintext value in
        // any slot (matrix mixing).
        let mut rng = CryptoRng::from_seed(3);
        let key = AspeKey::generate(3, &mut rng);
        let p = key.encrypt_point(&embed(42.0, 0.9), &mut rng).unwrap();
        assert!(p.iter().all(|&v| (v - 42.0).abs() > 1.0));
    }

    #[test]
    fn wrong_dimension_rejected() {
        let mut rng = CryptoRng::from_seed(4);
        let key = AspeKey::generate(3, &mut rng);
        assert!(key.encrypt_point(&[1.0, 2.0], &mut rng).is_err());
        assert!(key.encrypt_form(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn different_keys_do_not_interoperate() {
        // Evaluating with a mismatched key pair gives garbage (sign no
        // longer reliable across many trials).
        let mut rng = CryptoRng::from_seed(5);
        let key_a = AspeKey::generate(3, &mut rng);
        let key_b = AspeKey::generate(3, &mut rng);
        let w_enc_b = key_b.encrypt_form(&form_ge(3, 0, 1, 0.0)).unwrap();
        let mut wrong = 0;
        for i in 0..50 {
            // x = i+1 is far above the bound 0; correct evaluation is
            // always positive.
            let p_enc_a =
                key_a.encrypt_point(&embed((i + 1) as f64, rng.unit_f64()), &mut rng).unwrap();
            if AspeKey::evaluate(&w_enc_b, &p_enc_a).unwrap() <= 0.0 {
                wrong += 1;
            }
        }
        assert!(wrong > 0, "cross-key evaluation must not be consistently correct");
    }
}
