//! Error type for ASPE operations.

use std::error::Error;
use std::fmt;

/// Errors raised by the ASPE baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AspeError {
    /// A matrix is singular (or numerically near-singular).
    SingularMatrix,
    /// Dimensions of operands do not agree.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        got: usize,
    },
    /// A subscription uses a feature ASPE cannot express.
    Unsupported {
        /// The unsupported construct.
        what: &'static str,
    },
    /// An attribute is not part of the scheme's fixed layout.
    UnknownAttribute {
        /// The attribute name.
        name: String,
    },
}

impl fmt::Display for AspeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AspeError::SingularMatrix => write!(f, "matrix is singular"),
            AspeError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            AspeError::Unsupported { what } => write!(f, "unsupported by aspe: {what}"),
            AspeError::UnknownAttribute { name } => write!(f, "unknown attribute {name:?}"),
        }
    }
}

impl Error for AspeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(AspeError::SingularMatrix.to_string().contains("singular"));
        assert!(AspeError::DimensionMismatch { expected: 3, got: 5 }.to_string().contains("3"));
        assert!(AspeError::UnknownAttribute { name: "x".into() }.to_string().contains("x"));
    }
}
