//! # scbr-aspe
//!
//! The software-only baseline the SCBR paper compares against: **ASPE**
//! (asymmetric scalar-product-preserving encryption, Choi, Ghinita &
//! Bertino, DEXA 2010) with the Bloom-filter equality prefilter of
//! Barazzutti et al. (DEBS 2012, "Thrifty Privacy").
//!
//! ## How it works
//!
//! Publication attributes are embedded in a vector `p̂` (one slot per
//! numeric attribute, one constant slot, one noise slot) and encrypted as
//! `p' = Mᵀ·(r·p̂)` with a secret invertible matrix `M` and a fresh random
//! `r > 0`. A range predicate `a ≤ x ≤ b` becomes the quadratic form
//! `(x−a)(b−x) ≥ 0`, encoded as a matrix `W` and encrypted as
//! `W' = M⁻¹·W·M⁻ᵀ`, so the router can evaluate
//! `p'ᵀ·W'·p' = r²·p̂ᵀ·W·p̂` and test its sign **without learning any
//! attribute value**. Equality constraints (e.g. on the stock symbol) use
//! keyed Bloom filters: the publication carries a small filter of its
//! equality-attribute values and subscriptions are prefiltered against it.
//!
//! ## Why it loses to SCBR
//!
//! Every remaining subscription must be evaluated — there is no
//! containment pruning on ciphertexts — and each predicate costs a `D²`
//! quadratic form where `D` grows with the number of attributes, which is
//! exactly the super-linear growth (and the order-of-magnitude gap) the
//! paper's Figure 7 shows. The matcher here charges those costs to the
//! same virtual clock as the SCBR engine so the comparison is apples to
//! apples.
//!
//! ```
//! use scbr_aspe::{AspeAuthority, AspeMatcher};
//! use scbr::subscription::SubscriptionSpec;
//! use scbr::publication::PublicationSpec;
//! use scbr::ids::{ClientId, SubscriptionId};
//! use scbr_crypto::CryptoRng;
//! use sgx_sim::MemorySim;
//!
//! let mut rng = CryptoRng::from_seed(1);
//! let authority = AspeAuthority::new(&["price"], &["symbol"], &mut rng);
//! let mem = MemorySim::native_default();
//! let mut matcher = AspeMatcher::new(&mem);
//!
//! let sub = SubscriptionSpec::new().eq("symbol", "HAL").between("price", 10.0, 20.0);
//! matcher.insert(SubscriptionId(1), ClientId(9), authority.encrypt_subscription(&sub, &mut rng)?);
//!
//! let hit = PublicationSpec::new().attr("symbol", "HAL").attr("price", 15.0);
//! let clients = matcher.match_publication(&authority.encrypt_publication(&hit, &mut rng)?);
//! assert_eq!(clients, vec![ClientId(9)]);
//! # Ok::<(), scbr_aspe::AspeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod error;
pub mod matcher;
pub mod matrix;
pub mod scheme;

pub use bloom::BloomFilter;
pub use error::AspeError;
pub use matcher::{AspeAuthority, AspeMatcher, EncryptedPublication, EncryptedSubscription};
pub use matrix::Matrix;
pub use scheme::AspeKey;
