//! Property-based tests of the ASPE baseline: encrypted matching must
//! agree with plaintext evaluation (no false negatives; false positives
//! only from Bloom collisions, which the sizing makes negligible at test
//! scale).

use proptest::prelude::*;
use scbr::attr::AttrSchema;
use scbr::ids::{ClientId, SubscriptionId};
use scbr::publication::PublicationSpec;
use scbr::subscription::SubscriptionSpec;
use scbr_aspe::{AspeAuthority, AspeMatcher};
use scbr_crypto::rng::CryptoRng;
use sgx_sim::{CacheConfig, CostModel, MemorySim};

const SYMBOLS: [&str; 4] = ["HAL", "IBM", "AMD", "NVDA"];

#[derive(Debug, Clone)]
struct Scenario {
    /// (symbol index or none, lo, width) per subscription.
    subs: Vec<(Option<usize>, f64, f64)>,
    /// (symbol index, price) per publication.
    pubs: Vec<(usize, f64)>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        proptest::collection::vec(
            (proptest::option::of(0usize..4), 0.0f64..100.0, 0.5f64..40.0),
            1..20,
        ),
        proptest::collection::vec((0usize..4, -10.0f64..150.0), 1..10),
    )
        .prop_map(|(subs, pubs)| Scenario { subs, pubs })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn encrypted_matching_agrees_with_plaintext(s in scenario()) {
        let mut rng = CryptoRng::from_seed(7);
        let authority = AspeAuthority::new(&["price"], &["symbol"], &mut rng);
        let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
        let mut matcher = AspeMatcher::new(&mem);
        let schema = AttrSchema::new();

        let mut plain_subs = Vec::new();
        for (i, (sym, lo, width)) in s.subs.iter().enumerate() {
            let mut spec = SubscriptionSpec::new().between("price", *lo, lo + width);
            if let Some(sym) = sym {
                spec = spec.eq("symbol", SYMBOLS[*sym]);
            }
            let enc = authority.encrypt_subscription(&spec, &mut rng).unwrap();
            matcher.insert(SubscriptionId(i as u64), ClientId(i as u64), enc);
            plain_subs.push(spec.compile(&schema).unwrap());
        }

        for (sym, price) in &s.pubs {
            // Skip values within float-tolerance distance of any interval
            // endpoint: the encrypted evaluation deliberately treats the
            // boundary band as inclusive.
            let near_boundary = s.subs.iter().any(|(_, lo, width)| {
                (price - lo).abs() < 1e-6 || (price - (lo + width)).abs() < 1e-6
            });
            if near_boundary {
                continue;
            }
            let publication = PublicationSpec::new()
                .attr("symbol", SYMBOLS[*sym])
                .attr("price", *price);
            let enc = authority.encrypt_publication(&publication, &mut rng).unwrap();
            let mut got: Vec<u64> =
                matcher.match_publication(&enc).into_iter().map(|c| c.0).collect();
            got.sort_unstable();
            let header = publication.compile_header(&schema).unwrap();
            let mut expected: Vec<u64> = plain_subs
                .iter()
                .enumerate()
                .filter(|(_, sub)| sub.matches(&header))
                .map(|(i, _)| i as u64)
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(got, expected, "symbol {} price {}", SYMBOLS[*sym], price);
        }
    }

    /// Bloom-gate soundness: the mandatory pre-filter may only ever skip
    /// subscriptions that genuinely do not match — every plaintext match
    /// survives the gate, and the counters tile exactly (every checked
    /// subscription is either skipped or form-evaluated).
    #[test]
    fn bloom_gate_never_drops_a_true_match(s in scenario()) {
        let mut rng = CryptoRng::from_seed(13);
        let authority = AspeAuthority::new(&["price"], &["symbol"], &mut rng);
        let mem = MemorySim::native(CacheConfig::default(), CostModel::free());
        let mut matcher = AspeMatcher::new(&mem);
        let schema = AttrSchema::new();

        let mut plain_subs = Vec::new();
        for (i, (sym, lo, width)) in s.subs.iter().enumerate() {
            let mut spec = SubscriptionSpec::new().between("price", *lo, lo + width);
            if let Some(sym) = sym {
                spec = spec.eq("symbol", SYMBOLS[*sym]);
            }
            let enc = authority.encrypt_subscription(&spec, &mut rng).unwrap();
            matcher.insert(SubscriptionId(i as u64), ClientId(i as u64), enc);
            plain_subs.push(spec.compile(&schema).unwrap());
        }

        matcher.reset_bloom_stats();
        let mut pubs_run = 0u64;
        for (sym, price) in &s.pubs {
            let publication = PublicationSpec::new()
                .attr("symbol", SYMBOLS[*sym])
                .attr("price", *price);
            let enc = authority.encrypt_publication(&publication, &mut rng).unwrap();
            let got: std::collections::HashSet<u64> =
                matcher.match_publication(&enc).into_iter().map(|c| c.0).collect();
            pubs_run += 1;
            let header = publication.compile_header(&schema).unwrap();
            for (i, sub) in plain_subs.iter().enumerate() {
                if sub.matches(&header) {
                    prop_assert!(
                        got.contains(&(i as u64)),
                        "gate dropped true match: sub {i} on {} {}", SYMBOLS[*sym], price
                    );
                }
            }
        }
        let stats = matcher.bloom_stats();
        prop_assert_eq!(stats.bloom_checked, pubs_run * plain_subs.len() as u64);
        // Every gate survivor evaluates between one (short-circuit on a
        // failing form) and two (the `between` pair) quadratic forms;
        // skipped subscriptions evaluate none.
        let survivors = stats.bloom_checked - stats.bloom_skipped;
        prop_assert!(stats.forms_evaluated >= survivors, "{stats:?}");
        prop_assert!(stats.forms_evaluated <= 2 * survivors, "{stats:?}");
    }

    /// Point encryption never leaks the raw value in any coordinate.
    #[test]
    fn ciphertext_conceals_values(price in 1.0f64..1e6) {
        let mut rng = CryptoRng::from_seed(9);
        let authority = AspeAuthority::new(&["price"], &["symbol"], &mut rng);
        let publication = PublicationSpec::new().attr("symbol", "HAL").attr("price", price);
        let enc = authority.encrypt_publication(&publication, &mut rng).unwrap();
        prop_assert!(enc.point.iter().all(|&v| (v - price).abs() > price * 1e-6));
    }
}
