//! The `scbr-lint` CLI.
//!
//! ```text
//! scbr-lint [--root DIR] [--json PATH] [--deny] [--update-boundary]
//!           [--boundary PATH]
//! ```
//!
//! * default: lint the tree, print findings, exit 0.
//! * `--deny`: exit 2 when any unsuppressed finding remains (CI mode).
//! * `--json PATH`: additionally write the `LINT_REPORT.json` document.
//! * `--update-boundary`: rewrite `BOUNDARY.lock` from the observed
//!   ecall/ocall surface instead of checking against it.
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use scbr_lint::{lint_tree, render_lock, report, LintConfig};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    let mut deny = false;
    let mut update_boundary = false;
    let mut boundary: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(args.next().unwrap_or_else(|| usage("--root DIR"))),
            "--json" => {
                json = Some(PathBuf::from(args.next().unwrap_or_else(|| usage("--json PATH"))))
            }
            "--deny" => deny = true,
            "--update-boundary" => update_boundary = true,
            "--boundary" => {
                boundary =
                    Some(PathBuf::from(args.next().unwrap_or_else(|| usage("--boundary PATH"))))
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
    }

    let cfg = LintConfig::default();
    let lock_path = boundary.unwrap_or_else(|| root.join("BOUNDARY.lock"));
    let report_data = lint_tree(&root, &cfg, Some(&lock_path));

    if update_boundary {
        let rendered = render_lock(&report_data.surface);
        if let Err(e) = std::fs::write(&lock_path, rendered) {
            eprintln!("scbr-lint: cannot write {}: {e}", lock_path.display());
            return ExitCode::from(3);
        }
        println!(
            "scbr-lint: wrote {} ({} boundary row(s))",
            lock_path.display(),
            report_data.surface.len()
        );
        // Re-lint so the printed verdict reflects the fresh lock.
        let refreshed = lint_tree(&root, &cfg, Some(&lock_path));
        return finish(refreshed, json, deny);
    }

    finish(report_data, json, deny)
}

fn finish(report_data: scbr_lint::TreeReport, json: Option<PathBuf>, deny: bool) -> ExitCode {
    print!("{}", report::to_human(&report_data));
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, report::to_json(&report_data)) {
            eprintln!("scbr-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(3);
        }
    }
    if deny && !report_data.findings.is_empty() {
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

fn usage(context: &str) -> ! {
    eprintln!(
        "scbr-lint: {context}\nusage: scbr-lint [--root DIR] [--json PATH] [--deny] \
         [--update-boundary] [--boundary PATH]"
    );
    std::process::exit(3)
}
