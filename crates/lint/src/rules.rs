//! The rule catalogue: each rule turns one repo invariant that used to be
//! enforced dynamically (or by convention) into a build-time check.
//!
//! | Code | Invariant |
//! |------|-----------|
//! | SL01 | Enclave-side code never reads the wall clock (`Instant::now`, `SystemTime`) — the virtual-clock discipline telemetry depends on. |
//! | SL02 | Types carrying key/plaintext material neither derive `Debug` nor implement `Display` (a log-leak channel); a *manual* `Debug` impl is the reviewed redaction pattern. |
//! | SL03 | The declared zero-allocation hot-path functions contain no allocating constructs — the static twin of the counting-allocator proof. |
//! | SL04 | Every `u64` field of a struct exporting `snapshot() -> Vec<(&'static str, u64)>` appears as a key in that snapshot (no counter drift toward dashboards). |
//! | SL05 | The ecall/ocall-crossing surface matches the checked-in `BOUNDARY.lock` manifest (handled tree-wide in [`crate::lint_tree`]). |
//! | SL06 | Every crate root retains `#![forbid(unsafe_code)]`, and `unsafe` appears nowhere outside the allowlisted, `// SAFETY:`-documented files. |

use crate::lexer::{Lexed, Tok};
use crate::parser::FileModel;
use crate::{Finding, LintConfig, SurfaceSite};

/// Stable rule codes, in catalogue order.
pub const RULE_CODES: [&str; 6] = ["SL01", "SL02", "SL03", "SL04", "SL05", "SL06"];

/// Allocating constructs banned on the zero-alloc hot path. Method calls
/// are matched as `.name(`, macro names as `name!`, and associated
/// functions as `Type::name`.
const SL03_METHODS: [&str; 5] = ["to_vec", "clone", "collect", "to_owned", "to_string"];
const SL03_MACROS: [&str; 2] = ["vec", "format"];
const SL03_ASSOC: [(&str, &str); 5] = [
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
];

/// The snapshot signature SL04 keys on, whitespace-normalized.
const SNAPSHOT_RET: &str = "Vec<(&'staticstr,u64)>";

/// Name fragments marking a type as secret-bearing for SL02, minus the
/// exclusions that mark *non*-secret material (`RsaPublicKey` is meant to
/// travel; `KeyEpoch` is a counter, not a key).
const SECRET_FRAGMENTS: [&str; 3] = ["Key", "Secret", "Plaintext"];
const SECRET_EXCLUSIONS: [&str; 2] = ["Public", "Epoch"];

fn is_secret_name(name: &str) -> bool {
    SECRET_FRAGMENTS.iter().any(|f| name.contains(f))
        && !SECRET_EXCLUSIONS.iter().any(|e| name.contains(e))
}

/// Runs every per-file rule, returning raw (unsuppressed) findings and the
/// file's contribution to the boundary surface.
pub fn check_file(
    rel: &str,
    lexed: &Lexed,
    model: &FileModel,
    cfg: &LintConfig,
    crate_root: bool,
) -> (Vec<Finding>, Vec<SurfaceSite>) {
    let mut findings = Vec::new();
    sl01_no_wallclock(rel, lexed, cfg, &mut findings);
    sl02_secret_no_debug(rel, model, &mut findings);
    sl03_hot_path_no_alloc(rel, lexed, model, cfg, &mut findings);
    sl04_snapshot_drift(rel, lexed, model, &mut findings);
    sl06_forbid_unsafe(rel, lexed, model, cfg, crate_root, &mut findings);
    let surface = sl05_surface(rel, lexed, model, cfg);
    (findings, surface)
}

/// SL01: wall-clock reads in enclave-side modules.
fn sl01_no_wallclock(rel: &str, lexed: &Lexed, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !cfg.sl01_scope.iter().any(|p| rel.starts_with(p.as_str())) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        let hit = match name.as_str() {
            "Instant" => {
                matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                    && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
                    && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Ident(n)) if n == "now")
            }
            "SystemTime" => true,
            _ => false,
        };
        if hit {
            out.push(Finding::new(
                "SL01",
                rel,
                t.line,
                format!(
                    "wall-clock read `{}` in enclave-side module — route timing through the \
                     virtual clock (`MemorySim` elapsed_ns) or justify host-side placement",
                    if name == "Instant" { "Instant::now" } else { "SystemTime" }
                ),
            ));
        }
    }
}

/// SL02: secret-bearing types must not derive `Debug` or impl `Display`.
fn sl02_secret_no_debug(rel: &str, model: &FileModel, out: &mut Vec<Finding>) {
    for ty in &model.types {
        if !is_secret_name(&ty.name) {
            continue;
        }
        for derived in &ty.derives {
            if derived == "Debug" || derived == "Display" {
                out.push(Finding::new(
                    "SL02",
                    rel,
                    ty.line,
                    format!(
                        "secret-bearing type `{}` derives `{derived}` — derived formatting \
                         prints key material into logs; write a redacting manual impl instead",
                        ty.name
                    ),
                ));
            }
        }
    }
    for im in &model.impls {
        if im.trait_name.as_deref() == Some("Display") && is_secret_name(&im.self_ty) {
            out.push(Finding::new(
                "SL02",
                rel,
                im.line,
                format!(
                    "secret-bearing type `{}` implements `Display` — user-facing formatting \
                     of key material is a log-leak channel",
                    im.self_ty
                ),
            ));
        }
    }
}

/// SL03: allocating constructs inside the declared zero-alloc fn set.
fn sl03_hot_path_no_alloc(
    rel: &str,
    lexed: &Lexed,
    model: &FileModel,
    cfg: &LintConfig,
    out: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    for f in &model.fns {
        if !cfg.sl03_fns.iter().any(|n| n == &f.name) {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        for i in start..=end.min(toks.len().saturating_sub(1)) {
            let Tok::Ident(name) = &toks[i].tok else { continue };
            let next_punct = |k: usize| match toks.get(k).map(|t| &t.tok) {
                Some(Tok::Punct(c)) => Some(*c),
                _ => None,
            };
            let construct =
                if SL03_MACROS.contains(&name.as_str()) && next_punct(i + 1) == Some('!') {
                    Some(format!("{name}!"))
                } else if SL03_METHODS.contains(&name.as_str())
                    && i > 0
                    && next_punct(i - 1) == Some('.')
                    && (next_punct(i + 1) == Some('(') || next_punct(i + 1) == Some(':'))
                {
                    Some(format!(".{name}()"))
                } else if next_punct(i + 1) == Some(':') && next_punct(i + 2) == Some(':') {
                    match toks.get(i + 3).map(|t| &t.tok) {
                        Some(Tok::Ident(assoc))
                            if SL03_ASSOC.contains(&(name.as_str(), assoc.as_str())) =>
                        {
                            Some(format!("{name}::{assoc}"))
                        }
                        _ => None,
                    }
                } else {
                    None
                };
            if let Some(construct) = construct {
                out.push(Finding::new(
                    "SL03",
                    rel,
                    toks[i].line,
                    format!(
                        "allocating construct `{construct}` in zero-alloc hot-path fn \
                         `{}` — reuse a caller-owned buffer or justify the allocation",
                        f.qualified
                    ),
                ));
            }
        }
    }
}

/// SL04: every `u64` field of a snapshot-exporting struct must appear as a
/// key literal in its `snapshot()` body.
fn sl04_snapshot_drift(rel: &str, lexed: &Lexed, model: &FileModel, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for f in &model.fns {
        if f.name != "snapshot" || f.ret != SNAPSHOT_RET {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        let Some(owner) = f.qualified.split("::").next().filter(|o| *o != f.name) else {
            continue;
        };
        let Some(def) = model.types.iter().find(|t| t.name == owner) else {
            continue;
        };
        let keys: Vec<&str> = toks[start..=end.min(toks.len() - 1)]
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        for field in &def.fields {
            if field.ty != "u64" && field.ty != "Option<u64>" {
                continue;
            }
            if !keys.contains(&field.name.as_str()) {
                out.push(Finding::new(
                    "SL04",
                    rel,
                    field.line,
                    format!(
                        "counter `{owner}.{}` is not exported by `{owner}::snapshot()` — \
                         registry dashboards would silently lose it (export it, or rename \
                         the field to match its key)",
                        field.name
                    ),
                ));
            }
        }
    }
}

/// SL05 (collection half): `.ecall(` / `.ocall(` call sites with their
/// enclosing function — the boundary-crossing surface.
fn sl05_surface(rel: &str, lexed: &Lexed, model: &FileModel, cfg: &LintConfig) -> Vec<SurfaceSite> {
    if cfg.boundary_exclude.iter().any(|p| rel.starts_with(p.as_str())) {
        return Vec::new();
    }
    let toks = &lexed.tokens;
    let mut sites = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        if name != "ecall" && name != "ocall" {
            continue;
        }
        let dotted = i > 0 && matches!(toks[i - 1].tok, Tok::Punct('.'));
        let called = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')));
        if dotted && called {
            let enclosing = model
                .enclosing_fn(i)
                .map(|f| f.qualified.clone())
                .unwrap_or_else(|| "<module>".to_string());
            sites.push(SurfaceSite {
                path: rel.to_string(),
                function: enclosing,
                kind: name.clone(),
                line: t.line,
            });
        }
    }
    sites
}

/// SL06: `#![forbid(unsafe_code)]` on crate roots, no `unsafe` anywhere
/// outside the allowlist (which in turn must carry `// SAFETY:` docs).
fn sl06_forbid_unsafe(
    rel: &str,
    lexed: &Lexed,
    model: &FileModel,
    cfg: &LintConfig,
    crate_root: bool,
    out: &mut Vec<Finding>,
) {
    if crate_root && !model.has_forbid_unsafe {
        out.push(Finding::new(
            "SL06",
            rel,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
    let allowlisted = cfg.sl06_unsafe_allow.iter().any(|p| p == rel);
    let documented = lexed.comments.iter().any(|c| c.text.contains("SAFETY:"));
    for t in &lexed.tokens {
        if matches!(&t.tok, Tok::Ident(name) if name == "unsafe") {
            if allowlisted && documented {
                continue;
            }
            let message = if allowlisted {
                "allowlisted `unsafe` file has no `// SAFETY:` comment documenting it"
            } else {
                "`unsafe` outside the allowlisted counting-allocator test — the workspace \
                 is forbid(unsafe_code) by policy"
            };
            out.push(Finding::new("SL06", rel, t.line, message.to_string()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secret_name_heuristic() {
        for name in ["AspeKey", "SymmetricKey", "RsaKeyPair", "GroupKeyStore", "PlaintextFrame"] {
            assert!(is_secret_name(name), "{name} should be secret-bearing");
        }
        for name in ["RsaPublicKey", "KeyEpoch", "BrokerStats", "Message"] {
            assert!(!is_secret_name(name), "{name} should not be secret-bearing");
        }
    }
}
