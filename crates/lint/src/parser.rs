//! A lightweight item-level parser over the token stream.
//!
//! This is not a Rust grammar: it recovers exactly the structure the rules
//! need — function signatures and body extents (with their enclosing
//! `impl` type), struct definitions with derive lists and field types,
//! `impl Trait for Type` headers, and the crate-root
//! `#![forbid(unsafe_code)]` attribute. Everything else passes through as
//! anonymous tokens. Brace depth is tracked globally, so expression braces
//! (struct literals, match arms) nest correctly around item extents.

use crate::lexer::{Lexed, Tok, Token};

/// A function item: free or associated, with its body's token extent.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The bare function name.
    pub name: String,
    /// `Type::name` when defined inside an `impl Type` block.
    pub qualified: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Line where the item's leading attributes start (== `line` without
    /// attributes) — the anchor for item-level suppression comments.
    pub decl_line: u32,
    /// The return type, whitespace-normalized (empty for `()`).
    pub ret: String,
    /// Token index range `[start, end]` of the body braces, when present.
    pub body: Option<(usize, usize)>,
    /// Line of the body's closing brace (== `line` for bodyless decls).
    pub end_line: u32,
}

/// One named field of a struct.
#[derive(Debug, Clone)]
pub struct Field {
    pub name: String,
    /// Whitespace-normalized type text (`u64`, `Option<u64>`, …).
    pub ty: String,
    pub line: u32,
}

/// A `struct`/`enum`/`union` definition.
#[derive(Debug, Clone)]
pub struct TypeDef {
    pub name: String,
    pub line: u32,
    /// See [`FnItem::decl_line`].
    pub decl_line: u32,
    pub end_line: u32,
    /// Traits named in `#[derive(...)]` attributes on this item.
    pub derives: Vec<String>,
    /// Named fields (empty for enums, tuple and unit structs).
    pub fields: Vec<Field>,
}

/// An `impl` header.
#[derive(Debug, Clone)]
pub struct ImplDef {
    /// The self type's final path-segment name.
    pub self_ty: String,
    /// The implemented trait's final path-segment name, if any.
    pub trait_name: Option<String>,
    pub line: u32,
}

/// Everything the parser recovered from one file.
#[derive(Debug, Default)]
pub struct FileModel {
    pub fns: Vec<FnItem>,
    pub types: Vec<TypeDef>,
    pub impls: Vec<ImplDef>,
    /// The file carries `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
}

impl FileModel {
    /// The innermost function whose body contains token index `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| s <= idx && idx <= e))
            .min_by_key(|f| f.body.map(|(s, e)| e - s).unwrap_or(usize::MAX))
    }
}

/// Parses a lexed file into its item model.
pub fn parse(lexed: &Lexed) -> FileModel {
    Parser {
        toks: &lexed.tokens,
        i: 0,
        depth: 0,
        model: FileModel::default(),
        impl_stack: Vec::new(),
        open_fns: Vec::new(),
        pending_derives: Vec::new(),
        pending_attr_line: None,
    }
    .run()
}

struct OpenFn {
    index: usize,
    open_depth: u32,
}

struct OpenImpl {
    self_ty: String,
    open_depth: u32,
}

struct Parser<'a> {
    toks: &'a [Token],
    i: usize,
    depth: u32,
    model: FileModel,
    impl_stack: Vec<OpenImpl>,
    open_fns: Vec<OpenFn>,
    pending_derives: Vec<String>,
    pending_attr_line: Option<u32>,
}

impl Parser<'_> {
    fn run(mut self) -> FileModel {
        while self.i < self.toks.len() {
            let line = self.toks[self.i].line;
            match &self.toks[self.i].tok {
                Tok::Punct('#') => self.attribute(),
                Tok::Punct('{') => {
                    self.depth += 1;
                    self.i += 1;
                }
                Tok::Punct('}') => {
                    while self.open_fns.last().is_some_and(|f| f.open_depth == self.depth) {
                        let f = self.open_fns.pop().expect("checked non-empty");
                        let item = &mut self.model.fns[f.index];
                        item.body = item.body.map(|(s, _)| (s, self.i));
                        item.end_line = line;
                    }
                    while self.impl_stack.last().is_some_and(|im| im.open_depth == self.depth) {
                        self.impl_stack.pop();
                    }
                    self.depth = self.depth.saturating_sub(1);
                    self.i += 1;
                }
                Tok::Ident(kw) if kw == "struct" || kw == "enum" || kw == "union" => {
                    let is_struct = kw == "struct";
                    self.type_def(is_struct, line);
                }
                Tok::Ident(kw) if kw == "impl" => self.impl_header(line),
                Tok::Ident(kw) if kw == "fn" && self.is_ident(self.i + 1) => self.fn_item(line),
                _ => self.i += 1,
            }
        }
        self.model
    }

    fn is_ident(&self, idx: usize) -> bool {
        matches!(self.toks.get(idx).map(|t| &t.tok), Some(Tok::Ident(_)))
    }

    fn ident_at(&self, idx: usize) -> Option<&str> {
        match self.toks.get(idx).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct_at(&self, idx: usize) -> Option<char> {
        match self.toks.get(idx).map(|t| &t.tok) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    /// `#[...]` / `#![...]`: records derives and `forbid(unsafe_code)`,
    /// then skips to the closing bracket.
    fn attribute(&mut self) {
        let line = self.toks[self.i].line;
        let mut j = self.i + 1;
        let inner_attr = self.punct_at(j) == Some('!');
        if inner_attr {
            j += 1;
        }
        if self.punct_at(j) != Some('[') {
            self.i += 1;
            return;
        }
        let start = j + 1;
        let mut bracket = 1u32;
        j += 1;
        while j < self.toks.len() && bracket > 0 {
            match self.punct_at(j) {
                Some('[') => bracket += 1,
                Some(']') => bracket -= 1,
                _ => {}
            }
            j += 1;
        }
        let inner: Vec<String> =
            (start..j - 1).filter_map(|k| self.ident_at(k).map(str::to_string)).collect();
        if inner.first().map(String::as_str) == Some("derive") {
            self.pending_derives.extend(inner.iter().skip(1).cloned());
        }
        if inner.iter().any(|s| s == "forbid") && inner.iter().any(|s| s == "unsafe_code") {
            self.model.has_forbid_unsafe = true;
        }
        if !inner_attr {
            self.pending_attr_line.get_or_insert(line);
        }
        self.i = j;
    }

    /// Skips a balanced `<...>` group starting at `self.i` (which must be
    /// `<`), tolerating `->` arrows inside bounds.
    fn skip_generics(&mut self) {
        let mut angle = 0i32;
        while self.i < self.toks.len() {
            match self.punct_at(self.i) {
                Some('<') => angle += 1,
                // `->` is an arrow, not a closing angle.
                Some('>') if self.punct_at(self.i.wrapping_sub(1)) != Some('-') => angle -= 1,
                _ => {}
            }
            self.i += 1;
            if angle == 0 {
                break;
            }
        }
    }

    fn type_def(&mut self, is_struct: bool, line: u32) {
        self.i += 1; // the keyword
        let Some(name) = self.ident_at(self.i).map(str::to_string) else {
            return;
        };
        self.i += 1;
        let derives = std::mem::take(&mut self.pending_derives);
        let decl_line = self.pending_attr_line.take().unwrap_or(line);
        if self.punct_at(self.i) == Some('<') {
            self.skip_generics();
        }
        // Optional where clause tokens pass until the body/terminator.
        let mut fields = Vec::new();
        let mut end_line = line;
        while self.i < self.toks.len() {
            match self.punct_at(self.i) {
                Some(';') => {
                    end_line = self.toks[self.i].line;
                    self.i += 1;
                    break;
                }
                Some('(') => {
                    // Tuple struct: skip the parenthesized fields.
                    let mut paren = 0i32;
                    while self.i < self.toks.len() {
                        match self.punct_at(self.i) {
                            Some('(') => paren += 1,
                            Some(')') => paren -= 1,
                            _ => {}
                        }
                        self.i += 1;
                        if paren == 0 {
                            break;
                        }
                    }
                }
                Some('{') => {
                    end_line =
                        if is_struct { self.struct_body(&mut fields) } else { self.skip_braced() };
                    break;
                }
                _ => self.i += 1,
            }
        }
        self.model.types.push(TypeDef { name, line, decl_line, end_line, derives, fields });
    }

    /// Skips a balanced `{...}` starting at `self.i`; returns the closing
    /// brace's line.
    fn skip_braced(&mut self) -> u32 {
        let mut brace = 0i32;
        let mut end_line = self.toks[self.i].line;
        while self.i < self.toks.len() {
            match self.punct_at(self.i) {
                Some('{') => brace += 1,
                Some('}') => {
                    brace -= 1;
                    if brace == 0 {
                        end_line = self.toks[self.i].line;
                        self.i += 1;
                        break;
                    }
                }
                _ => {}
            }
            self.i += 1;
        }
        end_line
    }

    /// Parses `{ field: Type, ... }` (attributes and visibility skipped);
    /// `self.i` is at the opening brace. Returns the closing brace's line.
    fn struct_body(&mut self, fields: &mut Vec<Field>) -> u32 {
        self.i += 1; // opening brace
        loop {
            // Skip field attributes.
            while self.punct_at(self.i) == Some('#') {
                self.attribute();
                self.pending_attr_line = None;
            }
            if self.punct_at(self.i) == Some('}') {
                let end = self.toks[self.i].line;
                self.i += 1;
                return end;
            }
            if self.i >= self.toks.len() {
                return self.toks.last().map(|t| t.line).unwrap_or(0);
            }
            // Visibility.
            if self.ident_at(self.i) == Some("pub") {
                self.i += 1;
                if self.punct_at(self.i) == Some('(') {
                    while self.i < self.toks.len() && self.punct_at(self.i) != Some(')') {
                        self.i += 1;
                    }
                    self.i += 1;
                }
            }
            let Some(name) = self.ident_at(self.i).map(str::to_string) else {
                self.i += 1;
                continue;
            };
            let line = self.toks[self.i].line;
            self.i += 1;
            if self.punct_at(self.i) != Some(':') {
                continue;
            }
            self.i += 1;
            // Type text until a top-level comma or the closing brace.
            let (mut angle, mut paren, mut bracket) = (0i32, 0i32, 0i32);
            let mut ty = String::new();
            while self.i < self.toks.len() {
                match &self.toks[self.i].tok {
                    Tok::Punct(',') if angle == 0 && paren == 0 && bracket == 0 => {
                        self.i += 1;
                        break;
                    }
                    Tok::Punct('}') if angle == 0 && paren == 0 && bracket == 0 => break,
                    tok => {
                        let arrow = matches!(tok, Tok::Punct('>'))
                            && self.punct_at(self.i.wrapping_sub(1)) == Some('-');
                        match tok {
                            Tok::Punct('<') => angle += 1,
                            Tok::Punct('>') if !arrow => angle -= 1,
                            Tok::Punct('(') => paren += 1,
                            Tok::Punct(')') => paren -= 1,
                            Tok::Punct('[') => bracket += 1,
                            Tok::Punct(']') => bracket -= 1,
                            _ => {}
                        }
                        push_normalized(&mut ty, tok);
                        self.i += 1;
                    }
                }
            }
            fields.push(Field { name, ty, line });
        }
    }

    fn impl_header(&mut self, line: u32) {
        self.i += 1; // `impl`
        self.pending_derives.clear();
        self.pending_attr_line = None;
        if self.punct_at(self.i) == Some('<') {
            self.skip_generics();
        }
        // Collect header idents until the body `{` (or a terminating `;`),
        // splitting on a top-level `for`.
        let mut before_for: Vec<String> = Vec::new();
        let mut after_for: Vec<String> = Vec::new();
        let mut saw_for = false;
        let mut angle = 0i32;
        while self.i < self.toks.len() {
            match &self.toks[self.i].tok {
                Tok::Punct('{') if angle <= 0 => break,
                Tok::Punct(';') if angle <= 0 => {
                    self.i += 1;
                    return;
                }
                Tok::Punct('<') => {
                    angle += 1;
                    self.i += 1;
                }
                Tok::Punct('>') => {
                    if self.punct_at(self.i.wrapping_sub(1)) != Some('-') {
                        angle -= 1;
                    }
                    self.i += 1;
                }
                Tok::Ident(id) if id == "for" && angle == 0 => {
                    saw_for = true;
                    self.i += 1;
                }
                Tok::Ident(id) if id == "where" && angle == 0 => {
                    self.i += 1;
                }
                Tok::Ident(id) => {
                    if angle == 0 {
                        if saw_for {
                            after_for.push(id.clone());
                        } else {
                            before_for.push(id.clone());
                        }
                    }
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        let (trait_name, self_ty) = if saw_for {
            (before_for.last().cloned(), after_for.last().cloned().unwrap_or_default())
        } else {
            (None, before_for.last().cloned().unwrap_or_default())
        };
        self.model.impls.push(ImplDef { self_ty: self_ty.clone(), trait_name, line });
        if self.punct_at(self.i) == Some('{') {
            self.depth += 1;
            self.i += 1;
            self.impl_stack.push(OpenImpl { self_ty, open_depth: self.depth });
        }
    }

    fn fn_item(&mut self, line: u32) {
        self.i += 1; // `fn`
        let name = self.ident_at(self.i).unwrap_or_default().to_string();
        self.i += 1;
        let decl_line = self.pending_attr_line.take().unwrap_or(line);
        self.pending_derives.clear();
        let qualified = match self.impl_stack.last() {
            Some(im) if im.open_depth == self.depth => format!("{}::{name}", im.self_ty),
            _ => name.clone(),
        };
        // Signature: scan to the body `{` or terminating `;` at depth 0,
        // capturing the return type after a top-level `->`.
        let (mut angle, mut paren, mut bracket) = (0i32, 0i32, 0i32);
        let mut ret = String::new();
        let mut in_ret = false;
        while self.i < self.toks.len() {
            let top = angle <= 0 && paren == 0 && bracket == 0;
            match &self.toks[self.i].tok {
                Tok::Punct('{') if top => break,
                Tok::Punct(';') if top => {
                    self.i += 1;
                    self.model.fns.push(FnItem {
                        name,
                        qualified,
                        line,
                        decl_line,
                        ret,
                        body: None,
                        end_line: line,
                    });
                    return;
                }
                Tok::Ident(id) if top && id == "where" => {
                    in_ret = false;
                    self.i += 1;
                }
                tok => {
                    let arrow = matches!(tok, Tok::Punct('>'))
                        && self.punct_at(self.i.wrapping_sub(1)) == Some('-');
                    match tok {
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') if !arrow => angle -= 1,
                        Tok::Punct('(') => paren += 1,
                        Tok::Punct(')') => paren -= 1,
                        Tok::Punct('[') => bracket += 1,
                        Tok::Punct(']') => bracket -= 1,
                        _ => {}
                    }
                    if in_ret {
                        push_normalized(&mut ret, tok);
                    }
                    if arrow && angle <= 0 && paren == 0 && bracket == 0 {
                        in_ret = true;
                        // Drop the arrow characters captured so far.
                        ret.clear();
                    }
                    self.i += 1;
                }
            }
        }
        if self.punct_at(self.i) == Some('{') {
            self.depth += 1;
            let body_start = self.i;
            self.i += 1;
            self.model.fns.push(FnItem {
                name,
                qualified,
                line,
                decl_line,
                ret,
                body: Some((body_start, body_start)),
                end_line: line,
            });
            self.open_fns.push(OpenFn { index: self.model.fns.len() - 1, open_depth: self.depth });
        }
    }
}

/// Appends a token's text to a whitespace-free normalized string.
fn push_normalized(out: &mut String, tok: &Tok) {
    match tok {
        Tok::Ident(s) => out.push_str(s),
        Tok::Punct(c) => out.push(*c),
        Tok::Lifetime(l) => {
            out.push('\'');
            out.push_str(l);
        }
        Tok::Str(_) => out.push_str("\"…\""),
        Tok::Char => out.push_str("'…'"),
        Tok::Num(n) => out.push_str(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> FileModel {
        parse(&lex(src))
    }

    #[test]
    fn finds_fns_with_qualification_and_return_types() {
        let m = model(
            "impl BrokerStats {\n\
                 pub fn snapshot(&self) -> Vec<(&'static str, u64)> { vec![] }\n\
             }\n\
             fn free_one(x: u32) -> u32 { x }\n\
             trait T { fn decl_only(&self); }\n",
        );
        let snap = m.fns.iter().find(|f| f.name == "snapshot").expect("snapshot parsed");
        assert_eq!(snap.qualified, "BrokerStats::snapshot");
        assert_eq!(snap.ret, "Vec<(&'staticstr,u64)>");
        assert!(snap.body.is_some());
        let decl = m.fns.iter().find(|f| f.name == "decl_only").expect("decl parsed");
        assert!(decl.body.is_none());
    }

    #[test]
    fn struct_fields_and_derives() {
        let m = model(
            "#[derive(Debug, Clone, Copy)]\n\
             pub struct Stats {\n\
                 /// Doc.\n\
                 pub a: u64,\n\
                 b: Option<u64>,\n\
                 c: HashMap<ClientId, usize>,\n\
             }\n",
        );
        let s = &m.types[0];
        assert_eq!(s.name, "Stats");
        assert_eq!(s.derives, ["Debug", "Clone", "Copy"]);
        let tys: Vec<&str> = s.fields.iter().map(|f| f.ty.as_str()).collect();
        assert_eq!(tys, ["u64", "Option<u64>", "HashMap<ClientId,usize>"]);
    }

    #[test]
    fn impl_trait_for_type_headers() {
        let m = model(
            "impl std::fmt::Debug for SymmetricKey { fn fmt(&self) {} }\n\
             impl<T: Fn() -> u32> Holder<T> { fn get(&self) {} }\n",
        );
        assert_eq!(m.impls[0].self_ty, "SymmetricKey");
        assert_eq!(m.impls[0].trait_name.as_deref(), Some("Debug"));
        assert_eq!(m.impls[1].self_ty, "Holder");
        assert_eq!(m.impls[1].trait_name, None);
        assert_eq!(m.fns[1].qualified, "Holder::get");
    }

    #[test]
    fn forbid_unsafe_is_detected() {
        assert!(model("#![forbid(unsafe_code)]\nfn main() {}").has_forbid_unsafe);
        assert!(!model("#![warn(missing_docs)]\nfn main() {}").has_forbid_unsafe);
    }

    #[test]
    fn enclosing_fn_is_innermost() {
        let m = model("fn outer() { fn inner() { marker(); } }");
        let marker = 12; // token index of `marker` — resolved below instead.
        let _ = marker;
        let inner = m.fns.iter().find(|f| f.name == "inner").expect("inner");
        let (s, e) = inner.body.expect("body");
        let mid = (s + e) / 2;
        assert_eq!(m.enclosing_fn(mid).map(|f| f.name.as_str()), Some("inner"));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let m = model("struct S { f: fn(u32) -> u32 }");
        assert!(m.fns.is_empty());
        assert_eq!(m.types[0].fields[0].ty, "fn(u32)->u32");
    }
}
