//! A comment/string/char-literal-aware Rust lexer.
//!
//! The rules only ever look at *identifier* and *punctuation* tokens, so a
//! banned name inside a string literal, a doc comment, or a `#[doc]`
//! attribute can never fire a finding — and, conversely, suppression
//! comments are collected separately so the rule engine can match them to
//! the lines and items they cover. The lexer is deliberately lossy about
//! everything the rules do not need (numeric values, string contents are
//! kept raw, no spans within a line).

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `struct`, `Instant`, …).
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// A lifetime such as `'static` (name without the quote).
    Lifetime(String),
    /// Any string literal (cooked, raw, or byte); the unescaped source
    /// contents between the delimiters.
    Str(String),
    /// A character or byte-character literal.
    Char,
    /// A numeric literal (raw text).
    Num(String),
}

/// A token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A comment (line or block) with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes `src`, never failing: unterminated literals consume to the end of
/// the file (the compiler, not the linter, owns syntax errors).
pub fn lex(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.tokens.push(Token { tok, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    let s = self.cooked_string();
                    self.push(Tok::Str(s), line);
                }
                '\'' => self.quote(),
                _ if c.is_ascii_digit() => self.number(),
                _ if c == '_' || c.is_alphabetic() => self.ident(),
                _ => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    /// A `"…"` string with escape handling; returns the raw contents.
    fn cooked_string(&mut self) -> String {
        self.bump(); // opening quote
        let mut s = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(next) = self.bump() {
                        s.push('\\');
                        s.push(next);
                    }
                }
                '"' => break,
                _ => s.push(c),
            }
        }
        s
    }

    /// `r"…"` / `r#"…"#` (already past the `r`, `pos` at `#` or `"`).
    fn raw_string(&mut self) -> String {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut s = String::new();
        while let Some(c) = self.bump() {
            if c == '"' {
                let closes = (0..hashes).all(|i| self.peek(i) == Some('#'));
                if closes {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            s.push(c);
        }
        s
    }

    /// Disambiguates a `'` into a char literal or a lifetime.
    fn quote(&mut self) {
        let line = self.line;
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume through the closing quote.
                self.bump();
                self.bump(); // the escaped character (or escape class)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(Tok::Char, line);
            }
            Some(c) if self.peek(1) == Some('\'') => {
                // 'x' — a plain char literal.
                let _ = c;
                self.bump();
                self.bump();
                self.push(Tok::Char, line);
            }
            Some(c) if c == '_' || c.is_alphabetic() => {
                // A lifetime: consume the identifier after the quote.
                let mut name = String::new();
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(Tok::Lifetime(name), line);
            }
            _ => {
                // Stray quote — emit as punctuation and move on.
                self.push(Tok::Punct('\''), line);
            }
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `7.25` continues the number; `0..n` leaves the dots alone.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Num(text), line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String-literal prefixes: r"…", r#"…"#, b"…", br"…", b'…'.
        match (name.as_str(), self.peek(0)) {
            ("r" | "br", Some('"' | '#')) => {
                let s = self.raw_string();
                self.push(Tok::Str(s), line);
            }
            ("b", Some('"')) => {
                let s = self.cooked_string();
                self.push(Tok::Str(s), line);
            }
            ("b", Some('\'')) => {
                self.quote();
                // `quote` pushed Char (or a lifetime for malformed input);
                // either way the `b` prefix itself is not a token.
            }
            _ => self.push(Tok::Ident(name), line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(lexed: &Lexed) -> Vec<&str> {
        lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let lexed = lex(concat!(
            "// Instant::now in a comment\n",
            "/* SystemTime in a block */\n",
            "let s = \"Instant::now()\";\n",
            "let r = r#\"SystemTime\"#;\n",
            "let b = b\"unsafe\";\n",
            "real_ident();\n",
        ));
        assert_eq!(idents(&lexed), ["let", "s", "let", "r", "let", "b", "real_ident"]);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("Instant::now"));
    }

    #[test]
    fn char_literals_do_not_swallow_code() {
        let lexed = lex("let c = 'x'; let nl = '\\n'; fn f<'a>(s: &'a str) {} Instant::now()");
        assert!(idents(&lexed).contains(&"Instant"));
        assert!(idents(&lexed).contains(&"now"));
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Lifetime(l) => Some(l.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let lexed = lex("for i in 0..n { let x = 7.25; }");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, ["0", "7.25"]);
        let dots = lexed.tokens.iter().filter(|t| t.tok == Tok::Punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let lexed = lex("/* outer /* inner */ still outer */ after");
        assert_eq!(idents(&lexed), ["after"]);
        assert_eq!(lexed.comments.len(), 1);
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }
}
