//! `scbr-lint` — workspace-aware static analysis for the SCBR tree.
//!
//! The paper's security argument rests on invariants the test suite can
//! only *sample*: plaintext and key material never crosses the enclave
//! boundary in the clear, the matching hot path allocates nothing, every
//! stats counter actually reaches the telemetry registry, enclave-side
//! code never reads the wall clock. This crate turns those into
//! whole-tree build-time checks: a hand-rolled comment/string-aware
//! [`lexer`], a lightweight item-level [`parser`], and a [`rules`] engine
//! with stable codes (`SL01`–`SL06`), inline
//! `// lint: allow(<rule>, <reason>)` suppressions, JSON output, and
//! `--deny` exit-code semantics for CI.
//!
//! Boundary changes are manifest-driven: the ecall/ocall-crossing surface
//! is enumerated into `BOUNDARY.lock`, so any new crossing is an explicit,
//! reviewed diff to the lock file (rule SL05).
#![forbid(unsafe_code)]

pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Bumped whenever the `LINT_REPORT.json` document shape changes (same
/// contract as `scbr_bench::json::SCHEMA_VERSION` for `BENCH_*.json`).
pub const SCHEMA_VERSION: u32 = 1;

/// One finding, suppressed or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule code (`SL01` … `SL06`).
    pub rule: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    /// The reason given by the matching `// lint: allow(...)`, when one
    /// covers this finding.
    pub suppressed: Option<String>,
}

impl Finding {
    pub(crate) fn new(rule: &'static str, path: &str, line: u32, message: String) -> Self {
        Finding { rule, path: path.to_string(), line, message, suppressed: None }
    }
}

/// One `.ecall(` / `.ocall(` call site (the SL05 surface unit).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SurfaceSite {
    pub path: String,
    /// Enclosing function, `Type::name`-qualified when associated.
    pub function: String,
    /// `"ecall"` or `"ocall"`.
    pub kind: String,
    pub line: u32,
}

/// Tunable scope of the rules. [`LintConfig::default`] carries the real
/// repo's invariants; tests point the same engine at fixture trees.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Path prefixes where SL01 bans wall-clock reads (the enclave-side
    /// modules; host-side code *within* them justifies itself with an
    /// inline allow).
    pub sl01_scope: Vec<String>,
    /// The declared zero-allocation function set for SL03.
    pub sl03_fns: Vec<String>,
    /// Files allowed to contain `unsafe` (must carry `// SAFETY:` docs).
    pub sl06_unsafe_allow: Vec<String>,
    /// Path prefixes excluded from the SL05 surface scan (the gate's own
    /// crate — its internal tests exercise the gate, they do not cross it).
    pub boundary_exclude: Vec<String>,
    /// Top-level directories walked by [`lint_tree`].
    pub scan_roots: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            sl01_scope: vec![
                "crates/core/src".into(),
                "crates/aspe/src".into(),
                "crates/crypto/src".into(),
                "crates/sgx-sim/src".into(),
            ],
            sl03_fns: vec![
                "match_batch_into".into(),
                "match_encrypted_batch_into".into(),
                "match_into".into(),
                "route_batch".into(),
            ],
            sl06_unsafe_allow: vec!["crates/core/tests/zero_alloc_batch.rs".into()],
            boundary_exclude: vec!["crates/sgx-sim".into()],
            scan_roots: vec!["crates".into(), "src".into(), "tests".into(), "examples".into()],
        }
    }
}

/// The outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// All findings, each carrying its suppression state.
    pub findings: Vec<Finding>,
    /// The file's boundary-crossing call sites.
    pub surface: Vec<SurfaceSite>,
}

/// The outcome of linting a whole tree.
#[derive(Debug, Default)]
pub struct TreeReport {
    pub files_scanned: usize,
    /// Unsuppressed findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Suppressed findings with their reasons, same order.
    pub suppressed: Vec<Finding>,
    /// The enumerated boundary surface (aggregated, sorted).
    pub surface: Vec<SurfaceEntry>,
}

impl TreeReport {
    /// Findings for one rule code.
    pub fn of_rule(&self, rule: &str) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.rule == rule).collect()
    }
}

/// An aggregated lock-file row: every call of `kind` from `function`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SurfaceEntry {
    pub path: String,
    pub function: String,
    pub kind: String,
    pub count: u32,
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// A parsed `lint: allow(<rule>, <reason>)` comment.
#[derive(Debug, Clone)]
struct Allow {
    line: u32,
    rule: String,
    reason: String,
}

/// Extracts every allow from a file's comments. The accepted shape is
/// `lint: allow(SLxx, free-text reason)` anywhere inside a plain comment;
/// the reason is mandatory — an unexplained suppression is itself suspect.
/// Doc comments never suppress: prose *describing* the syntax must not
/// accidentally invoke it.
fn parse_allows(lexed: &lexer::Lexed, rel: &str, bad: &mut Vec<Finding>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in &lexed.comments {
        let doc = ["///", "//!", "/**", "/*!"].iter().any(|p| c.text.starts_with(p));
        if doc {
            continue;
        }
        let Some(at) = c.text.find("lint:") else { continue };
        let rest = c.text[at + "lint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else { continue };
        let Some(close) = args.find(')') else {
            bad.push(Finding::new("SL00", rel, c.line, "unterminated lint: allow(...)".into()));
            continue;
        };
        let body = &args[..close];
        let (rule, reason) = match body.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (body.trim(), ""),
        };
        if !rules::RULE_CODES.contains(&rule) || reason.is_empty() {
            bad.push(Finding::new(
                "SL00",
                rel,
                c.line,
                format!(
                    "malformed suppression `{}` — expected `lint: allow(SLxx, reason)` with a \
                     known rule code and a non-empty reason",
                    body.trim()
                ),
            ));
            continue;
        }
        allows.push(Allow { line: c.line, rule: rule.to_string(), reason: reason.to_string() });
    }
    allows
}

/// Line ranges each allow covers: its own line, the line below it, and —
/// when it sits in the contiguous comment block directly above an item
/// declaration — that item's whole span.
fn apply_suppressions(
    findings: &mut [Finding],
    allows: &[Allow],
    model: &parser::FileModel,
    lexed: &lexer::Lexed,
) {
    if allows.is_empty() {
        return;
    }
    let comment_lines: std::collections::BTreeSet<u32> =
        lexed.comments.iter().map(|c| c.line).collect();
    // (start, end, rule, reason) coverage spans.
    let mut spans: Vec<(u32, u32, &str, &str)> = Vec::new();
    for a in allows {
        spans.push((a.line, a.line + 1, &a.rule, &a.reason));
    }
    let mut items: Vec<(u32, u32)> = model
        .fns
        .iter()
        .map(|f| (f.decl_line, f.end_line))
        .chain(model.types.iter().map(|t| (t.decl_line, t.end_line)))
        .collect();
    items.sort_unstable();
    for (decl, end) in items {
        // Walk the contiguous comment block upward from the declaration.
        let mut top = decl;
        while top > 1 && comment_lines.contains(&(top - 1)) {
            top -= 1;
        }
        if top == decl {
            continue;
        }
        for a in allows {
            if a.line >= top && a.line < decl {
                spans.push((decl, end, &a.rule, &a.reason));
            }
        }
    }
    for f in findings.iter_mut() {
        if f.suppressed.is_some() {
            continue;
        }
        for (start, end, rule, reason) in &spans {
            if f.rule == *rule && f.line >= *start && f.line <= *end {
                f.suppressed = Some(reason.to_string());
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-file and per-tree drivers
// ---------------------------------------------------------------------------

/// Lints one file's source as if it lived at `rel` (workspace-relative).
/// `crate_root` marks `src/lib.rs` files for the SL06 forbid check.
pub fn lint_file(rel: &str, source: &str, cfg: &LintConfig, crate_root: bool) -> FileOutcome {
    let lexed = lexer::lex(source);
    let model = parser::parse(&lexed);
    let (mut findings, surface) = rules::check_file(rel, &lexed, &model, cfg, crate_root);
    let allows = parse_allows(&lexed, rel, &mut findings);
    apply_suppressions(&mut findings, &allows, &model, &lexed);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    FileOutcome { findings, surface }
}

/// True for `crates/<name>/src/lib.rs` and the umbrella `src/lib.rs`.
fn is_crate_root(rel: &str) -> bool {
    if rel == "src/lib.rs" {
        return true;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    matches!(parts.as_slice(), ["crates", _, "src", "lib.rs"])
}

/// Path components that end a walk: build output, vendored stand-ins, the
/// deliberately-violating fixture corpus.
const SKIP_COMPONENTS: [&str; 4] = ["target", "vendor", "fixtures", ".git"];

fn walk(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if SKIP_COMPONENTS.contains(&name) {
            continue;
        }
        if path.is_dir() {
            walk(&path, files);
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
}

/// Lints the whole tree under `root` and checks the boundary surface
/// against `lock` (`None` defaults to `<root>/BOUNDARY.lock`).
pub fn lint_tree(root: &Path, cfg: &LintConfig, lock: Option<&Path>) -> TreeReport {
    let mut files = Vec::new();
    for top in &cfg.scan_roots {
        walk(&root.join(top), &mut files);
    }
    let mut report = TreeReport::default();
    let mut all: Vec<Finding> = Vec::new();
    let mut sites: Vec<SurfaceSite> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let Ok(source) = fs::read_to_string(path) else { continue };
        let outcome = lint_file(&rel, &source, cfg, is_crate_root(&rel));
        all.extend(outcome.findings);
        sites.extend(outcome.surface);
        report.files_scanned += 1;
    }
    report.surface = aggregate_surface(&sites);
    let lock_path = lock.map(Path::to_path_buf).unwrap_or_else(|| root.join("BOUNDARY.lock"));
    all.extend(check_boundary(&report.surface, &sites, &lock_path));
    all.sort_by(|a, b| (a.path.clone(), a.line, a.rule).cmp(&(b.path.clone(), b.line, b.rule)));
    let (suppressed, findings) = all.into_iter().partition(|f| f.suppressed.is_some());
    report.findings = findings;
    report.suppressed = suppressed;
    report
}

// ---------------------------------------------------------------------------
// SL05: the boundary lock
// ---------------------------------------------------------------------------

fn aggregate_surface(sites: &[SurfaceSite]) -> Vec<SurfaceEntry> {
    let mut counts: BTreeMap<(String, String, String), u32> = BTreeMap::new();
    for s in sites {
        *counts.entry((s.path.clone(), s.function.clone(), s.kind.clone())).or_default() += 1;
    }
    counts
        .into_iter()
        .map(|((path, function, kind), count)| SurfaceEntry { path, function, kind, count })
        .collect()
}

/// Renders the lock file for a surface.
pub fn render_lock(surface: &[SurfaceEntry]) -> String {
    let mut out = String::from(
        "# BOUNDARY.lock — the workspace's ecall/ocall-crossing surface, one row per\n\
         # (file, function, kind). Any change to this surface must be an explicit,\n\
         # reviewed diff to this file: regenerate with\n\
         #   cargo run -p scbr-lint -- --update-boundary\n",
    );
    for e in surface {
        out.push_str(&format!("{}\t{}\t{}\t{}\n", e.path, e.function, e.kind, e.count));
    }
    out
}

/// Parses a lock file's rows (comments and blank lines skipped).
pub fn parse_lock(text: &str) -> Vec<SurfaceEntry> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.split('\t');
        let (Some(path), Some(function), Some(kind), Some(count)) =
            (cols.next(), cols.next(), cols.next(), cols.next())
        else {
            continue;
        };
        entries.push(SurfaceEntry {
            path: path.to_string(),
            function: function.to_string(),
            kind: kind.to_string(),
            count: count.parse().unwrap_or(0),
        });
    }
    entries.sort();
    entries
}

/// Compares the observed surface against the lock, producing SL05
/// findings for every drifted row. Suppressions deliberately do not apply:
/// the only way to admit a new crossing is to update the lock itself.
fn check_boundary(
    surface: &[SurfaceEntry],
    sites: &[SurfaceSite],
    lock_path: &Path,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Ok(text) = fs::read_to_string(lock_path) else {
        findings.push(Finding::new(
            "SL05",
            "BOUNDARY.lock",
            0,
            "BOUNDARY.lock is missing — generate it with `scbr-lint --update-boundary` and \
             check it in"
                .to_string(),
        ));
        return findings;
    };
    let locked = parse_lock(&text);
    for entry in surface {
        let known = locked
            .iter()
            .find(|l| l.path == entry.path && l.function == entry.function && l.kind == entry.kind);
        match known {
            Some(l) if l.count == entry.count => {}
            other => {
                let line = sites
                    .iter()
                    .find(|s| {
                        s.path == entry.path && s.function == entry.function && s.kind == entry.kind
                    })
                    .map(|s| s.line)
                    .unwrap_or(0);
                let detail = match other {
                    Some(l) => {
                        format!("{} site(s) in the lock, {} in the tree", l.count, entry.count)
                    }
                    None => "not in the lock".to_string(),
                };
                findings.push(Finding::new(
                    "SL05",
                    &entry.path,
                    line,
                    format!(
                        "boundary surface changed: `{}` {} in `{}` — {detail}; review the \
                         crossing and run `scbr-lint --update-boundary`",
                        entry.kind, entry.function, entry.path
                    ),
                ));
            }
        }
    }
    for l in &locked {
        let still = surface
            .iter()
            .any(|e| e.path == l.path && e.function == l.function && e.kind == l.kind);
        if !still {
            findings.push(Finding::new(
                "SL05",
                "BOUNDARY.lock",
                0,
                format!(
                    "stale lock row: `{}` {} in `{}` no longer exists — run \
                     `scbr-lint --update-boundary`",
                    l.kind, l.function, l.path
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG_SRC_PATH: &str = "crates/core/src/file.rs";

    fn cfg() -> LintConfig {
        LintConfig::default()
    }

    #[test]
    fn allow_on_same_line_suppresses() {
        let src = "fn f() { let t = Instant::now(); // lint: allow(SL01, host-side timer)\n}\n";
        let out = lint_file(CFG_SRC_PATH, src, &cfg(), false);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].suppressed.as_deref(), Some("host-side timer"));
    }

    #[test]
    fn allow_above_item_covers_whole_item() {
        let src = "\
// lint: allow(SL01, provably host-side helper)\n\
fn helper() {\n\
    let a = Instant::now();\n\
    let b = Instant::now();\n\
}\n\
fn unprotected() { let c = Instant::now(); }\n";
        let out = lint_file(CFG_SRC_PATH, src, &cfg(), false);
        let (supp, live): (Vec<_>, Vec<_>) =
            out.findings.iter().partition(|f| f.suppressed.is_some());
        assert_eq!(supp.len(), 2, "both reads inside the item are covered");
        assert_eq!(live.len(), 1, "the item allow does not leak to the next fn");
    }

    #[test]
    fn allow_without_reason_is_itself_a_finding() {
        let src = "fn f() {} // lint: allow(SL01)\n";
        let out = lint_file(CFG_SRC_PATH, src, &cfg(), false);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "SL00");
    }

    #[test]
    fn unknown_rule_code_is_rejected() {
        let src = "fn f() {} // lint: allow(SL99, nonsense)\n";
        let out = lint_file(CFG_SRC_PATH, src, &cfg(), false);
        assert_eq!(out.findings[0].rule, "SL00");
    }

    #[test]
    fn crate_root_detection() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/core/src/lib.rs"));
        assert!(!is_crate_root("crates/core/src/engine.rs"));
        assert!(!is_crate_root("crates/core/tests/lib.rs"));
    }

    #[test]
    fn lock_round_trips() {
        let surface = vec![
            SurfaceEntry {
                path: "crates/core/src/engine.rs".into(),
                function: "RouterEngine::call".into(),
                kind: "ecall".into(),
                count: 1,
            },
            SurfaceEntry {
                path: "examples/demo.rs".into(),
                function: "main".into(),
                kind: "ocall".into(),
                count: 3,
            },
        ];
        assert_eq!(parse_lock(&render_lock(&surface)), surface);
    }
}
