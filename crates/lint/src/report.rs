//! Human and JSON rendering of a [`TreeReport`] — no serde, mirroring the
//! hand-rolled `BENCH_*.json` emitters in `scbr_bench::json`.

use crate::{rules::RULE_CODES, Finding, TreeReport, SCHEMA_VERSION};

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    let mut obj = format!(
        "{{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"",
        f.rule,
        escape(&f.path),
        f.line,
        escape(&f.message)
    );
    if let Some(reason) = &f.suppressed {
        obj.push_str(&format!(", \"suppressed\": \"{}\"", escape(reason)));
    }
    obj.push('}');
    obj
}

/// The `LINT_REPORT.json` document.
pub fn to_json(report: &TreeReport) -> String {
    let findings: Vec<String> = report.findings.iter().map(finding_json).collect();
    let suppressed: Vec<String> = report.suppressed.iter().map(finding_json).collect();
    let per_rule: Vec<String> = std::iter::once(&"SL00")
        .chain(RULE_CODES.iter())
        .map(|code| {
            format!("\"{code}\": {}", report.findings.iter().filter(|f| f.rule == *code).count())
        })
        .collect();
    format!(
        "{{\n  \"tool\": \"scbr-lint\",\n  \"schema_version\": {SCHEMA_VERSION},\n  \
         \"files_scanned\": {},\n  \"findings\": [{}],\n  \"suppressed\": [{}],\n  \
         \"boundary_rows\": {},\n  \"summary\": {{{}}}\n}}\n",
        report.files_scanned,
        findings.join(", "),
        suppressed.join(", "),
        report.surface.len(),
        per_rule.join(", ")
    )
}

/// The terminal rendering: one line per finding, then a summary.
pub fn to_human(report: &TreeReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!("{}:{}: [{}] {}\n", f.path, f.line, f.rule, f.message));
    }
    for f in &report.suppressed {
        out.push_str(&format!(
            "{}:{}: [{}] suppressed ({}): {}\n",
            f.path,
            f.line,
            f.rule,
            f.suppressed.as_deref().unwrap_or(""),
            f.message
        ));
    }
    out.push_str(&format!(
        "scbr-lint: {} file(s), {} finding(s), {} suppressed, {} boundary row(s)\n",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len(),
        report.surface.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_schema_version_and_escapes() {
        let mut report = TreeReport { files_scanned: 2, ..TreeReport::default() };
        report.findings.push(Finding {
            rule: "SL02",
            path: "a\\b.rs".into(),
            line: 3,
            message: "derives `Debug`".into(),
            suppressed: None,
        });
        let json = to_json(&report);
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("a\\\\b.rs"));
        assert!(json.contains("\"SL02\": 1"));
        assert!(json.contains("\"SL01\": 0"));
    }
}
