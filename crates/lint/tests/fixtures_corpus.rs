//! The fixture corpus: one violating and one conforming file per rule,
//! each bad fixture firing *exactly* its own rule; plus the tree-clean
//! check on the real workspace and the boundary-lock drift check.
//!
//! Fixtures live under `tests/fixtures/`, which the tree walker skips, so
//! the deliberately-violating files never pollute the real lint run.

use scbr_lint::{lint_file, lint_tree, LintConfig};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn read(name: &str) -> String {
    let path = fixtures().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `(rule, bad fixture, good fixture, pretend-path, crate_root)` — the
/// pretend path places the fixture where its rule is in scope.
const CASES: [(&str, &str, &str, &str, bool); 5] = [
    ("SL01", "sl01_bad.rs", "sl01_good.rs", "crates/core/src/fixture.rs", false),
    ("SL02", "sl02_bad.rs", "sl02_good.rs", "crates/crypto/src/fixture.rs", false),
    ("SL03", "sl03_bad.rs", "sl03_good.rs", "crates/core/src/fixture.rs", false),
    ("SL04", "sl04_bad.rs", "sl04_good.rs", "crates/telemetry/src/fixture.rs", false),
    ("SL06", "sl06_bad.rs", "sl06_good.rs", "crates/demo/src/lib.rs", true),
];

#[test]
fn each_bad_fixture_fires_exactly_its_rule() {
    let cfg = LintConfig::default();
    for (rule, bad, _, rel, crate_root) in CASES {
        let out = lint_file(rel, &read(bad), &cfg, crate_root);
        let fired: BTreeSet<&str> = out.findings.iter().map(|f| f.rule).collect();
        assert_eq!(
            fired,
            BTreeSet::from([rule]),
            "{bad}: expected only {rule}, got {:?}",
            out.findings
        );
        assert!(
            out.findings.iter().all(|f| f.suppressed.is_none()),
            "{bad}: fixture findings must not be suppressed"
        );
    }
}

#[test]
fn each_good_fixture_is_silent() {
    let cfg = LintConfig::default();
    for (rule, _, good, rel, crate_root) in CASES {
        let out = lint_file(rel, &read(good), &cfg, crate_root);
        assert!(
            out.findings.is_empty(),
            "{good}: conforming fixture for {rule} still fired {:?}",
            out.findings
        );
    }
}

/// The acceptance gate: the real workspace lints clean under `--deny`
/// semantics (no unsuppressed findings against the checked-in lock).
#[test]
fn real_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_tree(&root, &LintConfig::default(), None);
    assert!(report.findings.is_empty(), "workspace must lint clean, found: {:#?}", report.findings);
    assert!(report.files_scanned > 100, "walker missed the tree: {}", report.files_scanned);
    assert!(!report.surface.is_empty(), "boundary surface must not be empty");
}

#[test]
fn boundary_lock_accepts_matching_surface() {
    let root = fixtures().join("boundary_good");
    let report = lint_tree(&root, &LintConfig::default(), None);
    assert!(report.findings.is_empty(), "matching lock must be clean: {:?}", report.findings);
    assert_eq!(report.surface.len(), 2);
}

#[test]
fn deliberately_added_call_site_fails_the_lock_check() {
    let root = fixtures().join("boundary_drift");
    let report = lint_tree(&root, &LintConfig::default(), None);
    let sl05 = report.of_rule("SL05");
    assert!(!sl05.is_empty(), "the sneaked-in ecall must trip SL05");
    assert!(
        sl05.iter().any(|f| f.message.contains("Host::sneak")),
        "finding should name the new call site: {sl05:?}"
    );
}

/// SL05 has no suppression escape hatch: an allow comment on the call
/// site must not silence the lock drift.
#[test]
fn boundary_findings_cannot_be_suppressed() {
    let root = fixtures().join("boundary_drift");
    let report = lint_tree(&root, &LintConfig::default(), None);
    assert!(report.of_rule("SL05").iter().all(|f| f.suppressed.is_none()));
}
