//! SL03 conforming fixture: the hot path reuses caller-owned buffers.

pub struct Index {
    ids: [u32; 8],
    live: usize,
}

impl Index {
    pub fn match_into(&self, out: &mut Vec<u32>) {
        for id in &self.ids[..self.live] {
            out.push(*id);
        }
    }
}
