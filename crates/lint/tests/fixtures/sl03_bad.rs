//! SL03 violating fixture: a declared zero-allocation hot-path function
//! that allocates anyway.

pub struct Index {
    ids: [u32; 8],
    live: usize,
}

impl Index {
    pub fn match_into(&self, out: &mut Vec<u32>) {
        let scratch = vec![0u32; self.live];
        let doubled: Vec<u32> = scratch.iter().map(|v| v * 2).collect();
        out.extend_from_slice(&doubled);
        out.extend_from_slice(&self.ids[..self.live]);
    }
}
