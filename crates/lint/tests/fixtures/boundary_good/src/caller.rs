//! Boundary fixture: a mini host-side module whose gate crossings match
//! the checked-in `BOUNDARY.lock` exactly.

pub struct Gate;

impl Gate {
    pub fn ecall<T>(&self, f: impl FnOnce() -> T) -> T {
        f()
    }
}

pub struct Host {
    gate: Gate,
}

impl Host {
    pub fn once(&self) -> u32 {
        self.gate.ecall(|| 1)
    }

    pub fn twice(&self) -> u32 {
        self.gate.ecall(|| 1) + self.gate.ecall(|| 2)
    }
}
