//! SL02 violating fixture: a secret-bearing type with derived `Debug`.

#[derive(Debug, Clone)]
pub struct SessionKey {
    bytes: [u8; 32],
}

impl SessionKey {
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}
