//! SL01 violating fixture: wall-clock reads inside an enclave-side module.

pub struct Stamper {
    last_ns: u64,
}

impl Stamper {
    pub fn stamp(&mut self) -> u64 {
        let t = std::time::Instant::now();
        self.last_ns = t.elapsed().as_nanos() as u64;
        self.last_ns
    }

    pub fn epoch_seconds() -> u64 {
        let now = std::time::SystemTime::now();
        now.duration_since(std::time::UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
    }
}
