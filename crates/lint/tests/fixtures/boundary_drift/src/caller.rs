//! Boundary fixture: same module as `boundary_good`, plus one
//! deliberately-added gate call site (`Host::sneak`) that the lock does
//! not list — the SL05 check must fail on it.

pub struct Gate;

impl Gate {
    pub fn ecall<T>(&self, f: impl FnOnce() -> T) -> T {
        f()
    }
}

pub struct Host {
    gate: Gate,
}

impl Host {
    pub fn once(&self) -> u32 {
        self.gate.ecall(|| 1)
    }

    pub fn twice(&self) -> u32 {
        self.gate.ecall(|| 1) + self.gate.ecall(|| 2)
    }

    pub fn sneak(&self) -> u32 {
        self.gate.ecall(|| 3)
    }
}
