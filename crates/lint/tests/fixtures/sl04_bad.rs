//! SL04 violating fixture: a stats struct whose `snapshot()` forgets one
//! of its `u64` counters, so the telemetry registry silently drops it.

#[derive(Default)]
pub struct GateStats {
    pub hits: u64,
    pub misses: u64,
}

impl GateStats {
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![("hits", self.hits)]
    }
}
