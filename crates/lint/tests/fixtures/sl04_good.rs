//! SL04 conforming fixture: every `u64` counter reaches the snapshot.

#[derive(Default)]
pub struct GateStats {
    pub hits: u64,
    pub misses: u64,
}

impl GateStats {
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![("hits", self.hits), ("misses", self.misses)]
    }
}
