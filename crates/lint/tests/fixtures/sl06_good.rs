//! SL06 conforming fixture: the crate root keeps the guard.
#![forbid(unsafe_code)]

pub fn read_first(bytes: &[u8]) -> u8 {
    bytes[0]
}
