//! SL06 violating fixture: a crate root that dropped the workspace-wide
//! `#![forbid(unsafe_code)]` guard and smuggled in an unsafe block.

pub fn read_first(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}
