//! SL01 conforming fixture: enclave-side timing goes through the virtual
//! clock handed in by the simulator, never the host wall clock.

pub struct Stamper {
    last_ns: u64,
}

impl Stamper {
    pub fn stamp(&mut self, sim_elapsed_ns: u64) -> u64 {
        self.last_ns = sim_elapsed_ns;
        self.last_ns
    }
}
