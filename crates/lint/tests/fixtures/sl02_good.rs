//! SL02 conforming fixture: the secret-bearing type redacts itself with a
//! reviewed manual `Debug` impl instead of deriving one.

#[derive(Clone)]
pub struct SessionKey {
    bytes: [u8; 32],
}

impl std::fmt::Debug for SessionKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionKey").field("bytes", &"<redacted>").finish()
    }
}

impl SessionKey {
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}
