//! RSA public-key encryption and signatures (PKCS#1 v1.5-style padding).
//!
//! SCBR uses RSA on the client → producer leg of the subscription key
//! exchange: the client encrypts its subscription under the producer's
//! public key `PK`, and the producer signs re-encrypted subscriptions it
//! forwards to the routing enclave.
//!
//! Key generation draws two random primes (via [`crate::prime`]) and uses
//! the standard `e = 65537`. Decryption uses the CRT for a ~4× speedup.

use crate::bigint::BigUint;
use crate::error::CryptoError;
use crate::prime::generate_rsa_factor;
use crate::rng::CryptoRng;
use crate::sha256::Sha256;

/// Fixed public exponent (F4).
pub const PUBLIC_EXPONENT: u64 = 65537;

/// DER prefix of the `DigestInfo` structure for SHA-256 (RFC 8017 §9.2).
const SHA256_DIGEST_INFO: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

/// An RSA private key with CRT parameters.
#[derive(Clone)]
pub struct RsaPrivateKey {
    n: BigUint,
    d: BigUint,
    p: BigUint,
    q: BigUint,
    d_p: BigUint,
    d_q: BigUint,
    q_inv: BigUint,
}

impl std::fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print private material.
        f.debug_struct("RsaPrivateKey").field("modulus_bits", &self.n.bits()).finish()
    }
}

/// A matched RSA key pair.
///
/// ```
/// use scbr_crypto::{RsaKeyPair, CryptoRng};
///
/// let mut rng = CryptoRng::from_seed(7);
/// let pair = RsaKeyPair::generate(512, &mut rng)?;
/// let ct = pair.public().encrypt(b"secret subscription", &mut rng)?;
/// assert_eq!(pair.private().decrypt(&ct)?, b"secret subscription");
/// # Ok::<(), scbr_crypto::CryptoError>(())
/// ```
#[derive(Clone)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    private: RsaPrivateKey,
}

impl std::fmt::Debug for RsaKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Show only the public half; the private key redacts itself too.
        f.debug_struct("RsaKeyPair").field("public", &self.public).finish()
    }
}

impl RsaKeyPair {
    /// Generates a fresh key pair with an `bits`-bit modulus.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] if `bits < 256` (too small even
    /// for testing) or odd sizes are requested.
    pub fn generate(bits: usize, rng: &mut CryptoRng) -> Result<Self, CryptoError> {
        if bits < 256 || !bits.is_multiple_of(2) {
            return Err(CryptoError::InvalidKey {
                reason: "modulus size must be an even number >= 256",
            });
        }
        let e = BigUint::from_u64(PUBLIC_EXPONENT);
        loop {
            let p = generate_rsa_factor(bits / 2, &e, rng);
            let q = generate_rsa_factor(bits / 2, &e, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bits() != bits {
                continue;
            }
            let one = BigUint::one();
            let p1 = p.checked_sub(&one).expect("p >= 2");
            let q1 = q.checked_sub(&one).expect("q >= 2");
            let phi = p1.mul(&q1);
            let d = match e.mod_inverse(&phi) {
                Ok(d) => d,
                Err(_) => continue,
            };
            let d_p = d.rem(&p1);
            let d_q = d.rem(&q1);
            let q_inv = match q.mod_inverse(&p) {
                Ok(v) => v,
                Err(_) => continue,
            };
            let public = RsaPublicKey { n: n.clone(), e: e.clone() };
            let private = RsaPrivateKey { n, d, p, q, d_p, d_q, q_inv };
            return Ok(RsaKeyPair { public, private });
        }
    }

    /// The public half.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// The private half.
    pub fn private(&self) -> &RsaPrivateKey {
        &self.private
    }

    /// Splits the pair into its halves.
    pub fn into_parts(self) -> (RsaPublicKey, RsaPrivateKey) {
        (self.public, self.private)
    }
}

impl RsaPublicKey {
    /// Constructs a public key from raw `n` and `e`.
    pub fn from_parts(n: BigUint, e: BigUint) -> Self {
        RsaPublicKey { n, e }
    }

    /// Serialises the key as `len(n) (4 BE) || n || len(e) (4 BE) || e`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n.to_bytes_be();
        let e = self.e.to_bytes_be();
        let mut out = Vec::with_capacity(8 + n.len() + e.len());
        out.extend_from_slice(&(n.len() as u32).to_be_bytes());
        out.extend_from_slice(&n);
        out.extend_from_slice(&(e.len() as u32).to_be_bytes());
        out.extend_from_slice(&e);
        out
    }

    /// Parses a key serialised by [`RsaPublicKey::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidEncoding`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let err = CryptoError::InvalidEncoding { context: "rsa public key" };
        let read = |buf: &[u8]| -> Result<(BigUint, usize), CryptoError> {
            if buf.len() < 4 {
                return Err(err.clone());
            }
            let len = u32::from_be_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
            if buf.len() < 4 + len {
                return Err(err.clone());
            }
            Ok((BigUint::from_bytes_be(&buf[4..4 + len]), 4 + len))
        };
        let (n, used) = read(bytes)?;
        let (e, used2) = read(&bytes[used..])?;
        if used + used2 != bytes.len() || n.is_zero() || e.is_zero() {
            return Err(err);
        }
        Ok(RsaPublicKey { n, e })
    }

    /// Modulus size in bytes (k in RFC 8017 terms).
    pub fn modulus_len(&self) -> usize {
        self.n.bits().div_ceil(8)
    }

    /// Modulus.
    pub fn n(&self) -> &BigUint {
        &self.n
    }

    /// Public exponent.
    pub fn e(&self) -> &BigUint {
        &self.e
    }

    /// A short fingerprint of the key (first 8 bytes of SHA-256 of `n || e`).
    pub fn fingerprint(&self) -> [u8; 8] {
        let mut h = Sha256::new();
        h.update(&self.n.to_bytes_be());
        h.update(&self.e.to_bytes_be());
        let d = h.finalize();
        d[..8].try_into().expect("8 bytes")
    }

    /// Encrypts `msg` with PKCS#1 v1.5 padding (type 2).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLong`] if `msg` exceeds `k - 11`
    /// bytes for a `k`-byte modulus.
    pub fn encrypt(&self, msg: &[u8], rng: &mut CryptoRng) -> Result<Vec<u8>, CryptoError> {
        let k = self.modulus_len();
        if msg.len() + 11 > k {
            return Err(CryptoError::MessageTooLong);
        }
        // EM = 0x00 || 0x02 || PS (nonzero random) || 0x00 || M
        let mut em = vec![0u8; k];
        em[1] = 0x02;
        let ps_len = k - 3 - msg.len();
        for i in 0..ps_len {
            let mut b = [0u8; 1];
            loop {
                rng.fill(&mut b);
                if b[0] != 0 {
                    break;
                }
            }
            em[2 + i] = b[0];
        }
        em[2 + ps_len] = 0x00;
        em[3 + ps_len..].copy_from_slice(msg);
        let m = BigUint::from_bytes_be(&em);
        let c = m.modpow(&self.e, &self.n);
        c.to_bytes_be_padded(k)
    }

    /// Verifies a PKCS#1 v1.5 SHA-256 signature over `msg`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::VerificationFailed`] if the signature does not
    /// check out, and [`CryptoError::InvalidLength`] if it has the wrong
    /// size.
    pub fn verify(&self, msg: &[u8], signature: &[u8]) -> Result<(), CryptoError> {
        let k = self.modulus_len();
        if signature.len() != k {
            return Err(CryptoError::InvalidLength { context: "rsa signature" });
        }
        let s = BigUint::from_bytes_be(signature);
        if s >= self.n {
            return Err(CryptoError::VerificationFailed);
        }
        let em = s.modpow(&self.e, &self.n).to_bytes_be_padded(k)?;
        let expected = signature_encoding(msg, k)?;
        if em == expected {
            Ok(())
        } else {
            Err(CryptoError::VerificationFailed)
        }
    }
}

/// EMSA-PKCS1-v1_5 encoding of the SHA-256 digest of `msg`.
fn signature_encoding(msg: &[u8], k: usize) -> Result<Vec<u8>, CryptoError> {
    let digest = Sha256::digest(msg);
    let t_len = SHA256_DIGEST_INFO.len() + digest.len();
    if k < t_len + 11 {
        return Err(CryptoError::InvalidKey { reason: "modulus too small for sha-256 signature" });
    }
    let mut em = vec![0xffu8; k];
    em[0] = 0x00;
    em[1] = 0x01;
    em[k - t_len - 1] = 0x00;
    em[k - t_len..k - digest.len()].copy_from_slice(&SHA256_DIGEST_INFO);
    em[k - digest.len()..].copy_from_slice(&digest);
    Ok(em)
}

impl RsaPrivateKey {
    /// Modulus size in bytes.
    pub fn modulus_len(&self) -> usize {
        self.n.bits().div_ceil(8)
    }

    /// The private exponent `d` (exposed for auditing and tests).
    pub fn d(&self) -> &BigUint {
        &self.d
    }

    /// RSA private operation via the CRT.
    fn private_op(&self, c: &BigUint) -> BigUint {
        let m1 = c.modpow(&self.d_p, &self.p);
        let m2 = c.modpow(&self.d_q, &self.q);
        // h = q_inv * (m1 - m2) mod p
        let diff = if m1 >= m2 {
            m1.checked_sub(&m2).expect("ordered")
        } else {
            // (m1 - m2) mod p with m1 < m2: add p until positive.
            let m2_mod = m2.rem(&self.p);
            let m1_mod = m1.rem(&self.p);
            if m1_mod >= m2_mod {
                m1_mod.checked_sub(&m2_mod).expect("ordered")
            } else {
                self.p.add(&m1_mod).checked_sub(&m2_mod).expect("p + m1 >= m2")
            }
        };
        let h = self.q_inv.mul(&diff).rem(&self.p);
        m2.add(&h.mul(&self.q))
    }

    /// Decrypts a PKCS#1 v1.5 type-2 ciphertext.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::VerificationFailed`] on any padding problem
    /// (deliberately indistinguishable) and [`CryptoError::InvalidLength`]
    /// for wrong-size inputs.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.modulus_len();
        if ciphertext.len() != k || k < 11 {
            return Err(CryptoError::InvalidLength { context: "rsa ciphertext" });
        }
        let c = BigUint::from_bytes_be(ciphertext);
        if c >= self.n {
            return Err(CryptoError::VerificationFailed);
        }
        let em = self.private_op(&c).to_bytes_be_padded(k)?;
        if em[0] != 0x00 || em[1] != 0x02 {
            return Err(CryptoError::VerificationFailed);
        }
        // Find the 0x00 separator after at least 8 bytes of padding.
        let sep = em[2..].iter().position(|&b| b == 0).map(|i| i + 2);
        match sep {
            Some(i) if i >= 10 => Ok(em[i + 1..].to_vec()),
            _ => Err(CryptoError::VerificationFailed),
        }
    }

    /// Signs the SHA-256 digest of `msg` (PKCS#1 v1.5).
    ///
    /// # Errors
    ///
    /// Returns an error if the modulus is too small to hold the encoding.
    pub fn sign(&self, msg: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.modulus_len();
        let em = signature_encoding(msg, k)?;
        let m = BigUint::from_bytes_be(&em);
        let s = self.private_op(&m);
        s.to_bytes_be_padded(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_pair() -> RsaKeyPair {
        // 512-bit keys keep tests fast; generation is still exercised.
        let mut rng = CryptoRng::from_seed(1234);
        RsaKeyPair::generate(512, &mut rng).unwrap()
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let pair = test_pair();
        let mut rng = CryptoRng::from_seed(5);
        for msg in [&b""[..], b"x", b"hello scbr", &[0xffu8; 53]] {
            let ct = pair.public().encrypt(msg, &mut rng).unwrap();
            assert_eq!(ct.len(), pair.public().modulus_len());
            assert_eq!(pair.private().decrypt(&ct).unwrap(), msg);
        }
    }

    #[test]
    fn encryption_is_randomised() {
        let pair = test_pair();
        let mut rng = CryptoRng::from_seed(6);
        let a = pair.public().encrypt(b"same message", &mut rng).unwrap();
        let b = pair.public().encrypt(b"same message", &mut rng).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn message_too_long_rejected() {
        let pair = test_pair();
        let mut rng = CryptoRng::from_seed(7);
        let too_long = vec![1u8; pair.public().modulus_len() - 10];
        assert_eq!(pair.public().encrypt(&too_long, &mut rng), Err(CryptoError::MessageTooLong));
    }

    #[test]
    fn tampered_ciphertext_fails() {
        let pair = test_pair();
        let mut rng = CryptoRng::from_seed(8);
        let mut ct = pair.public().encrypt(b"secret", &mut rng).unwrap();
        ct[10] ^= 1;
        assert!(pair.private().decrypt(&ct).is_err());
    }

    #[test]
    fn wrong_length_ciphertext_fails() {
        let pair = test_pair();
        assert!(pair.private().decrypt(&[0u8; 10]).is_err());
    }

    #[test]
    fn sign_verify_round_trip() {
        let pair = test_pair();
        let sig = pair.private().sign(b"subscription: price < 50").unwrap();
        assert!(pair.public().verify(b"subscription: price < 50", &sig).is_ok());
    }

    #[test]
    fn signature_rejects_wrong_message() {
        let pair = test_pair();
        let sig = pair.private().sign(b"msg a").unwrap();
        assert_eq!(pair.public().verify(b"msg b", &sig), Err(CryptoError::VerificationFailed));
    }

    #[test]
    fn signature_rejects_tampering() {
        let pair = test_pair();
        let mut sig = pair.private().sign(b"msg").unwrap();
        sig[0] ^= 0x80;
        assert!(pair.public().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn signature_rejects_wrong_key() {
        let pair_a = test_pair();
        let mut rng = CryptoRng::from_seed(4321);
        let pair_b = RsaKeyPair::generate(512, &mut rng).unwrap();
        let sig = pair_a.private().sign(b"msg").unwrap();
        assert!(pair_b.public().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn generate_rejects_tiny_or_odd_sizes() {
        let mut rng = CryptoRng::from_seed(9);
        assert!(RsaKeyPair::generate(128, &mut rng).is_err());
        assert!(RsaKeyPair::generate(511, &mut rng).is_err());
    }

    #[test]
    fn fingerprint_is_stable_and_distinct() {
        let a = test_pair();
        let mut rng = CryptoRng::from_seed(99);
        let b = RsaKeyPair::generate(512, &mut rng).unwrap();
        assert_eq!(a.public().fingerprint(), a.public().fingerprint());
        assert_ne!(a.public().fingerprint(), b.public().fingerprint());
    }

    #[test]
    fn public_key_bytes_round_trip() {
        let pair = test_pair();
        let bytes = pair.public().to_bytes();
        let back = RsaPublicKey::from_bytes(&bytes).unwrap();
        assert_eq!(&back, pair.public());
        // Malformed inputs are rejected.
        assert!(RsaPublicKey::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(RsaPublicKey::from_bytes(&[]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(RsaPublicKey::from_bytes(&extra).is_err());
    }

    #[test]
    fn private_exponent_consistent_with_crt() {
        // e * d == 1 (mod lcm is implied); check the textbook identity
        // m^(e*d) == m (mod n) using the exposed d directly.
        let pair = test_pair();
        let m = BigUint::from_u64(0x1234_5678_9abc);
        let c = m.modpow(pair.public().e(), pair.public().n());
        let back = c.modpow(pair.private().d(), pair.public().n());
        assert_eq!(back, m);
    }

    #[test]
    fn debug_does_not_leak_private_key() {
        let pair = test_pair();
        let dbg = format!("{:?}", pair.private());
        assert!(dbg.contains("modulus_bits"));
        assert!(!dbg.to_lowercase().contains("d:"));
    }
}
