//! Probabilistic prime generation (trial division + Miller–Rabin).
//!
//! Used by [`crate::rsa`] for key generation.

use crate::bigint::BigUint;
use crate::rng::CryptoRng;

/// Small primes used for fast trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 60] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281,
];

/// Number of Miller–Rabin rounds; 2^-128 error bound for random candidates.
const MR_ROUNDS: usize = 40;

/// Returns true if `n` passes trial division and `rounds` Miller–Rabin
/// rounds with random bases.
pub fn is_probable_prime(n: &BigUint, rounds: usize, rng: &mut CryptoRng) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let sp = BigUint::from_u64(p);
        if n == &sp {
            return true;
        }
        if n.rem(&sp).is_zero() {
            return false;
        }
    }
    // Write n-1 = 2^s * d with d odd.
    let one = BigUint::one();
    let n_minus_1 = n.checked_sub(&one).expect("n >= 2");
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }
    let two = BigUint::from_u64(2);
    let n_minus_3 = match n.checked_sub(&BigUint::from_u64(3)) {
        Some(v) => v,
        // n < 3 was handled by the small-prime table above.
        None => return true,
    };
    'witness: for _ in 0..rounds {
        // Random base in [2, n-2].
        let a = BigUint::random_below(&n_minus_3, rng).add(&two);
        let mut x = a.modpow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = x.modpow(&two, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 8` (too small to be useful for RSA factors).
pub fn generate_prime(bits: usize, rng: &mut CryptoRng) -> BigUint {
    assert!(bits >= 8, "prime size too small");
    loop {
        let mut candidate = BigUint::random_bits(bits, rng);
        // Force odd.
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
            if candidate.bits() != bits {
                continue;
            }
        }
        if is_probable_prime(&candidate, MR_ROUNDS, rng) {
            return candidate;
        }
    }
}

/// Generates a probable safe-ish prime `p` with `gcd(p-1, e) == 1`,
/// as required for an RSA factor with public exponent `e`.
pub fn generate_rsa_factor(bits: usize, e: &BigUint, rng: &mut CryptoRng) -> BigUint {
    loop {
        let p = generate_prime(bits, rng);
        let p_minus_1 = p.checked_sub(&BigUint::one()).expect("p >= 2");
        if p_minus_1.gcd(e).is_one() {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn small_primes_are_prime() {
        let mut rng = CryptoRng::from_seed(1);
        for p in [2u64, 3, 5, 7, 11, 13, 97, 101, 257, 65537] {
            assert!(is_probable_prime(&b(p), 10, &mut rng), "{p} is prime");
        }
    }

    #[test]
    fn small_composites_are_composite() {
        let mut rng = CryptoRng::from_seed(2);
        for c in [0u64, 1, 4, 6, 9, 15, 21, 25, 91, 341, 561, 65536] {
            assert!(!is_probable_prime(&b(c), 10, &mut rng), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat but not Miller–Rabin.
        let mut rng = CryptoRng::from_seed(3);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 62745] {
            assert!(!is_probable_prime(&b(c), 20, &mut rng), "{c} is Carmichael");
        }
    }

    #[test]
    fn large_known_prime() {
        let mut rng = CryptoRng::from_seed(4);
        // 2^89 - 1 is a Mersenne prime.
        let p = BigUint::one().shl(89).checked_sub(&BigUint::one()).unwrap();
        assert!(is_probable_prime(&p, 20, &mut rng));
        // 2^87 - 1 = 3 * 7 * ... is composite.
        let c = BigUint::one().shl(87).checked_sub(&BigUint::one()).unwrap();
        assert!(!is_probable_prime(&c, 20, &mut rng));
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut rng = CryptoRng::from_seed(5);
        for bits in [32usize, 64, 128] {
            let p = generate_prime(bits, &mut rng);
            assert_eq!(p.bits(), bits);
            assert!(p.is_odd());
        }
    }

    #[test]
    fn rsa_factor_coprime_with_e() {
        let mut rng = CryptoRng::from_seed(6);
        let e = b(65537);
        let p = generate_rsa_factor(96, &e, &mut rng);
        let pm1 = p.checked_sub(&BigUint::one()).unwrap();
        assert!(pm1.gcd(&e).is_one());
    }
}
