//! Error type shared by all cryptographic operations in this crate.

use std::error::Error;
use std::fmt;

/// Errors produced by cryptographic operations.
///
/// The `Display` messages deliberately avoid leaking which internal check
/// failed for authenticated operations (padding vs MAC), mirroring standard
/// practice against oracle attacks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A ciphertext, tag or signature failed verification.
    VerificationFailed,
    /// The input has an invalid length for the requested operation.
    InvalidLength {
        /// What was being parsed or processed.
        context: &'static str,
    },
    /// Input could not be decoded (e.g. malformed Base64).
    InvalidEncoding {
        /// What was being decoded.
        context: &'static str,
    },
    /// A message is too large for the key (RSA) or mode in use.
    MessageTooLong,
    /// A key could not be generated or is structurally invalid.
    InvalidKey {
        /// Why the key was rejected.
        reason: &'static str,
    },
    /// An arithmetic precondition was violated (e.g. division by zero,
    /// non-invertible element).
    Arithmetic {
        /// Which precondition failed.
        reason: &'static str,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::VerificationFailed => write!(f, "verification failed"),
            CryptoError::InvalidLength { context } => {
                write!(f, "invalid length for {context}")
            }
            CryptoError::InvalidEncoding { context } => {
                write!(f, "invalid encoding for {context}")
            }
            CryptoError::MessageTooLong => write!(f, "message too long for key or mode"),
            CryptoError::InvalidKey { reason } => write!(f, "invalid key: {reason}"),
            CryptoError::Arithmetic { reason } => write!(f, "arithmetic error: {reason}"),
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_terse() {
        let errors = [
            CryptoError::VerificationFailed,
            CryptoError::InvalidLength { context: "aes key" },
            CryptoError::InvalidEncoding { context: "base64" },
            CryptoError::MessageTooLong,
            CryptoError::InvalidKey { reason: "modulus too small" },
            CryptoError::Arithmetic { reason: "division by zero" },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
