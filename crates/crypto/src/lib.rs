//! # scbr-crypto
//!
//! From-scratch cryptographic substrate for the SCBR reproduction.
//!
//! The original SCBR prototype ([Pires et al., Middleware '16]) used the
//! Crypto++ library outside the enclave and the Intel SGX SDK crypto inside
//! it, with **AES-CTR** for symmetric encryption of publication headers and
//! subscriptions, and **RSA** for the client → producer leg of the key
//! exchange. This crate implements those primitives (plus the supporting
//! hash/MAC/KDF machinery) with no external dependencies beyond a random
//! number generator, so that the whole system can be built and audited
//! offline.
//!
//! ## Contents
//!
//! * [`aes`] — AES-128/AES-256 block cipher (FIPS-197 key schedule).
//! * [`ctr`] — counter-mode stream encryption ([`ctr::AesCtr`]), as used for
//!   SCBR headers and subscriptions.
//! * [`authenc`] — encrypt-then-MAC authenticated encryption
//!   ([`authenc::SealedBox`]), used by the enclave simulator for sealing and
//!   by SCBR for signed subscription envelopes.
//! * [`sha256`], [`hmac`], [`hkdf`] — SHA-256, HMAC-SHA256 and HKDF.
//! * [`bigint`], [`prime`], [`rsa`] — multi-precision arithmetic, prime
//!   generation and RSA (PKCS#1 v1.5-style encryption and signatures).
//! * [`base64`] — the Base64 text codec the paper uses on the wire.
//! * [`ct`] — constant-time comparison helpers.
//! * [`rng`] — deterministic and OS-seeded random sources.
//!
//! ## Quick example
//!
//! ```
//! use scbr_crypto::ctr::{AesCtr, SymmetricKey};
//!
//! let key = SymmetricKey::from_bytes([7u8; 16]);
//! let nonce = [1u8; 8];
//! let mut data = b"symbol=HAL price=49.5".to_vec();
//! AesCtr::new(&key, nonce).apply(&mut data); // encrypt in place
//! AesCtr::new(&key, nonce).apply(&mut data); // decrypt in place
//! assert_eq!(&data, b"symbol=HAL price=49.5");
//! ```
//!
//! ## Security note
//!
//! These implementations favour clarity and portability over side-channel
//! hardening (table-based AES, non-blinded RSA). They are faithful
//! functional substitutes for the paper's crypto stack, suitable for
//! research and reproduction, **not** for production deployment.
//!
//! [Pires et al., Middleware '16]: https://doi.org/10.1145/2988336.2988346

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod authenc;
pub mod base64;
pub mod bigint;
pub mod ct;
pub mod ctr;
pub mod error;
pub mod hkdf;
pub mod hmac;
pub mod prime;
pub mod rng;
pub mod rsa;
pub mod sha256;

pub use authenc::SealedBox;
pub use bigint::BigUint;
pub use ctr::{AesCtr, SymmetricKey};
pub use error::CryptoError;
pub use rng::CryptoRng;
pub use rsa::{RsaKeyPair, RsaPrivateKey, RsaPublicKey};
pub use sha256::Sha256;
