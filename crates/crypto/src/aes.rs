//! AES block cipher (FIPS-197), supporting 128- and 256-bit keys.
//!
//! SCBR encrypts publication headers and subscriptions with AES in CTR mode
//! (see [`crate::ctr`]); this module provides the underlying block
//! permutation. The implementation is a straightforward byte-oriented one —
//! clear, portable, and adequate for a research reproduction.

use crate::error::CryptoError;

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box, computed from [`SBOX`] at first use.
fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &s) in SBOX.iter().enumerate() {
        inv[s as usize] = i as u8;
    }
    inv
}

/// Round constants for key expansion.
const RCON: [u8; 15] =
    [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a];

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;

/// Multiplication by x in GF(2^8) with the AES polynomial.
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// General multiplication in GF(2^8).
#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// An expanded AES key, usable for both block encryption and decryption.
///
/// ```
/// use scbr_crypto::aes::Aes;
///
/// let aes = Aes::new(&[0u8; 16])?;
/// let mut block = [0u8; 16];
/// aes.encrypt_block(&mut block);
/// aes.decrypt_block(&mut block);
/// assert_eq!(block, [0u8; 16]);
/// # Ok::<(), scbr_crypto::CryptoError>(())
/// ```
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    rounds: usize,
}

impl std::fmt::Debug for Aes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes").field("rounds", &self.rounds).finish()
    }
}

impl Aes {
    /// Expands `key` (16 or 32 bytes) into round keys.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] for any other key size.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        let (nk, rounds) = match key.len() {
            16 => (4usize, 10usize),
            32 => (8, 14),
            _ => return Err(CryptoError::InvalidLength { context: "aes key" }),
        };
        let total_words = 4 * (rounds + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
            }
            let prev = w[i - nk];
            w.push([prev[0] ^ temp[0], prev[1] ^ temp[1], prev[2] ^ temp[2], prev[3] ^ temp[3]]);
        }
        let round_keys = w
            .chunks_exact(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (j, word) in c.iter().enumerate() {
                    rk[4 * j..4 * j + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        Ok(Aes { round_keys, rounds })
    }

    /// Number of rounds (10 for AES-128, 14 for AES-256).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..self.rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        let inv = inv_sbox();
        add_round_key(block, &self.round_keys[self.rounds]);
        for round in (1..self.rounds).rev() {
            inv_shift_rows(block);
            inv_sub_bytes(block, &inv);
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
        }
        inv_shift_rows(block);
        inv_sub_bytes(block, &inv);
        add_round_key(block, &self.round_keys[0]);
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut [u8; 16], inv: &[u8; 256]) {
    for b in state.iter_mut() {
        *b = inv[*b as usize];
    }
}

/// State is column-major: byte `state[4*c + r]` is row `r`, column `c`.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

#[inline]
fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

#[inline]
fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        state[4 * c + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        state[4 * c + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        state[4 * c + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    // FIPS-197 Appendix B: AES-128.
    #[test]
    fn fips197_aes128() {
        let key = unhex("2b7e151628aed2a6abf7158809cf4f3c");
        let aes = Aes::new(&key).unwrap();
        let mut block: [u8; 16] = unhex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), unhex("3925841d02dc09fbdc118597196a0b32"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), unhex("3243f6a8885a308d313198a2e0370734"));
    }

    // FIPS-197 Appendix C.1: AES-128 with sequential key/plaintext.
    #[test]
    fn fips197_appendix_c1() {
        let key = unhex("000102030405060708090a0b0c0d0e0f");
        let aes = Aes::new(&key).unwrap();
        let mut block: [u8; 16] = unhex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), unhex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    // FIPS-197 Appendix C.3: AES-256.
    #[test]
    fn fips197_appendix_c3_aes256() {
        let key = unhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let aes = Aes::new(&key).unwrap();
        assert_eq!(aes.rounds(), 14);
        let mut block: [u8; 16] = unhex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), unhex("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), unhex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn rejects_bad_key_sizes() {
        for n in [0usize, 8, 15, 17, 24, 31, 33] {
            assert!(
                Aes::new(&vec![0u8; n]).is_err(),
                "key length {n} should be rejected (only 16/32 supported)"
            );
        }
    }

    #[test]
    fn encrypt_decrypt_round_trip_many() {
        let aes = Aes::new(&[0x42; 32]).unwrap();
        for i in 0..64u8 {
            let mut block = [i; 16];
            let orig = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, orig);
            aes.decrypt_block(&mut block);
            assert_eq!(block, orig);
        }
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes::new(&[7u8; 16]).unwrap();
        let dbg = format!("{aes:?}");
        assert!(!dbg.contains("round_keys"));
        assert!(dbg.contains("rounds"));
    }
}
