//! HKDF-SHA256 (RFC 5869).
//!
//! Used for deriving session keys in the remote-attestation handshake and
//! for enclave sealing-key derivation in the SGX simulator.

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;

/// HKDF-Extract: derives a pseudorandom key from input keying material.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    HmacSha256::mac(salt, ikm)
}

/// HKDF-Expand: expands `prk` into `out.len()` bytes of output keying
/// material bound to `info`.
///
/// # Panics
///
/// Panics if more than `255 * 32` bytes are requested, per RFC 5869.
pub fn expand(prk: &[u8], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * DIGEST_LEN, "hkdf output too long");
    let mut t: Vec<u8> = Vec::new();
    let mut generated = 0usize;
    let mut counter = 1u8;
    while generated < out.len() {
        let mut mac = HmacSha256::new(prk);
        mac.update(&t);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (out.len() - generated).min(DIGEST_LEN);
        out[generated..generated + take].copy_from_slice(&block[..take]);
        generated += take;
        t = block.to_vec();
        counter = counter.wrapping_add(1);
    }
}

/// One-shot HKDF: extract-then-expand.
///
/// ```
/// let mut key = [0u8; 16];
/// scbr_crypto::hkdf::derive(b"salt", b"shared secret", b"scbr session", &mut key);
/// assert_ne!(key, [0u8; 16]);
/// ```
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], out: &mut [u8]) {
    let prk = extract(salt, ikm);
    expand(&prk, info, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(hex(&prk), "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case_3() {
        let ikm = [0x0bu8; 22];
        let prk = extract(b"", &ikm);
        let mut okm = [0u8; 42];
        expand(&prk, b"", &mut okm);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn different_info_different_keys() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        derive(b"s", b"ikm", b"context a", &mut a);
        derive(b"s", b"ikm", b"context b", &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn multi_block_expand() {
        let prk = extract(b"salt", b"ikm");
        let mut long = vec![0u8; 100];
        expand(&prk, b"info", &mut long);
        let mut short = vec![0u8; 32];
        expand(&prk, b"info", &mut short);
        // Prefix property: the first block of a longer expansion matches.
        assert_eq!(&long[..32], &short[..]);
    }
}
