//! Multi-precision unsigned integer arithmetic.
//!
//! Provides exactly the operations RSA needs — comparison, ring arithmetic,
//! Knuth division, Montgomery exponentiation and modular inversion — with a
//! compact little-endian `u32`-limb representation. Written for clarity and
//! testability rather than raw speed; 2048-bit operations are easily fast
//! enough for the SCBR workloads.

use crate::error::CryptoError;
use crate::rng::CryptoRng;
use std::cmp::Ordering;
use std::fmt;

/// Arbitrary-precision unsigned integer.
///
/// Internally a normalised little-endian vector of 32-bit limbs (no trailing
/// zero limbs; zero is the empty vector).
///
/// ```
/// use scbr_crypto::BigUint;
///
/// let a = BigUint::from_u64(1 << 40);
/// let b = BigUint::from_u64(3);
/// assert_eq!((&a * &b).to_string(), "3298534883328");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

const LIMB_BITS: usize = 32;

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut n = BigUint { limbs: vec![v as u32, (v >> 32) as u32] };
        n.normalize();
        n
    }

    /// Builds from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(4));
        let mut iter = bytes.rchunks(4);
        for chunk in &mut iter {
            let mut limb = 0u32;
            for &b in chunk {
                limb = (limb << 8) | b as u32;
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serialises to minimal big-endian bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most-significant limb.
                let skip = bytes.iter().take_while(|&&b| b == 0).count();
                out.extend_from_slice(&bytes[skip..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serialises to big-endian bytes left-padded to exactly `len` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Result<Vec<u8>, CryptoError> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return Err(CryptoError::InvalidLength { context: "padded biguint" });
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Ok(out)
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// True iff the value is even (0 is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// True iff the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Value of bit `i` (bit 0 is least significant).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / LIMB_BITS;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % LIMB_BITS)) & 1 == 1
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * LIMB_BITS + (32 - top.leading_zeros() as usize),
        }
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | (self.limbs[1] as u64) << 32),
            _ => None,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let sum = limb as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
            out.push(sum as u32);
            carry = sum >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let diff =
                self.limbs[i] as i64 - other.limbs.get(i).copied().unwrap_or(0) as i64 - borrow;
            if diff < 0 {
                out.push((diff + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(diff as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        Some(n)
    }

    /// `self * other` (schoolbook).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u64 + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self << bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / LIMB_BITS;
        let bit_shift = bits % LIMB_BITS;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self >> bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / LIMB_BITS;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % LIMB_BITS;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            for i in limb_shift..self.limbs.len() {
                let lo = self.limbs[i] >> bit_shift;
                let hi = self.limbs.get(i + 1).map(|&l| l << (32 - bit_shift)).unwrap_or(0);
                out.push(lo | hi);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Quotient and remainder of `self / divisor` (Knuth Algorithm D).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Arithmetic`] if `divisor` is zero.
    pub fn checked_div_rem(&self, divisor: &BigUint) -> Result<(BigUint, BigUint), CryptoError> {
        if divisor.is_zero() {
            return Err(CryptoError::Arithmetic { reason: "division by zero" });
        }
        if self < divisor {
            return Ok((BigUint::zero(), self.clone()));
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0] as u64;
            let mut q = Vec::with_capacity(self.limbs.len());
            let mut rem = 0u64;
            for &l in self.limbs.iter().rev() {
                let cur = (rem << 32) | l as u64;
                q.push((cur / d) as u32);
                rem = cur % d;
            }
            q.reverse();
            let mut qn = BigUint { limbs: q };
            qn.normalize();
            return Ok((qn, BigUint::from_u64(rem)));
        }

        // Knuth TAOCP vol. 2, Algorithm D, base 2^32.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let v = divisor.shl(shift).limbs;
        let mut u = self.shl(shift).limbs;
        let n = v.len();
        u.push(0);
        let m = u.len() - n - 1;
        let mut q = vec![0u32; m + 1];
        let b = 1u64 << 32;

        for j in (0..=m).rev() {
            let top = ((u[j + n] as u64) << 32) | u[j + n - 1] as u64;
            let mut qhat = top / v[n - 1] as u64;
            let mut rhat = top % v[n - 1] as u64;
            while qhat >= b || qhat * v[n - 2] as u64 > ((rhat << 32) | u[j + n - 2] as u64) {
                qhat -= 1;
                rhat += v[n - 1] as u64;
                if rhat >= b {
                    break;
                }
            }
            // Multiply-and-subtract qhat * v from u[j .. j+n+1].
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * v[i] as u64 + carry;
                carry = p >> 32;
                let t = u[j + i] as i64 - (p as u32) as i64 - borrow;
                if t < 0 {
                    u[j + i] = (t + b as i64) as u32;
                    borrow = 1;
                } else {
                    u[j + i] = t as u32;
                    borrow = 0;
                }
            }
            let t = u[j + n] as i64 - carry as i64 - borrow;
            if t < 0 {
                // qhat was one too large: add v back.
                u[j + n] = (t + b as i64) as u32;
                qhat -= 1;
                let mut carry2 = 0u64;
                for i in 0..n {
                    let s = u[j + i] as u64 + v[i] as u64 + carry2;
                    u[j + i] = s as u32;
                    carry2 = s >> 32;
                }
                u[j + n] = u[j + n].wrapping_add(carry2 as u32);
            } else {
                u[j + n] = t as u32;
            }
            q[j] = qhat as u32;
        }

        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        let mut rem = BigUint { limbs: u[..n].to_vec() };
        rem.normalize();
        Ok((quotient, rem.shr(shift)))
    }

    /// Panicking version of [`BigUint::checked_div_rem`].
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        self.checked_div_rem(divisor).expect("division by zero")
    }

    /// `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Uses Montgomery multiplication when `m` is odd (the RSA case) and a
    /// generic square-and-multiply with Knuth reduction otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulus must be nonzero");
        if m.is_one() {
            return BigUint::zero();
        }
        if exp.is_zero() {
            return BigUint::one();
        }
        if m.is_odd() {
            let ctx = Montgomery::new(m);
            return ctx.modpow(self, exp);
        }
        // Generic path for even moduli (not used by RSA, kept for
        // completeness).
        let mut base = self.rem(m);
        let mut result = BigUint::one();
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = result.mul(&base).rem(m);
            }
            base = base.mul(&base).rem(m);
        }
        result
    }

    /// Greatest common divisor (binary-free Euclid).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse `self^-1 mod m`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Arithmetic`] if the inverse does not exist
    /// (i.e. `gcd(self, m) != 1`) or `m < 2`.
    pub fn mod_inverse(&self, m: &BigUint) -> Result<BigUint, CryptoError> {
        if m.is_zero() || m.is_one() {
            return Err(CryptoError::Arithmetic { reason: "modulus must be at least 2" });
        }
        // Extended Euclid maintaining only the coefficient of `self`,
        // tracked with an explicit sign.
        let mut r0 = self.rem(m);
        let mut r1 = m.clone();
        let mut t0 = Signed::positive(BigUint::one());
        let mut t1 = Signed::positive(BigUint::zero());
        while !r1.is_zero() {
            let (q, r) = r0.div_rem(&r1);
            let t = t0.sub(&t1.mul_uint(&q));
            r0 = r1;
            r1 = r;
            t0 = t1;
            t1 = t;
        }
        if !r0.is_one() {
            return Err(CryptoError::Arithmetic { reason: "element not invertible" });
        }
        Ok(t0.reduce_mod(m))
    }

    /// Uniformly random value with exactly `bits` bits (top bit set).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn random_bits(bits: usize, rng: &mut CryptoRng) -> BigUint {
        assert!(bits > 0, "bit length must be positive");
        let n_limbs = bits.div_ceil(LIMB_BITS);
        let mut limbs = Vec::with_capacity(n_limbs);
        for _ in 0..n_limbs {
            limbs.push(rng.next_u32());
        }
        // Mask off excess and force the top bit.
        let top_bits = bits - (n_limbs - 1) * LIMB_BITS;
        let mask = if top_bits == 32 { u32::MAX } else { (1u32 << top_bits) - 1 };
        let last = limbs.last_mut().expect("at least one limb");
        *last &= mask;
        *last |= 1 << (top_bits - 1);
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Uniformly random value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below(bound: &BigUint, rng: &mut CryptoRng) -> BigUint {
        assert!(!bound.is_zero(), "bound must be positive");
        let bits = bound.bits();
        loop {
            // Sample `bits` random bits without forcing the top bit, then
            // reject values >= bound.
            let n_limbs = bits.div_ceil(LIMB_BITS);
            let mut limbs = Vec::with_capacity(n_limbs);
            for _ in 0..n_limbs {
                limbs.push(rng.next_u32());
            }
            let top_bits = bits - (n_limbs - 1) * LIMB_BITS;
            let mask = if top_bits == 32 { u32::MAX } else { (1u32 << top_bits) - 1 };
            *limbs.last_mut().expect("at least one limb") &= mask;
            let mut candidate = BigUint { limbs };
            candidate.normalize();
            if &candidate < bound {
                return candidate;
            }
        }
    }
}

/// Minimal signed value used only inside the extended Euclid.
#[derive(Clone, Debug)]
struct Signed {
    mag: BigUint,
    negative: bool,
}

impl Signed {
    fn positive(mag: BigUint) -> Self {
        Signed { mag, negative: false }
    }

    fn mul_uint(&self, u: &BigUint) -> Signed {
        Signed { mag: self.mag.mul(u), negative: self.negative && !u.is_zero() }
    }

    fn sub(&self, other: &Signed) -> Signed {
        match (self.negative, other.negative) {
            (false, true) => Signed { mag: self.mag.add(&other.mag), negative: false },
            (true, false) => Signed { mag: self.mag.add(&other.mag), negative: true },
            (sn, _) => {
                // Same sign: subtract magnitudes.
                if self.mag >= other.mag {
                    Signed {
                        mag: self.mag.checked_sub(&other.mag).expect("mag ordered"),
                        negative: sn,
                    }
                } else {
                    Signed {
                        mag: other.mag.checked_sub(&self.mag).expect("mag ordered"),
                        negative: !sn,
                    }
                }
            }
        }
    }

    fn reduce_mod(&self, m: &BigUint) -> BigUint {
        let r = self.mag.rem(m);
        if self.negative && !r.is_zero() {
            m.checked_sub(&r).expect("r < m")
        } else {
            r
        }
    }
}

/// Montgomery context for fast modular multiplication modulo an odd modulus.
struct Montgomery {
    n: BigUint,
    /// `-n^{-1} mod 2^32`.
    n0_inv: u32,
    /// `R^2 mod n` where `R = 2^(32 * limbs)`.
    rr: BigUint,
    limbs: usize,
}

impl Montgomery {
    fn new(n: &BigUint) -> Self {
        debug_assert!(n.is_odd());
        let limbs = n.limbs.len();
        // Newton iteration for the inverse of n[0] modulo 2^32.
        let n0 = n.limbs[0];
        let mut inv = 1u32;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();
        let r = BigUint::one().shl(32 * limbs);
        let rr = r.mul(&r).rem(n);
        Montgomery { n: n.clone(), n0_inv, rr, limbs }
    }

    /// CIOS Montgomery multiplication: returns `a * b * R^-1 mod n`.
    fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let s = self.limbs;
        let mut t = vec![0u32; s + 2];
        for i in 0..s {
            let ai = a.limbs.get(i).copied().unwrap_or(0) as u64;
            // t += a[i] * b
            let mut carry = 0u64;
            for (j, tj) in t.iter_mut().enumerate().take(s) {
                let bj = b.limbs.get(j).copied().unwrap_or(0) as u64;
                let sum = *tj as u64 + ai * bj + carry;
                *tj = sum as u32;
                carry = sum >> 32;
            }
            let sum = t[s] as u64 + carry;
            t[s] = sum as u32;
            t[s + 1] = t[s + 1].wrapping_add((sum >> 32) as u32);

            // m = t[0] * n0_inv mod 2^32; t += m * n; t >>= 32
            let m = (t[0].wrapping_mul(self.n0_inv)) as u64;
            // t[0] + m*n[0] == 0 mod 2^32 by construction, keep only carry.
            let mut carry = (t[0] as u64 + m * self.n.limbs[0] as u64) >> 32;
            for j in 1..s {
                let sum = t[j] as u64 + m * self.n.limbs[j] as u64 + carry;
                t[j - 1] = sum as u32;
                carry = sum >> 32;
            }
            let sum = t[s] as u64 + carry;
            t[s - 1] = sum as u32;
            let sum2 = t[s + 1] as u64 + (sum >> 32);
            t[s] = sum2 as u32;
            t[s + 1] = (sum2 >> 32) as u32;
        }
        let mut result = BigUint { limbs: t[..=s].to_vec() };
        result.normalize();
        if result >= self.n {
            result = result.checked_sub(&self.n).expect("result >= n");
        }
        result
    }

    fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let base_red = base.rem(&self.n);
        let mont_base = self.mont_mul(&base_red, &self.rr);
        // mont(1) = R mod n.
        let mut acc = self.mont_mul(&BigUint::one(), &self.rr);
        for i in (0..exp.bits()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &mont_base);
            }
        }
        self.mont_mul(&acc, &BigUint::one())
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl std::ops::Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        BigUint::add(self, rhs)
    }
}

impl std::ops::Sub for &BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics on underflow; use [`BigUint::checked_sub`] to handle it.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs).expect("biguint subtraction underflow")
    }
}

impl std::ops::Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::mul(self, rhs)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{self:x})")
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                write!(f, "{limb:x}")?;
            } else {
                write!(f, "{limb:08x}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let billion = BigUint::from_u64(1_000_000_000);
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(&billion);
            chunks.push(r.to_u64().expect("remainder fits u64"));
            cur = q;
        }
        write!(f, "{}", chunks.pop().expect("nonzero"))?;
        for c in chunks.iter().rev() {
            write!(f, "{c:09}")?;
        }
        Ok(())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        let mut bytes = v.to_be_bytes().to_vec();
        while bytes.first() == Some(&0) {
            bytes.remove(0);
        }
        BigUint::from_bytes_be(&bytes)
    }

    #[test]
    fn construction_and_display() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::one().to_string(), "1");
        assert_eq!(BigUint::from_u64(123456789012345).to_string(), "123456789012345");
        assert_eq!(
            big(340282366920938463463374607431768211455).to_string(),
            "340282366920938463463374607431768211455"
        );
    }

    #[test]
    fn bytes_round_trip() {
        for v in [0u128, 1, 255, 256, 1 << 32, u128::MAX] {
            let n = big(v);
            assert_eq!(BigUint::from_bytes_be(&n.to_bytes_be()), n);
        }
        // Leading zeros in input are ignored.
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 1, 0]), big(256));
    }

    #[test]
    fn padded_bytes() {
        let n = big(0x1234);
        assert_eq!(n.to_bytes_be_padded(4).unwrap(), vec![0, 0, 0x12, 0x34]);
        assert!(n.to_bytes_be_padded(1).is_err());
    }

    #[test]
    fn add_sub_round_trip() {
        let a = big(0xffff_ffff_ffff_ffff_ffff);
        let b = big(0x1_0000_0000);
        let sum = a.add(&b);
        assert_eq!(sum.checked_sub(&b).unwrap(), a);
        assert_eq!(sum.checked_sub(&a).unwrap(), b);
        assert!(b.checked_sub(&a).is_none());
    }

    #[test]
    fn mul_known_values() {
        assert_eq!(big(0xffff_ffff).mul(&big(0xffff_ffff)), big(0xffff_fffe_0000_0001));
        assert_eq!(BigUint::zero().mul(&big(42)), BigUint::zero());
        let a = big(123456789123456789);
        let b = big(987654321987654321);
        assert_eq!(a.mul(&b).to_string(), "121932631356500531347203169112635269");
    }

    #[test]
    fn shifts() {
        let n = big(0b1011);
        assert_eq!(n.shl(0), n);
        assert_eq!(n.shl(4), big(0b1011_0000));
        assert_eq!(n.shl(100).shr(100), n);
        assert_eq!(n.shr(2), big(0b10));
        assert_eq!(n.shr(64), BigUint::zero());
        assert_eq!(BigUint::zero().shl(50), BigUint::zero());
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(big(0x8000_0000).bits(), 32);
        assert_eq!(big(0x1_0000_0000).bits(), 33);
        let n = big(0b1010);
        assert!(!n.bit(0));
        assert!(n.bit(1));
        assert!(!n.bit(2));
        assert!(n.bit(3));
        assert!(!n.bit(100));
    }

    #[test]
    fn div_rem_single_limb() {
        let (q, r) = big(1000).div_rem(&big(7));
        assert_eq!(q, big(142));
        assert_eq!(r, big(6));
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = big(0xffee_ddcc_bbaa_9988_7766_5544_3322_1100);
        let b = big(0x1_2345_6789_abcd);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn div_rem_knuth_add_back_case() {
        // Exercises the rare "add back" branch: crafted so qhat overshoots.
        let a = BigUint::from_bytes_be(&[
            0x7f, 0xff, 0xff, 0xff, 0x80, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        ]);
        let b = BigUint::from_bytes_be(&[0x80, 0x00, 0x00, 0x00, 0xff, 0xff, 0xff, 0xff]);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn div_by_zero_is_error() {
        assert!(big(5).checked_div_rem(&BigUint::zero()).is_err());
    }

    #[test]
    fn modpow_small_values() {
        // 3^10 mod 1000 = 59049 mod 1000 = 49
        assert_eq!(big(3).modpow(&big(10), &big(1000)), big(49));
        // Fermat: 2^(p-1) mod p = 1 for prime p
        let p = big(1_000_000_007);
        assert_eq!(big(2).modpow(&p.checked_sub(&BigUint::one()).unwrap(), &p), BigUint::one());
        // Odd modulus (Montgomery path)
        assert_eq!(big(7).modpow(&big(13), &big(101)), big(7u128.pow(13) % 101));
        // Even modulus (generic path)
        assert_eq!(big(7).modpow(&big(13), &big(100)), big(7u128.pow(13) % 100));
    }

    #[test]
    fn modpow_edge_cases() {
        assert_eq!(big(5).modpow(&BigUint::zero(), &big(7)), BigUint::one());
        assert_eq!(big(5).modpow(&big(100), &BigUint::one()), BigUint::zero());
        assert_eq!(BigUint::zero().modpow(&big(5), &big(7)), BigUint::zero());
    }

    #[test]
    fn modpow_large_odd_modulus() {
        // 2^128-159 is prime; check Fermat's little theorem via Montgomery.
        let p = big(340282366920938463463374607431768211297);
        let pm1 = p.checked_sub(&BigUint::one()).unwrap();
        for base in [2u128, 3, 65537, 123456789] {
            assert_eq!(big(base).modpow(&pm1, &p), BigUint::one(), "base {base}");
        }
    }

    #[test]
    fn gcd_known() {
        assert_eq!(big(48).gcd(&big(36)), big(12));
        assert_eq!(big(17).gcd(&big(5)), BigUint::one());
        assert_eq!(big(0).gcd(&big(5)), big(5));
    }

    #[test]
    fn mod_inverse_known() {
        // 3 * 4 = 12 = 1 mod 11
        assert_eq!(big(3).mod_inverse(&big(11)).unwrap(), big(4));
        // 65537^-1 mod a 128-bit prime, verified by multiplication.
        let p = big(340282366920938463463374607431768211297);
        let e = big(65537);
        let d = e.mod_inverse(&p).unwrap();
        assert_eq!(e.mul(&d).rem(&p), BigUint::one());
    }

    #[test]
    fn mod_inverse_nonexistent() {
        assert!(big(4).mod_inverse(&big(8)).is_err());
        assert!(big(0).mod_inverse(&big(7)).is_err());
        assert!(big(3).mod_inverse(&BigUint::one()).is_err());
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = CryptoRng::from_seed(11);
        for bits in [1usize, 8, 31, 32, 33, 256, 1000] {
            let n = BigUint::random_bits(bits, &mut rng);
            assert_eq!(n.bits(), bits, "requested {bits}");
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = CryptoRng::from_seed(12);
        let bound = big(1000);
        for _ in 0..200 {
            assert!(BigUint::random_below(&bound, &mut rng) < bound);
        }
    }

    #[test]
    fn ordering() {
        assert!(big(5) < big(6));
        assert!(big(1 << 40) > big(u32::MAX as u128));
        assert_eq!(big(7).cmp(&big(7)), Ordering::Equal);
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(format!("{:x}", BigUint::zero()), "0");
        assert_eq!(format!("{:x}", big(0xdeadbeef)), "deadbeef");
        assert_eq!(format!("{:x}", big(0x1_0000_0001)), "100000001");
    }
}
