//! Authenticated encryption: AES-CTR + HMAC-SHA256 (encrypt-then-MAC).
//!
//! The SGX simulator uses this construction for sealed storage (real SGX
//! uses AES-GCM inside `sgx_seal_data`; encrypt-then-MAC with independent
//! keys provides the same integrity + confidentiality contract), and SCBR
//! uses it for the signed, encrypted subscription envelopes forwarded by
//! producers to routers.

use crate::ctr::{AesCtr, SymmetricKey, NONCE_LEN};
use crate::error::CryptoError;
use crate::hkdf;
use crate::hmac::{HmacSha256, TAG_LEN};
use crate::rng::CryptoRng;

/// Authenticated encryption box deriving independent cipher and MAC keys
/// from one master key.
///
/// Wire format: `nonce (8) || ciphertext || tag (32)`. The optional
/// *associated data* is authenticated but not encrypted.
///
/// ```
/// use scbr_crypto::{SealedBox, CryptoRng};
/// use scbr_crypto::ctr::SymmetricKey;
///
/// let key = SymmetricKey::from_bytes([1u8; 16]);
/// let sealed = SealedBox::new(&key);
/// let mut rng = CryptoRng::from_seed(3);
/// let ct = sealed.seal(b"enclave state", b"header-v1", &mut rng);
/// assert_eq!(sealed.open(&ct, b"header-v1")?, b"enclave state");
/// # Ok::<(), scbr_crypto::CryptoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SealedBox {
    enc_key: SymmetricKey,
    mac_key: [u8; 32],
}

impl SealedBox {
    /// Derives the cipher and MAC sub-keys from `master` via HKDF.
    pub fn new(master: &SymmetricKey) -> Self {
        let mut enc = [0u8; 16];
        let mut mac = [0u8; 32];
        hkdf::derive(b"scbr-sealedbox", master.as_bytes(), b"enc", &mut enc);
        hkdf::derive(b"scbr-sealedbox", master.as_bytes(), b"mac", &mut mac);
        SealedBox { enc_key: SymmetricKey::from_bytes(enc), mac_key: mac }
    }

    /// Encrypts and authenticates `plaintext`, binding `aad` into the tag.
    pub fn seal(&self, plaintext: &[u8], aad: &[u8], rng: &mut CryptoRng) -> Vec<u8> {
        let mut out = AesCtr::encrypt_with_nonce(&self.enc_key, rng, plaintext);
        let tag = self.tag(&out, aad);
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies and decrypts a sealed message.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::VerificationFailed`] if the tag does not match
    /// (tampered ciphertext, wrong key, or wrong associated data) and
    /// [`CryptoError::InvalidLength`] for impossible sizes.
    pub fn open(&self, sealed: &[u8], aad: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < NONCE_LEN + TAG_LEN {
            return Err(CryptoError::InvalidLength { context: "sealed message" });
        }
        let (body, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = self.tag(body, aad);
        if !crate::ct::ct_eq(&expected, tag) {
            return Err(CryptoError::VerificationFailed);
        }
        AesCtr::decrypt_with_nonce(&self.enc_key, body)
    }

    fn tag(&self, nonce_and_ct: &[u8], aad: &[u8]) -> [u8; TAG_LEN] {
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(&(aad.len() as u64).to_be_bytes());
        mac.update(aad);
        mac.update(nonce_and_ct);
        mac.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SealedBox, CryptoRng) {
        (SealedBox::new(&SymmetricKey::from_bytes([7u8; 16])), CryptoRng::from_seed(10))
    }

    #[test]
    fn seal_open_round_trip() {
        let (sb, mut rng) = setup();
        for len in [0usize, 1, 16, 100, 4096] {
            let msg = vec![0x5au8; len];
            let sealed = sb.seal(&msg, b"aad", &mut rng);
            assert_eq!(sealed.len(), len + NONCE_LEN + TAG_LEN);
            assert_eq!(sb.open(&sealed, b"aad").unwrap(), msg);
        }
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let (sb, mut rng) = setup();
        let mut sealed = sb.seal(b"data", b"", &mut rng);
        sealed[NONCE_LEN] ^= 1;
        assert_eq!(sb.open(&sealed, b""), Err(CryptoError::VerificationFailed));
    }

    #[test]
    fn tampered_nonce_rejected() {
        let (sb, mut rng) = setup();
        let mut sealed = sb.seal(b"data", b"", &mut rng);
        sealed[0] ^= 1;
        assert!(sb.open(&sealed, b"").is_err());
    }

    #[test]
    fn tampered_tag_rejected() {
        let (sb, mut rng) = setup();
        let mut sealed = sb.seal(b"data", b"", &mut rng);
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        assert!(sb.open(&sealed, b"").is_err());
    }

    #[test]
    fn wrong_aad_rejected() {
        let (sb, mut rng) = setup();
        let sealed = sb.seal(b"data", b"version 1", &mut rng);
        assert!(sb.open(&sealed, b"version 2").is_err());
        assert!(sb.open(&sealed, b"version 1").is_ok());
    }

    #[test]
    fn wrong_key_rejected() {
        let (sb, mut rng) = setup();
        let other = SealedBox::new(&SymmetricKey::from_bytes([8u8; 16]));
        let sealed = sb.seal(b"data", b"", &mut rng);
        assert!(other.open(&sealed, b"").is_err());
    }

    #[test]
    fn too_short_rejected() {
        let (sb, _) = setup();
        assert!(matches!(sb.open(&[0u8; 10], b""), Err(CryptoError::InvalidLength { .. })));
    }

    #[test]
    fn seal_is_randomised() {
        let (sb, mut rng) = setup();
        let a = sb.seal(b"same", b"", &mut rng);
        let b = sb.seal(b"same", b"", &mut rng);
        assert_ne!(a, b);
    }
}
