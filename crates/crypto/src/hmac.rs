//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//!
//! Used to authenticate sealed enclave state, subscription envelopes and the
//! simulator's memory-integrity tree.

use crate::ct::ct_eq;
use crate::sha256::{Sha256, DIGEST_LEN};

/// Length of an HMAC-SHA256 tag in bytes.
pub const TAG_LEN: usize = DIGEST_LEN;

/// Incremental HMAC-SHA256 computation.
///
/// ```
/// use scbr_crypto::hmac::HmacSha256;
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"The quick brown fox jumps over the lazy dog");
/// let tag = mac.finalize();
/// assert!(HmacSha256::verify(b"key", b"The quick brown fox jumps over the lazy dog", &tag));
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Creates a MAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; 64];
        if key.len() > 64 {
            key_block[..DIGEST_LEN].copy_from_slice(&Sha256::digest(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; 64];
        let mut opad = [0x5cu8; 64];
        for i in 0..64 {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacSha256 { inner, outer }
    }

    /// Feeds message bytes into the MAC.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Consumes the MAC and returns the 32-byte tag.
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }

    /// One-shot MAC of `data` under `key`.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; TAG_LEN] {
        let mut m = HmacSha256::new(key);
        m.update(data);
        m.finalize()
    }

    /// Verifies `tag` over `data` under `key` in constant time.
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        let expected = Self::mac(key, data);
        ct_eq(&expected, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let tag = HmacSha256::mac(&[0x0b; 20], b"Hi There");
        assert_eq!(hex(&tag), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    #[test]
    fn rfc4231_case_3() {
        let tag = HmacSha256::mac(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(hex(&tag), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let tag = HmacSha256::mac(
            &[0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(hex(&tag), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = HmacSha256::mac(b"k", b"msg");
        assert!(HmacSha256::verify(b"k", b"msg", &tag));
        assert!(!HmacSha256::verify(b"k", b"msh", &tag));
        assert!(!HmacSha256::verify(b"j", b"msg", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!HmacSha256::verify(b"k", b"msg", &bad));
        assert!(!HmacSha256::verify(b"k", b"msg", &tag[..31]));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut m = HmacSha256::new(b"key");
        m.update(b"hello ");
        m.update(b"world");
        assert_eq!(m.finalize(), HmacSha256::mac(b"key", b"hello world"));
    }
}
