//! Random number source used across the workspace.
//!
//! Wraps [`rand`]'s `StdRng` behind a small, deterministic-friendly facade:
//! every experiment in the reproduction is seeded so that datasets, keys and
//! nonces are reproducible run-to-run.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A seedable cryptographic-quality random source.
///
/// ```
/// use scbr_crypto::rng::CryptoRng;
///
/// let mut a = CryptoRng::from_seed(1);
/// let mut b = CryptoRng::from_seed(1);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic per seed
/// ```
#[derive(Debug, Clone)]
pub struct CryptoRng {
    inner: StdRng,
}

impl CryptoRng {
    /// Creates a deterministic generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        CryptoRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Creates a generator seeded from the operating system.
    pub fn from_os() -> Self {
        CryptoRng { inner: StdRng::from_os_rng() }
    }

    /// Fills `buf` with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }

    /// Returns a uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Returns a uniformly random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    /// Returns a uniformly random value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a uniformly random `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Flips a coin that lands heads with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Access the underlying [`rand`] generator for use with `rand` APIs.
    pub fn as_rand_core(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = CryptoRng::from_seed(7);
        let mut b = CryptoRng::from_seed(7);
        let mut c = CryptoRng::from_seed(8);
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = CryptoRng::from_seed(1);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..100 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = CryptoRng::from_seed(2);
        for _ in 0..1000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = CryptoRng::from_seed(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn fill_changes_buffer() {
        let mut rng = CryptoRng::from_seed(4);
        let mut buf = [0u8; 64];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
