//! Constant-time comparison helpers.

/// Compares two byte slices in time independent of where they differ.
///
/// Returns `false` immediately if the lengths differ (length is assumed
/// public).
///
/// ```
/// assert!(scbr_crypto::ct::ct_eq(b"abc", b"abc"));
/// assert!(!scbr_crypto::ct::ct_eq(b"abc", b"abd"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Selects `a` if `choice` is true, `b` otherwise, without branching on
/// `choice` at byte level.
pub fn ct_select(choice: bool, a: u8, b: u8) -> u8 {
    let mask = (choice as u8).wrapping_neg();
    (a & mask) | (b & !mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_basic() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"x", b"x"));
        assert!(!ct_eq(b"x", b"y"));
        assert!(!ct_eq(b"x", b"xx"));
        assert!(!ct_eq(b"ab", b"ba"));
    }

    #[test]
    fn select_basic() {
        assert_eq!(ct_select(true, 0xaa, 0x55), 0xaa);
        assert_eq!(ct_select(false, 0xaa, 0x55), 0x55);
    }
}
