//! Base64 (RFC 4648, standard alphabet, with `=` padding).
//!
//! The SCBR prototype serialises both plaintext and encrypted messages in
//! Base64 text format before handing them to the transport; [`encode`] and
//! [`decode`] provide that codec.

use crate::error::CryptoError;

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `data` as standard Base64 with padding.
///
/// ```
/// assert_eq!(scbr_crypto::base64::encode(b"SCBR"), "U0NCUg==");
/// ```
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        if chunk.len() > 1 {
            out.push(ALPHABET[(triple >> 6) as usize & 0x3f] as char);
        } else {
            out.push('=');
        }
        if chunk.len() > 2 {
            out.push(ALPHABET[triple as usize & 0x3f] as char);
        } else {
            out.push('=');
        }
    }
    out
}

fn decode_char(c: u8) -> Option<u8> {
    match c {
        b'A'..=b'Z' => Some(c - b'A'),
        b'a'..=b'z' => Some(c - b'a' + 26),
        b'0'..=b'9' => Some(c - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decodes standard Base64 (padding required, no embedded whitespace).
///
/// # Errors
///
/// Returns [`CryptoError::InvalidEncoding`] if the input length is not a
/// multiple of four, contains characters outside the standard alphabet, or
/// has misplaced padding.
///
/// ```
/// let bytes = scbr_crypto::base64::decode("U0NCUg==")?;
/// assert_eq!(bytes, b"SCBR");
/// # Ok::<(), scbr_crypto::CryptoError>(())
/// ```
pub fn decode(text: &str) -> Result<Vec<u8>, CryptoError> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(CryptoError::InvalidEncoding { context: "base64" });
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, quad) in bytes.chunks(4).enumerate() {
        let last = i == bytes.len() / 4 - 1;
        let pad = quad.iter().filter(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && !last) {
            return Err(CryptoError::InvalidEncoding { context: "base64" });
        }
        // Padding may only appear as the final one or two characters.
        if (pad >= 1 && quad[3] != b'=') || (pad == 2 && quad[2] != b'=') {
            return Err(CryptoError::InvalidEncoding { context: "base64" });
        }
        let mut triple: u32 = 0;
        for (j, &c) in quad.iter().enumerate() {
            let v = if c == b'=' {
                0
            } else {
                decode_char(c).ok_or(CryptoError::InvalidEncoding { context: "base64" })? as u32
            };
            triple |= v << (18 - 6 * j);
        }
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
        // Reject non-canonical encodings where discarded bits are nonzero.
        let kept_bits = 8 * (3 - pad);
        let mask = if kept_bits == 24 { 0 } else { (1u32 << (24 - kept_bits)) - 1 };
        if triple & mask != 0 {
            return Err(CryptoError::InvalidEncoding { context: "base64" });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_test_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", ""),
            (b"f", "Zg=="),
            (b"fo", "Zm8="),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg=="),
            (b"fooba", "Zm9vYmE="),
            (b"foobar", "Zm9vYmFy"),
        ];
        for (plain, encoded) in cases {
            assert_eq!(encode(plain), *encoded);
            assert_eq!(decode(encoded).unwrap(), *plain);
        }
    }

    #[test]
    fn rejects_bad_length() {
        assert!(decode("abc").is_err());
        assert!(decode("a").is_err());
    }

    #[test]
    fn rejects_bad_characters() {
        assert!(decode("Zm9v!A==").is_err());
        assert!(decode("Zm 9").is_err());
    }

    #[test]
    fn rejects_misplaced_padding() {
        assert!(decode("Zg==Zg==").is_err());
        assert!(decode("Z===").is_err());
        assert!(decode("=g==").is_err());
        assert!(decode("Zg=g").is_err());
    }

    #[test]
    fn rejects_non_canonical_trailing_bits() {
        // "Zh==" decodes to the same byte count as "Zg==" but with nonzero
        // discarded bits.
        assert!(decode("Zh==").is_err());
        assert_eq!(decode("Zg==").unwrap(), b"f");
    }

    #[test]
    fn binary_round_trip() {
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }
}
