//! AES in counter (CTR) mode — the symmetric cipher used by SCBR for
//! publication headers and subscriptions.
//!
//! The counter block is formed from an 8-byte nonce followed by a 64-bit
//! big-endian block counter, matching the common Crypto++/SDK layout the
//! paper's prototype used.

use crate::aes::{Aes, BLOCK_LEN};
use crate::error::CryptoError;
use crate::rng::CryptoRng;

/// Length in bytes of the per-message CTR nonce.
pub const NONCE_LEN: usize = 8;

/// A 128- or 256-bit symmetric key for AES-CTR.
///
/// In SCBR terms this is `SK`, the key shared between the publisher and the
/// code running inside the enclave.
#[derive(Clone, PartialEq, Eq)]
pub struct SymmetricKey {
    bytes: Vec<u8>,
}

impl std::fmt::Debug for SymmetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SymmetricKey({} bits, redacted)", self.bytes.len() * 8)
    }
}

impl SymmetricKey {
    /// Wraps an existing 16- or 32-byte key.
    pub fn from_bytes<B: Into<Vec<u8>>>(bytes: B) -> Self {
        let bytes = bytes.into();
        assert!(bytes.len() == 16 || bytes.len() == 32, "symmetric keys are 16 or 32 bytes");
        SymmetricKey { bytes }
    }

    /// Parses a key, returning an error instead of panicking on bad length.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] unless the slice is 16 or 32
    /// bytes long.
    pub fn try_from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() == 16 || bytes.len() == 32 {
            Ok(SymmetricKey { bytes: bytes.to_vec() })
        } else {
            Err(CryptoError::InvalidLength { context: "symmetric key" })
        }
    }

    /// Generates a fresh random 128-bit key.
    pub fn generate(rng: &mut CryptoRng) -> Self {
        let mut bytes = vec![0u8; 16];
        rng.fill(&mut bytes);
        SymmetricKey { bytes }
    }

    /// Generates a fresh random 256-bit key.
    pub fn generate_256(rng: &mut CryptoRng) -> Self {
        let mut bytes = vec![0u8; 32];
        rng.fill(&mut bytes);
        SymmetricKey { bytes }
    }

    /// Raw key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// AES-CTR keystream generator and in-place cipher.
///
/// Encryption and decryption are the same operation; call [`AesCtr::apply`]
/// with the same key and nonce to invert.
///
/// ```
/// use scbr_crypto::ctr::{AesCtr, SymmetricKey};
///
/// let key = SymmetricKey::from_bytes([9u8; 32]);
/// let mut msg = b"price<50".to_vec();
/// AesCtr::new(&key, [0; 8]).apply(&mut msg);
/// AesCtr::new(&key, [0; 8]).apply(&mut msg);
/// assert_eq!(msg, b"price<50");
/// ```
#[derive(Debug, Clone)]
pub struct AesCtr {
    aes: Aes,
    nonce: [u8; NONCE_LEN],
    counter: u64,
    keystream: [u8; BLOCK_LEN],
    /// Offset of the next unused keystream byte; `BLOCK_LEN` means empty.
    ks_used: usize,
}

impl AesCtr {
    /// Creates a CTR cipher positioned at block 0 of the keystream.
    pub fn new(key: &SymmetricKey, nonce: [u8; NONCE_LEN]) -> Self {
        let aes = Aes::new(key.as_bytes()).expect("SymmetricKey guarantees a valid length");
        AesCtr { aes, nonce, counter: 0, keystream: [0u8; BLOCK_LEN], ks_used: BLOCK_LEN }
    }

    /// Repositions the keystream at an arbitrary block index (random access).
    pub fn seek_block(&mut self, block: u64) {
        self.counter = block;
        self.ks_used = BLOCK_LEN;
    }

    /// Restarts the stream at block 0 under a new nonce, reusing the
    /// expanded key schedule — [`AesCtr::new`] pays the AES key expansion
    /// (and its heap allocations) on every call, which dominates when
    /// decrypting many short headers under one session key.
    pub fn reset_nonce(&mut self, nonce: [u8; NONCE_LEN]) {
        self.nonce = nonce;
        self.counter = 0;
        self.ks_used = BLOCK_LEN;
    }

    /// Like [`AesCtr::decrypt_with_nonce_into`], but reuses `self`'s key
    /// schedule: the message's nonce replaces the cipher's stream position
    /// via [`AesCtr::reset_nonce`]. Allocation-free once `out` has
    /// capacity.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if `message` is shorter than
    /// a nonce; `out` is left cleared in that case.
    pub fn decrypt_into(&mut self, message: &[u8], out: &mut Vec<u8>) -> Result<(), CryptoError> {
        out.clear();
        if message.len() < NONCE_LEN {
            return Err(CryptoError::InvalidLength { context: "ctr message" });
        }
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&message[..NONCE_LEN]);
        self.reset_nonce(nonce);
        out.extend_from_slice(&message[NONCE_LEN..]);
        self.apply(out);
        Ok(())
    }

    fn refill(&mut self) {
        let mut block = [0u8; BLOCK_LEN];
        block[..NONCE_LEN].copy_from_slice(&self.nonce);
        block[NONCE_LEN..].copy_from_slice(&self.counter.to_be_bytes());
        self.aes.encrypt_block(&mut block);
        self.keystream = block;
        self.ks_used = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// XORs the keystream into `data`, advancing the stream position.
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            if self.ks_used == BLOCK_LEN {
                self.refill();
            }
            *byte ^= self.keystream[self.ks_used];
            self.ks_used += 1;
        }
    }

    /// Convenience: encrypts `plaintext` with a freshly drawn nonce, returning
    /// `nonce || ciphertext`.
    pub fn encrypt_with_nonce(
        key: &SymmetricKey,
        rng: &mut CryptoRng,
        plaintext: &[u8],
    ) -> Vec<u8> {
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill(&mut nonce);
        let mut out = Vec::with_capacity(NONCE_LEN + plaintext.len());
        out.extend_from_slice(&nonce);
        out.extend_from_slice(plaintext);
        AesCtr::new(key, nonce).apply(&mut out[NONCE_LEN..]);
        out
    }

    /// Inverse of [`AesCtr::encrypt_with_nonce`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if `message` is shorter than a
    /// nonce.
    pub fn decrypt_with_nonce(key: &SymmetricKey, message: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let mut out = Vec::new();
        AesCtr::decrypt_with_nonce_into(key, message, &mut out)?;
        Ok(out)
    }

    /// Like [`AesCtr::decrypt_with_nonce`], but writes the plaintext into
    /// `out` (cleared first) so a caller on a hot path can reuse one buffer
    /// across messages instead of allocating per call.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if `message` is shorter than a
    /// nonce; `out` is left cleared in that case.
    pub fn decrypt_with_nonce_into(
        key: &SymmetricKey,
        message: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CryptoError> {
        out.clear();
        if message.len() < NONCE_LEN {
            return Err(CryptoError::InvalidLength { context: "ctr message" });
        }
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&message[..NONCE_LEN]);
        out.extend_from_slice(&message[NONCE_LEN..]);
        AesCtr::new(key, nonce).apply(out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_lengths() {
        let key = SymmetricKey::from_bytes([3u8; 16]);
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 100, 1000] {
            let plain: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let mut data = plain.clone();
            AesCtr::new(&key, [5; 8]).apply(&mut data);
            if len > 0 {
                assert_ne!(data, plain, "len {len}");
            }
            AesCtr::new(&key, [5; 8]).apply(&mut data);
            assert_eq!(data, plain, "len {len}");
        }
    }

    #[test]
    fn chunked_apply_equals_oneshot() {
        let key = SymmetricKey::from_bytes([0xaau8; 32]);
        let plain: Vec<u8> = (0..257u32).map(|i| i as u8).collect();
        let mut oneshot = plain.clone();
        AesCtr::new(&key, [1; 8]).apply(&mut oneshot);
        let mut chunked = plain.clone();
        let mut ctr = AesCtr::new(&key, [1; 8]);
        for chunk in chunked.chunks_mut(7) {
            ctr.apply(chunk);
        }
        assert_eq!(oneshot, chunked);
    }

    #[test]
    fn different_nonce_different_ciphertext() {
        let key = SymmetricKey::from_bytes([1u8; 16]);
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        AesCtr::new(&key, [0; 8]).apply(&mut a);
        AesCtr::new(&key, [1; 8]).apply(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn seek_block_gives_random_access() {
        let key = SymmetricKey::from_bytes([9u8; 16]);
        let mut full = vec![0u8; 64];
        AesCtr::new(&key, [2; 8]).apply(&mut full);
        // Decrypt only the third block via seek.
        let mut third = vec![0u8; 16];
        let mut ctr = AesCtr::new(&key, [2; 8]);
        ctr.seek_block(2);
        ctr.apply(&mut third);
        assert_eq!(&full[32..48], &third[..]);
    }

    #[test]
    fn nonce_framed_round_trip() {
        let key = SymmetricKey::from_bytes([7u8; 16]);
        let mut rng = CryptoRng::from_seed(42);
        let msg = b"symbol=INTC volume>10000";
        let wire = AesCtr::encrypt_with_nonce(&key, &mut rng, msg);
        assert_eq!(wire.len(), msg.len() + NONCE_LEN);
        let back = AesCtr::decrypt_with_nonce(&key, &wire).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn decrypt_rejects_truncated() {
        let key = SymmetricKey::from_bytes([7u8; 16]);
        assert!(AesCtr::decrypt_with_nonce(&key, &[1, 2, 3]).is_err());
    }

    #[test]
    fn decrypt_into_reuses_buffer() {
        let key = SymmetricKey::from_bytes([7u8; 16]);
        let mut rng = CryptoRng::from_seed(9);
        let mut out = Vec::new();
        for msg in [&b"first message"[..], b"a longer second message", b"x"] {
            let wire = AesCtr::encrypt_with_nonce(&key, &mut rng, msg);
            AesCtr::decrypt_with_nonce_into(&key, &wire, &mut out).unwrap();
            assert_eq!(out, msg);
        }
        // Errors clear the buffer rather than leaving stale plaintext.
        assert!(AesCtr::decrypt_with_nonce_into(&key, &[1, 2], &mut out).is_err());
        assert!(out.is_empty());
    }

    #[test]
    fn decrypt_into_reuses_key_schedule() {
        let key = SymmetricKey::from_bytes([7u8; 16]);
        let mut rng = CryptoRng::from_seed(9);
        let mut cipher = AesCtr::new(&key, [0; NONCE_LEN]);
        let mut out = Vec::new();
        // One cipher decrypts many independently-nonced messages, and
        // agrees with the schedule-per-call path.
        for msg in [&b"first message"[..], b"a longer second message", b"x", b""] {
            let wire = AesCtr::encrypt_with_nonce(&key, &mut rng, msg);
            cipher.decrypt_into(&wire, &mut out).unwrap();
            assert_eq!(out, msg);
            assert_eq!(out, AesCtr::decrypt_with_nonce(&key, &wire).unwrap());
        }
        assert!(cipher.decrypt_into(&[1, 2], &mut out).is_err());
        assert!(out.is_empty());
    }

    #[test]
    fn key_debug_redacts() {
        let key = SymmetricKey::from_bytes([7u8; 16]);
        assert_eq!(format!("{key:?}"), "SymmetricKey(128 bits, redacted)");
    }

    #[test]
    fn try_from_bytes_validates() {
        assert!(SymmetricKey::try_from_bytes(&[0; 16]).is_ok());
        assert!(SymmetricKey::try_from_bytes(&[0; 32]).is_ok());
        assert!(SymmetricKey::try_from_bytes(&[0; 24]).is_err());
        assert!(SymmetricKey::try_from_bytes(&[]).is_err());
    }
}
