//! Property-based tests for the crypto substrate.
//!
//! The `BigUint` properties cross-check the hand-written limb arithmetic
//! against Rust's native `u128`, which covers every carry/borrow path that
//! fits in two limbs plus a generous multi-limb regime via concatenation.

use proptest::prelude::*;
use scbr_crypto::base64;
use scbr_crypto::ctr::{AesCtr, SymmetricKey};
use scbr_crypto::hmac::HmacSha256;
use scbr_crypto::rng::CryptoRng;
use scbr_crypto::sha256::Sha256;
use scbr_crypto::{BigUint, SealedBox};

fn big(v: u128) -> BigUint {
    BigUint::from_bytes_be(&v.to_be_bytes())
}

fn to_u128(n: &BigUint) -> Option<u128> {
    let bytes = n.to_bytes_be();
    if bytes.len() > 16 {
        return None;
    }
    let mut buf = [0u8; 16];
    buf[16 - bytes.len()..].copy_from_slice(&bytes);
    Some(u128::from_be_bytes(buf))
}

proptest! {
    #[test]
    fn biguint_add_matches_u128(a in 0u128..=u128::MAX / 2, b in 0u128..=u128::MAX / 2) {
        prop_assert_eq!(to_u128(&big(a).add(&big(b))), Some(a + b));
    }

    #[test]
    fn biguint_sub_matches_u128(a: u128, b: u128) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(to_u128(&big(hi).checked_sub(&big(lo)).unwrap()), Some(hi - lo));
        if hi != lo {
            prop_assert!(big(lo).checked_sub(&big(hi)).is_none());
        }
    }

    #[test]
    fn biguint_mul_matches_u128(a in 0u128..=u64::MAX as u128, b in 0u128..=u64::MAX as u128) {
        prop_assert_eq!(to_u128(&big(a).mul(&big(b))), Some(a * b));
    }

    #[test]
    fn biguint_div_rem_matches_u128(a: u128, b in 1u128..=u128::MAX) {
        let (q, r) = big(a).div_rem(&big(b));
        prop_assert_eq!(to_u128(&q), Some(a / b));
        prop_assert_eq!(to_u128(&r), Some(a % b));
    }

    #[test]
    fn biguint_div_rem_reconstructs_multilimb(a_bytes in proptest::collection::vec(any::<u8>(), 1..64),
                                              b_bytes in proptest::collection::vec(any::<u8>(), 1..32)) {
        let a = BigUint::from_bytes_be(&a_bytes);
        let b = BigUint::from_bytes_be(&b_bytes);
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn biguint_shift_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..40), shift in 0usize..200) {
        let n = BigUint::from_bytes_be(&bytes);
        prop_assert_eq!(n.shl(shift).shr(shift), n);
    }

    #[test]
    fn biguint_modpow_matches_u128(base in 0u64.., exp in 0u64..256, m in 2u64..) {
        let expected = {
            // Reference square-and-multiply over u128.
            let (mut result, mut b, mut e) = (1u128, base as u128 % m as u128, exp);
            while e > 0 {
                if e & 1 == 1 { result = result * b % m as u128; }
                b = b * b % m as u128;
                e >>= 1;
            }
            result
        };
        prop_assert_eq!(to_u128(&big(base as u128).modpow(&big(exp as u128), &big(m as u128))),
                        Some(expected));
    }

    #[test]
    fn biguint_mod_inverse_is_inverse(a in 1u64.., m in 2u64..) {
        let am = big(a as u128);
        let mm = big(m as u128);
        match am.mod_inverse(&mm) {
            Ok(inv) => prop_assert_eq!(am.mul(&inv).rem(&mm), BigUint::one()),
            Err(_) => prop_assert!(!am.gcd(&mm).is_one() || mm.is_one()),
        }
    }

    #[test]
    fn biguint_bytes_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let n = BigUint::from_bytes_be(&bytes);
        let canonical = n.to_bytes_be();
        prop_assert_eq!(BigUint::from_bytes_be(&canonical), n);
        // Canonical form has no leading zeros.
        prop_assert!(canonical.first() != Some(&0));
    }

    #[test]
    fn base64_round_trip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(base64::decode(&base64::encode(&data)).unwrap(), data);
    }

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                         split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn aes_ctr_round_trip(data in proptest::collection::vec(any::<u8>(), 0..512),
                          key_seed: u64, nonce: [u8; 8]) {
        let mut rng = CryptoRng::from_seed(key_seed);
        let key = SymmetricKey::generate(&mut rng);
        let mut buf = data.clone();
        AesCtr::new(&key, nonce).apply(&mut buf);
        AesCtr::new(&key, nonce).apply(&mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn hmac_verify_rejects_bit_flips(data in proptest::collection::vec(any::<u8>(), 1..128),
                                     flip_byte in 0usize..32, flip_bit in 0u8..8) {
        let tag = HmacSha256::mac(b"key", &data);
        let mut bad = tag;
        bad[flip_byte] ^= 1 << flip_bit;
        prop_assert!(HmacSha256::verify(b"key", &data, &tag));
        prop_assert!(!HmacSha256::verify(b"key", &data, &bad));
    }

    #[test]
    fn sealed_box_round_trip_and_tamper(data in proptest::collection::vec(any::<u8>(), 0..256),
                                        aad in proptest::collection::vec(any::<u8>(), 0..32),
                                        seed: u64, flip in 0usize..64) {
        let mut rng = CryptoRng::from_seed(seed);
        let key = SymmetricKey::generate(&mut rng);
        let sb = SealedBox::new(&key);
        let sealed = sb.seal(&data, &aad, &mut rng);
        prop_assert_eq!(sb.open(&sealed, &aad).unwrap(), data);
        let mut bad = sealed.clone();
        let idx = flip % bad.len();
        bad[idx] ^= 1;
        prop_assert!(sb.open(&bad, &aad).is_err());
    }
}
