//! Known-answer tests for the crypto substrate against published vectors:
//!
//! * SHA-256 — FIPS 180-4 examples (NIST CAVP short/long messages)
//! * AES-128/AES-256 block — FIPS 197 appendix C
//! * AES-CTR — NIST SP 800-38A F.5.1 / F.5.5
//! * HMAC-SHA256 — RFC 4231 test cases 1–7
//! * HKDF-SHA256 — RFC 5869 test cases 1–3
//!
//! The property tests cross-check internal consistency (round trips,
//! incremental == one-shot); these vectors pin the primitives to the
//! *standard* algorithms, so a self-consistent-but-wrong implementation
//! cannot slip through.

use scbr_crypto::aes::Aes;
use scbr_crypto::ctr::{AesCtr, SymmetricKey};
use scbr_crypto::hkdf;
use scbr_crypto::hmac::HmacSha256;
use scbr_crypto::sha256::Sha256;

fn hex(s: &str) -> Vec<u8> {
    let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    assert!(s.len().is_multiple_of(2), "odd hex length");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("valid hex"))
        .collect()
}

// -------------------------------------------------------------------------
// SHA-256 (FIPS 180-4)
// -------------------------------------------------------------------------

#[test]
fn sha256_fips180_vectors() {
    let cases: &[(&[u8], &str)] = &[
        (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
        (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
    ];
    for (message, expected) in cases {
        assert_eq!(Sha256::digest(message).to_vec(), hex(expected));
    }
}

#[test]
fn sha256_million_a() {
    let mut h = Sha256::new();
    // Fed in uneven chunks to also exercise buffering across block
    // boundaries.
    let chunk = [b'a'; 997];
    let mut remaining = 1_000_000usize;
    while remaining > 0 {
        let n = remaining.min(chunk.len());
        h.update(&chunk[..n]);
        remaining -= n;
    }
    assert_eq!(
        h.finalize().to_vec(),
        hex("cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0")
    );
}

// -------------------------------------------------------------------------
// AES block cipher (FIPS 197 appendix C)
// -------------------------------------------------------------------------

#[test]
fn aes128_fips197_example() {
    let aes = Aes::new(&hex("000102030405060708090a0b0c0d0e0f")).unwrap();
    let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
    aes.encrypt_block(&mut block);
    assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    aes.decrypt_block(&mut block);
    assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
}

#[test]
fn aes256_fips197_example() {
    let aes =
        Aes::new(&hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")).unwrap();
    let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
    aes.encrypt_block(&mut block);
    assert_eq!(block.to_vec(), hex("8ea2b7ca516745bfeafc49904b496089"));
    aes.decrypt_block(&mut block);
    assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
}

// -------------------------------------------------------------------------
// AES-CTR (NIST SP 800-38A)
// -------------------------------------------------------------------------

/// SP 800-38A's four-block plaintext, shared by every CTR vector.
const CTR_PLAINTEXT: &str = "6bc1bee22e409f96e93d7e117393172a\
                             ae2d8a571e03ac9c9eb76fac45af8e51\
                             30c81c46a35ce411e5fbc1191a0a52ef\
                             f69f2445df4f9b17ad2b417be66c3710";

/// The standard initial counter block `f0f1..ff` split into this
/// implementation's (nonce, initial block counter) layout.
const CTR_NONCE: [u8; 8] = [0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7];
const CTR_INITIAL_BLOCK: u64 = 0xf8f9_fafb_fcfd_feff;

fn ctr_check(key_hex: &str, expected_ct_hex: &str) {
    let key = SymmetricKey::from_bytes(hex(key_hex));
    let mut data = hex(CTR_PLAINTEXT);
    let mut ctr = AesCtr::new(&key, CTR_NONCE);
    ctr.seek_block(CTR_INITIAL_BLOCK);
    ctr.apply(&mut data);
    assert_eq!(data, hex(expected_ct_hex));

    // Decryption is the same keystream; also exercises random access.
    let mut ctr = AesCtr::new(&key, CTR_NONCE);
    ctr.seek_block(CTR_INITIAL_BLOCK);
    ctr.apply(&mut data);
    assert_eq!(data, hex(CTR_PLAINTEXT));

    // Seeking straight to the third block must reproduce its keystream.
    let mut tail = hex(CTR_PLAINTEXT)[32..48].to_vec();
    let mut ctr = AesCtr::new(&key, CTR_NONCE);
    ctr.seek_block(CTR_INITIAL_BLOCK.wrapping_add(2));
    ctr.apply(&mut tail);
    assert_eq!(tail, hex(expected_ct_hex)[32..48].to_vec());
}

#[test]
fn aes128_ctr_sp800_38a_f_5_1() {
    ctr_check(
        "2b7e151628aed2a6abf7158809cf4f3c",
        "874d6191b620e3261bef6864990db6ce\
         9806f66b7970fdff8617187bb9fffdff\
         5ae4df3edbd5d35e5b4f09020db03eab\
         1e031dda2fbe03d1792170a0f3009cee",
    );
}

#[test]
fn aes256_ctr_sp800_38a_f_5_5() {
    ctr_check(
        "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4",
        "601ec313775789a5b7a7f504bbf3d228\
         f443e3ca4d62b59aca84e990cacaf5c5\
         2b0930daa23de94ce87017ba2d84988d\
         dfc9c58db67aada613c2dd08457941a6",
    );
}

// -------------------------------------------------------------------------
// HMAC-SHA256 (RFC 4231)
// -------------------------------------------------------------------------

#[test]
fn hmac_sha256_rfc4231_vectors() {
    // (key, data, full-length tag)
    let cases: &[(Vec<u8>, Vec<u8>, &str)] = &[
        // Case 1
        (
            vec![0x0b; 20],
            b"Hi There".to_vec(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
        ),
        // Case 2: key shorter than block size
        (
            b"Jefe".to_vec(),
            b"what do ya want for nothing?".to_vec(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
        ),
        // Case 3: combined key/data repetition
        (
            vec![0xaa; 20],
            vec![0xdd; 50],
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
        ),
        // Case 4
        (
            hex("0102030405060708090a0b0c0d0e0f10111213141516171819"),
            vec![0xcd; 50],
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
        ),
        // Case 6: key larger than block size (hashed first)
        (
            vec![0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
        ),
        // Case 7: key and data both larger than block size
        (
            vec![0xaa; 131],
            b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm."
                .to_vec(),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2",
        ),
    ];
    for (key, data, expected) in cases {
        assert_eq!(HmacSha256::mac(key, data).to_vec(), hex(expected));
        assert!(HmacSha256::verify(key, data, &hex(expected)));
    }
}

#[test]
fn hmac_sha256_rfc4231_case5_truncated() {
    // Case 5 specifies a tag truncated to 128 bits.
    let tag = HmacSha256::mac(&[0x0c; 20], b"Test With Truncation");
    assert_eq!(tag[..16].to_vec(), hex("a3b6167473100ee06e0c796c2955552b"));
}

// -------------------------------------------------------------------------
// HKDF-SHA256 (RFC 5869)
// -------------------------------------------------------------------------

struct HkdfCase {
    ikm: Vec<u8>,
    salt: Vec<u8>,
    info: Vec<u8>,
    prk: &'static str,
    okm: &'static str,
}

#[test]
fn hkdf_sha256_rfc5869_vectors() {
    let cases = [
        // Test case 1: basic
        HkdfCase {
            ikm: vec![0x0b; 22],
            salt: hex("000102030405060708090a0b0c"),
            info: hex("f0f1f2f3f4f5f6f7f8f9"),
            prk: "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5",
            okm: "3cb25f25faacd57a90434f64d0362f2a\
                  2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
                  34007208d5b887185865",
        },
        // Test case 2: longer inputs/outputs (multi-block expand)
        HkdfCase {
            ikm: (0x00..=0x4f).collect(),
            salt: (0x60..=0xaf).collect(),
            info: (0xb0..=0xff).collect(),
            prk: "06a6b88c5853361a06104c9ceb35b45cef760014904671014a193f40c15fc244",
            okm: "b11e398dc80327a1c8e7f78c596a4934\
                  4f012eda2d4efad8a050cc4c19afa97c\
                  59045a99cac7827271cb41c65e590e09\
                  da3275600c2f09b8367793a9aca3db71\
                  cc30c58179ec3e87c14c01d5c1f3434f\
                  1d87",
        },
        // Test case 3: zero-length salt and info
        HkdfCase {
            ikm: vec![0x0b; 22],
            salt: Vec::new(),
            info: Vec::new(),
            prk: "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04",
            okm: "8da4e775a563c18f715f802a063c5a31\
                  b8a11f5c5ee1879ec3454e5f3c738d2d\
                  9d201395faa4b61a96c8",
        },
    ];
    for case in &cases {
        let prk = hkdf::extract(&case.salt, &case.ikm);
        assert_eq!(prk.to_vec(), hex(case.prk));

        let expected_okm = hex(case.okm);
        let mut okm = vec![0u8; expected_okm.len()];
        hkdf::expand(&prk, &case.info, &mut okm);
        assert_eq!(okm, expected_okm);

        // The one-shot derive must agree with extract-then-expand.
        let mut derived = vec![0u8; expected_okm.len()];
        hkdf::derive(&case.salt, &case.ikm, &case.info, &mut derived);
        assert_eq!(derived, expected_okm);
    }
}
