//! The broker graph: an acyclic overlay of routers.
//!
//! Content-based routing networks in the Siena tradition run over a
//! **spanning tree** of brokers: acyclicity makes reverse-path forwarding
//! loop-free without per-message duplicate suppression, and the covering
//! relation then prunes subscription propagation per link. [`Topology`]
//! models that tree as an undirected adjacency structure, validated at
//! construction (connected, exactly `n − 1` edges, no self-loops or
//! duplicates).
//!
//! Routers are identified by dense indices `0..n`; the fabric maps them to
//! attested broker instances.

use crate::error::OverlayError;

/// An undirected, connected, acyclic broker graph (a tree).
#[derive(Debug, Clone)]
pub struct Topology {
    adj: Vec<Vec<usize>>,
}

impl Topology {
    /// Builds and validates a tree over routers `0..n` from an edge list.
    ///
    /// # Errors
    ///
    /// [`OverlayError::Topology`] when `n == 0`, an endpoint is out of
    /// range, an edge is a self-loop or duplicate, the edge count is not
    /// `n − 1`, or the graph is disconnected.
    pub fn tree(n: usize, edges: &[(usize, usize)]) -> Result<Self, OverlayError> {
        if n == 0 {
            return Err(OverlayError::Topology { reason: "no routers" });
        }
        if edges.len() != n - 1 {
            return Err(OverlayError::Topology { reason: "a tree has exactly n-1 edges" });
        }
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            if a >= n || b >= n {
                return Err(OverlayError::Topology { reason: "edge endpoint out of range" });
            }
            if a == b {
                return Err(OverlayError::Topology { reason: "self-loop" });
            }
            if adj[a].contains(&b) {
                return Err(OverlayError::Topology { reason: "duplicate edge" });
            }
            adj[a].push(b);
            adj[b].push(a);
        }
        for neighbors in &mut adj {
            neighbors.sort_unstable();
        }
        let topology = Topology { adj };
        // n-1 edges + connected ⇒ acyclic.
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(r) = stack.pop() {
            for &next in topology.neighbors(r) {
                if !seen[next] {
                    seen[next] = true;
                    stack.push(next);
                }
            }
        }
        if seen.iter().any(|s| !s) {
            return Err(OverlayError::Topology { reason: "disconnected graph" });
        }
        Ok(topology)
    }

    /// A chain `0 — 1 — … — n-1` (the deepest tree: `n − 1` hops
    /// end-to-end).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn line(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        Topology::tree(n, &edges).expect("a line is a tree")
    }

    /// A star with router 0 at the centre (the shallowest tree).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn star(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
        Topology::tree(n, &edges).expect("a star is a tree")
    }

    /// Number of routers.
    pub fn routers(&self) -> usize {
        self.adj.len()
    }

    /// The neighbours of router `r`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of range.
    pub fn neighbors(&self, r: usize) -> &[usize] {
        &self.adj[r]
    }

    /// The edge list with each edge's smaller endpoint first, sorted.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::with_capacity(self.adj.len().saturating_sub(1));
        for (a, neighbors) in self.adj.iter().enumerate() {
            for &b in neighbors {
                if a < b {
                    edges.push((a, b));
                }
            }
        }
        edges.sort_unstable();
        edges
    }

    /// The unique path between two routers (inclusive of both endpoints).
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is out of range.
    pub fn path(&self, from: usize, to: usize) -> Vec<usize> {
        assert!(from < self.routers() && to < self.routers(), "router out of range");
        // BFS parents; the tree guarantees a unique path.
        let mut parent = vec![usize::MAX; self.routers()];
        let mut queue = std::collections::VecDeque::from([from]);
        parent[from] = from;
        while let Some(r) = queue.pop_front() {
            if r == to {
                break;
            }
            for &next in self.neighbors(r) {
                if parent[next] == usize::MAX {
                    parent[next] = r;
                    queue.push_back(next);
                }
            }
        }
        let mut path = vec![to];
        let mut cursor = to;
        while cursor != from {
            cursor = parent[cursor];
            path.push(cursor);
        }
        path.reverse();
        path
    }

    /// Hop count of the longest shortest path (the tree diameter).
    pub fn diameter(&self) -> usize {
        // Two BFS sweeps: farthest from 0, then farthest from there.
        let far = |start: usize| -> (usize, usize) {
            let mut dist = vec![usize::MAX; self.routers()];
            dist[start] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            let mut best = (start, 0);
            while let Some(r) = queue.pop_front() {
                if dist[r] > best.1 {
                    best = (r, dist[r]);
                }
                for &next in self.neighbors(r) {
                    if dist[next] == usize::MAX {
                        dist[next] = dist[r] + 1;
                        queue.push_back(next);
                    }
                }
            }
            best
        };
        let (end, _) = far(0);
        far(end).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_star_shapes() {
        let line = Topology::line(4);
        assert_eq!(line.routers(), 4);
        assert_eq!(line.neighbors(0), &[1]);
        assert_eq!(line.neighbors(1), &[0, 2]);
        assert_eq!(line.edges(), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(line.diameter(), 3);

        let star = Topology::star(5);
        assert_eq!(star.neighbors(0), &[1, 2, 3, 4]);
        assert_eq!(star.neighbors(3), &[0]);
        assert_eq!(star.diameter(), 2);
    }

    #[test]
    fn single_router_is_a_tree() {
        let t = Topology::tree(1, &[]).unwrap();
        assert_eq!(t.routers(), 1);
        assert!(t.neighbors(0).is_empty());
        assert_eq!(t.diameter(), 0);
        assert_eq!(t.path(0, 0), vec![0]);
    }

    #[test]
    fn invalid_graphs_rejected() {
        assert!(Topology::tree(0, &[]).is_err());
        // Wrong edge count.
        assert!(Topology::tree(3, &[(0, 1)]).is_err());
        // Self-loop.
        assert!(Topology::tree(2, &[(1, 1)]).is_err());
        // Out of range.
        assert!(Topology::tree(2, &[(0, 2)]).is_err());
        // Duplicate edge (cycle of multiplicity 2).
        assert!(Topology::tree(3, &[(0, 1), (1, 0)]).is_err());
        // Cycle + disconnected node.
        assert!(Topology::tree(4, &[(0, 1), (1, 2), (2, 0)]).is_err());
    }

    #[test]
    fn paths_follow_the_tree() {
        let t = Topology::tree(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]).unwrap();
        assert_eq!(t.path(0, 4), vec![0, 1, 3, 4]);
        assert_eq!(t.path(2, 4), vec![2, 1, 3, 4]);
        assert_eq!(t.path(4, 2), vec![4, 3, 1, 2]);
        assert_eq!(t.diameter(), 3);
    }
}
